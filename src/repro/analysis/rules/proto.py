"""PROTO — /v1 protocol conformance between server, clients and docs.

The service's HTTP surface is defined twice: once as the route
dispatch in ``repro/service/server.py`` (an if/elif chain over the
split path) and once as the paths ``ServiceClient`` and the cluster
worker actually request.  Nothing in Python keeps the two in sync —
renaming a route breaks every client at runtime, silently.  These
rules extract both sides at lint time:

* **server routes** — from any class with ``do_GET``/``do_POST``/
  ``do_DELETE`` methods: every branch comparing the split path against
  a tuple of constants (``route == ("v1", "healthz")``), a prefix
  (``len(route) == 3 and route[:2] == ("v1", "jobs")``), or a fixed
  index (``route[3] == "heartbeat"``) becomes a pattern such as
  ``GET /v1/jobs/*``;
* **client requests** — every call whose first argument is a constant
  HTTP verb and whose second is a ``/v1/...`` path literal or
  f-string; formatted segments become wildcards, and a literal
  ``body={...}`` dict contributes its keys.

Checks:

* **PROTO001** — a client requests a method+path no server branch
  matches (a fixed client segment matches a server wildcard; a
  dynamic client segment requires a server wildcard).
* **PROTO002** — agreement drift on a *known* route: the client sends
  payload keys the handler never reads (the handler's ``raw.get(...)``
  / ``raw[...]`` key set, skipped when the handler forwards the raw
  payload wholesale), or a served route appears nowhere in
  ``docs/API.md`` (``<seg>``/``{seg}``/``*`` in the docs match
  wildcard segments).

Both rules stay silent when their reference half is absent from the
linted file set (no handler class → no PROTO001; no repo ``docs/`` →
no documentation check), so linting a subtree cannot manufacture
drift.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.rules.base import ProjectRule, SourceFile

_HTTP_VERBS = {"GET", "POST", "PUT", "DELETE", "PATCH"}

#: Wildcard segment marker in extracted patterns.
WILD = "*"

_DOC_ROUTE_RE = re.compile(r"\b(GET|POST|PUT|DELETE|PATCH)\s+(/v1[^\s`|,)\]]*)")


@dataclass(frozen=True)
class Route:
    """One extracted route pattern."""

    method: str
    segments: Tuple[str, ...]

    def render(self) -> str:
        return f"{self.method} /" + "/".join(self.segments)


@dataclass
class _ServerBranch:
    route: Route
    line: int
    file: SourceFile
    #: Payload keys the handler reads, or None when the body is
    #: forwarded wholesale (opaque) or the route takes no body.
    read_keys: Optional[FrozenSet[str]] = None
    opaque: bool = False


@dataclass
class _ClientCall:
    route: Route
    line: int
    file: SourceFile
    body_keys: Optional[FrozenSet[str]] = None


def _const_str(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def _const_tuple(node: ast.AST) -> Optional[Tuple[str, ...]]:
    if not isinstance(node, ast.Tuple):
        return None
    values = []
    for elt in node.elts:
        value = _const_str(elt)
        if value is None:
            return None
        values.append(value)
    return tuple(values)


def _path_segments(node: ast.AST) -> Optional[Tuple[str, ...]]:
    """Split a path literal or f-string into pattern segments."""
    text = _const_str(node)
    if text is None and isinstance(node, ast.JoinedStr):
        parts: List[str] = []
        for value in node.values:
            if isinstance(value, ast.Constant) and isinstance(value.value, str):
                parts.append(value.value)
            elif isinstance(value, ast.FormattedValue):
                parts.append("\x00")
            else:
                return None
        text = "".join(parts)
    if text is None or not text.startswith("/"):
        return None
    segments = tuple(
        WILD if "\x00" in segment else segment
        for segment in text.strip("/").split("/")
        if segment != ""
    )
    return segments or None


# ---------------------------------------------------------------------
# Server-side extraction


class _HandlerClass:
    """One ``do_*``-bearing class and its method bodies."""

    def __init__(self, node: ast.ClassDef) -> None:
        self.node = node
        self.methods: Dict[str, ast.FunctionDef] = {
            item.name: item
            for item in node.body
            if isinstance(item, ast.FunctionDef)
        }

    def reachable_from(self, start: str) -> List[ast.FunctionDef]:
        """Class-local closure over ``self.m`` references from
        ``start`` — both direct calls and methods passed as callbacks
        (``self._guarded(self._handle_get)``)."""
        seen: Set[str] = set()
        order: List[ast.FunctionDef] = []
        frontier = [start]
        while frontier:
            name = frontier.pop()
            if name in seen or name not in self.methods:
                continue
            seen.add(name)
            func = self.methods[name]
            order.append(func)
            for sub in ast.walk(func):
                if (
                    isinstance(sub, ast.Attribute)
                    and isinstance(sub.value, ast.Name)
                    and sub.value.id == "self"
                ):
                    frontier.append(sub.attr)
        return order


def _branch_pattern(test: ast.expr) -> Optional[Tuple[Tuple[str, ...], int]]:
    """Extract a route pattern from one if/elif test, if it is one."""
    comparisons = (
        list(test.values) if isinstance(test, ast.BoolOp) and isinstance(test.op, ast.And) else [test]
    )
    length: Optional[int] = None
    fixed: Dict[int, str] = {}
    anchored = False
    for comparison in comparisons:
        if not (
            isinstance(comparison, ast.Compare)
            and len(comparison.ops) == 1
            and isinstance(comparison.ops[0], ast.Eq)
        ):
            continue
        left, right = comparison.left, comparison.comparators[0]
        # route == ("v1", "healthz")
        if isinstance(left, ast.Name):
            values = _const_tuple(right)
            if values is not None:
                if values and values[0] == "v1":
                    return values, comparison.lineno
                return None
        # len(route) == N
        if (
            isinstance(left, ast.Call)
            and isinstance(left.func, ast.Name)
            and left.func.id == "len"
            and isinstance(right, ast.Constant)
            and isinstance(right.value, int)
        ):
            length = right.value
            continue
        # route[:2] == ("v1", "jobs")   /   route[3] == "heartbeat"
        if isinstance(left, ast.Subscript):
            index = left.slice
            if isinstance(index, ast.Slice):
                prefix = _const_tuple(right)
                if (
                    prefix is not None
                    and index.lower is None
                    and isinstance(index.upper, ast.Constant)
                    and index.upper.value == len(prefix)
                ):
                    for position, value in enumerate(prefix):
                        fixed[position] = value
                    if prefix and prefix[0] == "v1":
                        anchored = True
            elif isinstance(index, ast.Constant) and isinstance(index.value, int):
                value = _const_str(right)
                if value is not None:
                    fixed[index.value] = value
    if length is None or not anchored:
        return None
    segments = tuple(fixed.get(i, WILD) for i in range(length))
    return segments, test.lineno


def _raw_var_names(func: ast.FunctionDef) -> Set[str]:
    """Variables bound from ``self._read_json()`` (plus the idiomatic
    name ``raw``)."""
    names = {"raw"}
    for node in ast.walk(func):
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
            callee = node.value.func
            if isinstance(callee, ast.Attribute) and callee.attr == "_read_json":
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
    return names


def _branch_body_keys(
    body: Sequence[ast.stmt], raw_names: Set[str]
) -> Tuple[Optional[FrozenSet[str]], bool]:
    """``(read keys, opaque)`` for one route branch."""
    keys: Set[str] = set()
    opaque = False
    saw_raw = False
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Call):
                # raw.get("k", default)
                if (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr == "get"
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id in raw_names
                    and node.args
                ):
                    key = _const_str(node.args[0])
                    if key is not None:
                        saw_raw = True
                        keys.add(key)
                # f(raw): the payload crosses an opaque boundary —
                # except type/shape checks, which read no keys.
                callee = node.func
                is_shape_check = isinstance(callee, ast.Name) and callee.id in (
                    "isinstance",
                    "len",
                    "bool",
                    "type",
                    "repr",
                )
                if not is_shape_check:
                    for arg in list(node.args) + [
                        kw.value for kw in node.keywords
                    ]:
                        if isinstance(arg, ast.Name) and arg.id in raw_names:
                            opaque = True
                            saw_raw = True
            elif isinstance(node, ast.Subscript):
                if (
                    isinstance(node.value, ast.Name)
                    and node.value.id in raw_names
                ):
                    key = _const_str(node.slice)
                    if key is not None:
                        saw_raw = True
                        keys.add(key)
    if not saw_raw:
        return None, False
    return frozenset(keys), opaque


def _extract_server_routes(files: Sequence[SourceFile]) -> List[_ServerBranch]:
    branches: List[_ServerBranch] = []
    for source_file in files:
        for node in ast.walk(source_file.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            handler = _HandlerClass(node)
            do_methods = [
                name for name in handler.methods if name.startswith("do_")
            ]
            if not do_methods:
                continue
            for do_name in sorted(do_methods):
                method = do_name[3:].upper()
                if method not in _HTTP_VERBS:
                    continue
                for func in handler.reachable_from(do_name):
                    raw_names = _raw_var_names(func)
                    for sub in ast.walk(func):
                        if not isinstance(sub, ast.If):
                            continue
                        pattern = _branch_pattern(sub.test)
                        if pattern is None:
                            continue
                        segments, line = pattern
                        read_keys, opaque = _branch_body_keys(
                            sub.body, raw_names
                        )
                        branches.append(
                            _ServerBranch(
                                route=Route(method, segments),
                                line=line,
                                file=source_file,
                                read_keys=read_keys,
                                opaque=opaque,
                            )
                        )
    return branches


# ---------------------------------------------------------------------
# Client-side extraction


def _extract_client_calls(files: Sequence[SourceFile]) -> List[_ClientCall]:
    calls: List[_ClientCall] = []
    for source_file in files:
        for node in ast.walk(source_file.tree):
            if not isinstance(node, ast.Call) or len(node.args) < 2:
                continue
            verb = _const_str(node.args[0])
            if verb not in _HTTP_VERBS:
                continue
            segments = _path_segments(node.args[1])
            if segments is None or segments[0] != "v1":
                continue
            body_keys: Optional[FrozenSet[str]] = None
            body_expr: Optional[ast.expr] = None
            if len(node.args) >= 3:
                body_expr = node.args[2]
            for keyword in node.keywords:
                if keyword.arg == "body":
                    body_expr = keyword.value
            if isinstance(body_expr, ast.Dict):
                keys = [_const_str(key) for key in body_expr.keys]
                if all(key is not None for key in keys):
                    body_keys = frozenset(keys)  # type: ignore[arg-type]
            calls.append(
                _ClientCall(
                    route=Route(verb, segments),
                    line=node.lineno,
                    file=source_file,
                    body_keys=body_keys,
                )
            )
    return calls


def _matches(client: Route, server: Route) -> bool:
    if client.method != server.method:
        return False
    if len(client.segments) != len(server.segments):
        return False
    for client_segment, server_segment in zip(client.segments, server.segments):
        if server_segment == WILD:
            continue
        if client_segment == WILD:
            return False  # dynamic client segment vs fixed server one
        if client_segment != server_segment:
            return False
    return True


# ---------------------------------------------------------------------
# Documentation side


def _repo_root(files: Sequence[SourceFile]) -> Optional[Path]:
    """The directory holding ``src/`` — located from any linted file
    living under a ``src/repro`` tree; None when linting a detached
    subset (documentation checks then skip)."""
    for source_file in files:
        parts = source_file.path.resolve().parts
        for index in range(len(parts) - 1, 0, -1):
            if parts[index] == "src" and index + 1 < len(parts) and parts[
                index + 1
            ] == "repro":
                return Path(*parts[:index])
    return None


def _documented_routes(root: Path) -> Optional[Set[Route]]:
    api_doc = root / "docs" / "API.md"
    try:
        text = api_doc.read_text(encoding="utf-8")
    except OSError:
        return None
    routes: Set[Route] = set()
    for method, path in _DOC_ROUTE_RE.findall(text):
        segments = tuple(
            WILD
            if segment.startswith("<")
            or segment.startswith("{")
            or segment.startswith(":")
            or segment == WILD
            else segment
            for segment in path.strip("/").split("/")
            if segment
        )
        routes.add(Route(method, segments))
    return routes


# ---------------------------------------------------------------------
# The rules


class ClientCallsUnknownRoute(ProjectRule):
    """PROTO001: a client requests a route no server branch serves."""

    code = "PROTO001"
    title = "client calls a /v1 route the server does not serve"

    def check_project(
        self, files: Sequence[SourceFile]
    ) -> Iterator[Tuple[SourceFile, int, str]]:
        branches = _extract_server_routes(files)
        if not branches:
            return  # no handler in the linted set: nothing to judge
        server_routes = [branch.route for branch in branches]
        for call in _extract_client_calls(files):
            if any(_matches(call.route, route) for route in server_routes):
                continue
            served = ", ".join(
                sorted(
                    {
                        route.render()
                        for route in server_routes
                        if route.method == call.route.method
                    }
                )
            )
            yield (
                call.file,
                call.line,
                f"client requests '{call.route.render()}' but no server "
                f"branch serves it (served {call.route.method} routes: "
                f"{served or 'none'})",
            )


class RouteContractDrift(ProjectRule):
    """PROTO002: payload-key or documentation drift on a known route."""

    code = "PROTO002"
    title = "/v1 route contract drift (payload keys or docs/API.md)"

    def check_project(
        self, files: Sequence[SourceFile]
    ) -> Iterator[Tuple[SourceFile, int, str]]:
        branches = _extract_server_routes(files)
        if not branches:
            return
        # Half 1: client payload keys the handler never reads.
        for call in _extract_client_calls(files):
            if call.body_keys is None:
                continue
            matched = [
                branch
                for branch in branches
                if _matches(call.route, branch.route)
            ]
            if not matched:
                continue  # PROTO001's finding, not ours
            branch = matched[0]
            if branch.opaque or branch.read_keys is None:
                continue
            unread = sorted(call.body_keys - branch.read_keys)
            if unread:
                yield (
                    call.file,
                    call.line,
                    f"client sends payload key(s) {', '.join(unread)} to "
                    f"'{call.route.render()}' but the handler at "
                    f"{branch.file.relpath}:{branch.line} never reads "
                    f"them (reads: "
                    f"{', '.join(sorted(branch.read_keys)) or 'nothing'})",
                )
        # Half 2: every served route documented in docs/API.md.
        root = _repo_root(files)
        if root is None:
            return
        documented = _documented_routes(root)
        if documented is None:
            return  # no docs/API.md next to this tree
        for branch in branches:
            if any(_matches(branch.route, doc) for doc in documented):
                continue
            yield (
                branch.file,
                branch.line,
                f"served route '{branch.route.render()}' is not documented "
                "in docs/API.md (add it to the endpoint table)",
            )
