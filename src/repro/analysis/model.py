"""Whole-program semantic model backing the CONC/PROTO/COV rule families.

The per-file rules in :mod:`repro.analysis.rules` see one AST at a time;
that is enough for "no wall clock in simulators" but blind to the bugs a
threaded service actually grows: a dict mutated from two thread entry
points, a helper that holds a lock across disk IO, a client calling a
route the server renamed.  This module builds the project-wide picture
those checks need:

* a **function index** — every module-level function, method, nested
  function and lambda, keyed by dotted qualname
  (``repro.service.jobs.JobQueue.submit``);
* an approximate **call graph** over that index, resolved through
  ``self.m()``, bare names, imports, ``self.attr = ClassName(...)``
  attribute types, parameter annotations, and constructor calls;
* **thread roots** — entry points that run concurrently: targets of
  ``threading.Thread(target=...)``, ``do_*`` methods of HTTP handler
  classes (``ThreadingHTTPServer`` runs each request on its own
  thread), and the functions that spawn threads (the spawning thread
  keeps running concurrently with its children).  A root is *multi*
  when many identical threads execute it (creation inside a loop, or
  one-per-request handlers), so a single multi root already implies
  concurrent self-interference;
* **lock modeling** — lock-valued attributes (``self._lock =
  threading.Lock()``, including the ``x if x is not None else
  threading.Lock()`` form and dict-of-locks containers), module-level
  locks, ``with`` guards, and linear ``acquire()``/``release()``
  pairs, tracked per statement so every attribute write and call site
  carries the set of locks held at that point;
* an **entry-lock fixpoint** — the locks guaranteed held on *every*
  path into a function (the intersection over its call sites), so a
  "caller must hold the lock" helper is not misread as unguarded;
* a transitive **blocking bit** — whether a function can reach
  sleep/subprocess/socket/file IO, so CONC003 can flag a lock held
  across an innocuous-looking helper call.

Everything here is a deliberate approximation: no aliasing, no dynamic
dispatch, no cross-process reasoning.  The rules built on top choose
their thresholds so the approximations fail towards silence, and
``docs/ANALYSIS.md`` documents the blind spots.

Model construction is cached per file set (keyed by path + source), so
the three CONC rules plus COV share one build per lint run.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.rules.base import SourceFile, dotted_name

#: A lock's identity: ``(owning scope qualname, attribute or name)``.
#: ``repro.service.jobs.JobQueue._lock`` is one lock however it is
#: reached; a dict-of-locks container is one id with a ``[*]`` suffix.
LockId = Tuple[str, str]

#: Call-attribute names treated as directly blocking.  ``.wait`` is
#: deliberately absent (``Condition.wait`` releases its lock) and so are
#: ``.get``/``.put`` (``dict.get`` collisions).
_BLOCKING_ATTRS = {
    "recv",
    "send",
    "sendall",
    "accept",
    "connect",
    "communicate",
    "read_bytes",
    "write_bytes",
    "read_text",
    "write_text",
}

#: Dotted-name suffixes treated as directly blocking.
_BLOCKING_DOTTED = {
    "time.sleep",
    "os.fsync",
    "subprocess.run",
    "subprocess.call",
    "subprocess.check_call",
    "subprocess.check_output",
    "subprocess.Popen",
    "urllib.request.urlopen",
    "urlopen",
    "socket.create_connection",
}

_LOCK_FACTORIES = {"Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore"}

_HANDLER_BASES = {"BaseHTTPRequestHandler", "SimpleHTTPRequestHandler"}


@dataclass
class AttrWrite:
    """One ``obj.attr = ...`` (or augmented) write observed in a body."""

    owner: str  #: class qualname owning the attribute
    attr: str
    line: int
    function: str  #: qualname of the writing function
    locks: FrozenSet[LockId]  #: locks held locally at the write
    in_init: bool  #: written inside ``__init__``/``__post_init__``


@dataclass
class BlockingCall:
    """A directly blocking primitive call."""

    line: int
    desc: str
    locks: FrozenSet[LockId]


@dataclass
class CallSite:
    """One call observed in a body, with best-effort resolution."""

    line: int
    locks: FrozenSet[LockId]
    callee: Optional[str] = None  #: resolved qualname, if any


@dataclass
class ThreadCreation:
    """One ``threading.Thread(target=...)`` site."""

    line: int
    target: Optional[str]  #: resolved target qualname
    multi: bool  #: created inside a loop


@dataclass
class FunctionInfo:
    """Everything the rules need to know about one function."""

    qualname: str
    module: str
    cls: Optional[str]  #: owning class qualname, or None
    name: str
    line: int
    param_types: Dict[str, str] = field(default_factory=dict)
    writes: List[AttrWrite] = field(default_factory=list)
    calls: List[CallSite] = field(default_factory=list)
    blocking: List[BlockingCall] = field(default_factory=list)
    thread_creations: List[ThreadCreation] = field(default_factory=list)
    #: Locks guaranteed held at entry (fixpoint over call sites).
    entry_locks: FrozenSet[LockId] = frozenset()
    #: Whether the function can transitively reach a blocking primitive.
    blocks: bool = False
    blocks_why: str = ""


@dataclass
class ClassInfo:
    """One class: its lock attributes and attribute types."""

    qualname: str
    module: str
    name: str
    line: int
    bases: List[str] = field(default_factory=list)
    lock_attrs: Set[str] = field(default_factory=set)
    #: Attributes holding a dict of locks (``self._locks[k]`` guards).
    lock_dict_attrs: Set[str] = field(default_factory=set)
    #: Attributes that are ``threading.local()`` (never shared).
    local_attrs: Set[str] = field(default_factory=set)
    #: ``self.attr = ClassName(...)`` types, for call resolution.
    attr_types: Dict[str, str] = field(default_factory=dict)
    methods: Dict[str, str] = field(default_factory=dict)  #: name -> qualname
    is_http_handler: bool = False


@dataclass
class ThreadRoot:
    """One concurrent entry point."""

    qualname: str
    multi: bool
    reason: str


class ProjectModel:
    """The assembled whole-program view (see module docstring)."""

    def __init__(self) -> None:
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        self.roots: List[ThreadRoot] = []
        #: qualname -> set of resolved callee qualnames
        self.call_graph: Dict[str, Set[str]] = {}
        #: SourceFile each function was defined in.
        self.function_files: Dict[str, SourceFile] = {}

    # -- queries used by the rules ------------------------------------

    def reachable(self, root: str) -> Set[str]:
        """Transitive closure of the call graph from ``root``."""
        seen: Set[str] = set()
        frontier = [root]
        while frontier:
            current = frontier.pop()
            if current in seen:
                continue
            seen.add(current)
            frontier.extend(self.call_graph.get(current, ()))
        return seen

    def root_contexts(self, qualname: str) -> List[ThreadRoot]:
        """The thread roots from which ``qualname`` is reachable."""
        return [
            root for root in self.roots if qualname in self._closure(root.qualname)
        ]

    def concurrency_degree(self, qualname: str) -> int:
        """How many threads may execute ``qualname`` concurrently
        (a *multi* root alone counts as two)."""
        degree = 0
        for root in self.root_contexts(qualname):
            degree += 2 if root.multi else 1
        return degree

    def effective_locks(self, function: str, held: FrozenSet[LockId]) -> FrozenSet[LockId]:
        """Locks held at a point in ``function``: the locally held set
        plus the function's guaranteed entry locks."""
        info = self.functions.get(function)
        if info is None:
            return held
        return held | info.entry_locks

    # -- internals ----------------------------------------------------

    def _closure(self, root: str) -> Set[str]:
        cache = getattr(self, "_closure_cache", None)
        if cache is None:
            cache = {}
            self._closure_cache = cache
        if root not in cache:
            cache[root] = self.reachable(root)
        return cache[root]


# ---------------------------------------------------------------------
# Per-module scanning


def _module_name(relpath: str) -> str:
    name = relpath[:-3] if relpath.endswith(".py") else relpath
    parts = [part for part in name.split("/") if part]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def _is_lock_factory(node: ast.AST) -> bool:
    """``threading.Lock()`` / ``Lock()`` / the IfExp reuse pattern."""
    if isinstance(node, ast.IfExp):
        return _is_lock_factory(node.body) or _is_lock_factory(node.orelse)
    if isinstance(node, ast.BoolOp):
        return any(_is_lock_factory(value) for value in node.values)
    if isinstance(node, ast.Call):
        name = dotted_name(node.func)
        if name is None:
            return False
        return name.split(".")[-1] in _LOCK_FACTORIES
    return False


def _is_threading_local(node: ast.AST) -> bool:
    if isinstance(node, ast.Call):
        name = dotted_name(node.func)
        return name is not None and name.split(".")[-1] == "local"
    return False


def _lambda_qualname(owner: str, node: ast.Lambda) -> str:
    return f"{owner}.<lambda@{node.lineno}>"


class _ModuleScanner:
    """Scans one module: classes, functions, imports, module locks."""

    def __init__(self, source_file: SourceFile, model: ProjectModel) -> None:
        self.file = source_file
        self.model = model
        self.module = _module_name(source_file.relpath)
        #: local name -> imported dotted target
        self.imports: Dict[str, str] = {}
        self.module_locks: Set[str] = set()
        #: local class name -> class qualname (filled in pass 1)
        self.local_classes: Dict[str, str] = {}
        self.local_functions: Dict[str, str] = {}

    # pass 1: indexing ------------------------------------------------

    def index(self) -> None:
        for node in self.file.tree.body:
            if isinstance(node, (ast.Import, ast.ImportFrom)):
                self._record_import(node)
            elif isinstance(node, ast.ClassDef):
                self._index_class(node)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._index_function(node, cls=None, owner=self.module)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name) and _is_lock_factory(node.value):
                        self.module_locks.add(target.id)

    def _record_import(self, node: ast.AST) -> None:
        if isinstance(node, ast.Import):
            for alias in node.names:
                self.imports[alias.asname or alias.name.split(".")[0]] = (
                    alias.name if alias.asname else alias.name.split(".")[0]
                )
        elif isinstance(node, ast.ImportFrom):
            if node.module is None or node.level:
                return
            for alias in node.names:
                self.imports[alias.asname or alias.name] = (
                    f"{node.module}.{alias.name}"
                )

    def _index_class(self, node: ast.ClassDef, owner: Optional[str] = None) -> None:
        qualname = f"{owner or self.module}.{node.name}"
        info = ClassInfo(
            qualname=qualname,
            module=self.module,
            name=node.name,
            line=node.lineno,
            bases=[
                base
                for base in (dotted_name(b) for b in node.bases)
                if base is not None
            ],
        )
        info.is_http_handler = any(
            base.split(".")[-1] in _HANDLER_BASES for base in info.bases
        )
        self.model.classes[qualname] = info
        self.local_classes[node.name] = qualname
        for item in node.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                method_qualname = self._index_function(item, cls=qualname, owner=qualname)
                info.methods[item.name] = method_qualname
            elif isinstance(item, ast.ClassDef):
                self._index_class(item, owner=qualname)
        self._scan_init_attrs(node, info)

    def _scan_init_attrs(self, node: ast.ClassDef, info: ClassInfo) -> None:
        for item in node.body:
            if not isinstance(item, ast.FunctionDef):
                continue
            if item.name not in ("__init__", "__post_init__"):
                continue
            for stmt in ast.walk(item):
                targets: List[ast.expr] = []
                value: Optional[ast.expr] = None
                if isinstance(stmt, ast.Assign):
                    targets, value = list(stmt.targets), stmt.value
                elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                    targets, value = [stmt.target], stmt.value
                for target in targets:
                    attr = _self_attr(target)
                    if attr is None or value is None:
                        continue
                    if _is_lock_factory(value):
                        info.lock_attrs.add(attr)
                    elif _is_threading_local(value):
                        info.local_attrs.add(attr)
                    elif isinstance(value, (ast.Dict,)) and all(
                        _is_lock_factory(v) for v in value.values
                    ) and value.values:
                        info.lock_dict_attrs.add(attr)
                    elif isinstance(value, ast.Dict) and not value.values:
                        # Empty dict: a lock container iff later filled
                        # with lock factories anywhere in the class.
                        if _dict_filled_with_locks(node, attr):
                            info.lock_dict_attrs.add(attr)
                    elif isinstance(value, ast.Call):
                        callee = dotted_name(value.func)
                        if callee is not None:
                            resolved = self._resolve_class_name(callee)
                            if resolved is not None:
                                info.attr_types[attr] = resolved
                # Subscript fills: self._locks[k] = threading.Lock()
                if isinstance(stmt, ast.Assign) and _is_lock_factory(stmt.value):
                    for target in stmt.targets:
                        if isinstance(target, ast.Subscript):
                            attr = _self_attr(target.value)
                            if attr is not None:
                                info.lock_dict_attrs.add(attr)

    def _resolve_class_name(self, callee: str) -> Optional[str]:
        head = callee.split(".")[0]
        if callee in self.local_classes:
            return self.local_classes[callee]
        if head in self.imports:
            dotted = self.imports[head] + callee[len(head):]
            return dotted
        return None

    def _index_function(
        self, node: ast.AST, cls: Optional[str], owner: str
    ) -> str:
        qualname = f"{owner}.{node.name}"
        info = FunctionInfo(
            qualname=qualname,
            module=self.module,
            cls=cls,
            name=node.name,
            line=node.lineno,
        )
        self.model.functions[qualname] = info
        self.model.function_files[qualname] = self.file
        if cls is None:
            self.local_functions[node.name] = qualname
        return qualname

    # pass 2: body analysis -------------------------------------------

    def analyse(self) -> None:
        for node in self.file.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._analyse_function(node, cls=None, owner=self.module)
            elif isinstance(node, ast.ClassDef):
                self._analyse_class(node)

    def _analyse_class(
        self,
        node: ast.ClassDef,
        owner: Optional[str] = None,
        closure: Optional[Dict[str, str]] = None,
    ) -> None:
        qualname = f"{owner or self.module}.{node.name}"
        for item in node.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._analyse_function(
                    item, cls=qualname, owner=qualname, closure=closure
                )
            elif isinstance(item, ast.ClassDef):
                self._analyse_class(item, owner=qualname, closure=closure)

    def _analyse_function(
        self,
        node: ast.AST,
        cls: Optional[str],
        owner: str,
        closure: Optional[Dict[str, str]] = None,
    ) -> None:
        qualname = f"{owner}.{node.name}"
        info = self.model.functions.get(qualname)
        if info is None:  # pragma: no cover - indexing covers all defs
            return
        info.param_types = self._param_types(node, cls, closure)
        walker = _BodyWalker(self, info, node)
        walker.run()
        # Nested defs and lambdas get their own FunctionInfo entries,
        # discovered during the walk.

    def _param_types(
        self,
        node: ast.AST,
        cls: Optional[str],
        closure: Optional[Dict[str, str]] = None,
    ) -> Dict[str, str]:
        # Closure captures first: a nested handler class sees the
        # factory function's annotated params as free variables.
        types: Dict[str, str] = dict(closure or {})
        args = node.args
        all_args = list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        for arg in all_args:
            if arg.annotation is None:
                continue
            annotation = arg.annotation
            # Optional["X"] / "X" string annotations: take the literal.
            if isinstance(annotation, ast.Constant) and isinstance(
                annotation.value, str
            ):
                name: Optional[str] = annotation.value
            else:
                name = dotted_name(annotation)
                if name is None and isinstance(annotation, ast.Subscript):
                    # Optional[X] → X
                    inner = annotation.slice
                    name = dotted_name(inner) if isinstance(inner, ast.expr) else None
            if name is None:
                continue
            resolved = self._resolve_class_name(name)
            if resolved is not None:
                types[arg.arg] = resolved
        if cls is not None and all_args and all_args[0].arg in ("self", "cls"):
            types[all_args[0].arg] = cls
        return types


def _self_attr(node: ast.AST) -> Optional[str]:
    """``attr`` for a plain ``self.attr`` expression, else ``None``."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _dict_filled_with_locks(cls_node: ast.ClassDef, attr: str) -> bool:
    for stmt in ast.walk(cls_node):
        if isinstance(stmt, ast.Assign) and _is_lock_factory(stmt.value):
            for target in stmt.targets:
                if (
                    isinstance(target, ast.Subscript)
                    and _self_attr(target.value) == attr
                ):
                    return True
        if isinstance(stmt, ast.Call):
            # self._locks.setdefault(k, threading.Lock())
            name = dotted_name(stmt.func)
            if (
                name is not None
                and name.endswith(f"self.{attr}.setdefault".replace("self.", ""))
                and stmt.args
                and any(_is_lock_factory(arg) for arg in stmt.args)
            ):
                return True
    return False


class _BodyWalker:
    """Walks one function body, tracking the held-lock set per
    statement (``with`` guards plus linear acquire/release pairs)."""

    def __init__(
        self,
        scanner: _ModuleScanner,
        info: FunctionInfo,
        node: ast.AST,
    ) -> None:
        self.scanner = scanner
        self.info = info
        self.node = node
        self.model = scanner.model
        self.cls = scanner.model.classes.get(info.cls) if info.cls else None
        self.in_init = info.name in ("__init__", "__post_init__")

    def run(self) -> None:
        self._walk_block(self.node.body, frozenset(), in_loop=False)

    # -- lock identification ------------------------------------------

    def _lock_for_expr(self, node: ast.expr) -> Optional[LockId]:
        attr = _self_attr(node)
        if attr is not None and self.cls is not None:
            if attr in self.cls.lock_attrs:
                return (self.cls.qualname, attr)
        if isinstance(node, ast.Subscript):
            base_attr = _self_attr(node.value)
            if (
                base_attr is not None
                and self.cls is not None
                and base_attr in self.cls.lock_dict_attrs
            ):
                return (self.cls.qualname, f"{base_attr}[*]")
        if isinstance(node, ast.Name) and node.id in self.scanner.module_locks:
            return (self.scanner.module, node.id)
        # param.lockattr where the param's class is known
        if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
            owner = self.info.param_types.get(node.value.id)
            if owner is not None:
                owner_info = self.model.classes.get(owner)
                if owner_info is not None and node.attr in owner_info.lock_attrs:
                    return (owner, node.attr)
        # Heuristic of last resort: anything whose name says "lock".
        name = dotted_name(node)
        if name is not None and "lock" in name.split(".")[-1].lower():
            return (self.info.qualname, name)
        return None

    # -- block walking ------------------------------------------------

    def _walk_block(
        self, body: Sequence[ast.stmt], held: FrozenSet[LockId], in_loop: bool
    ) -> None:
        current = set(held)
        for stmt in body:
            self._walk_stmt(stmt, current, in_loop)

    def _walk_stmt(self, stmt: ast.stmt, held: Set[LockId], in_loop: bool) -> None:
        locks = frozenset(held)
        if isinstance(stmt, ast.With):
            added: Set[LockId] = set()
            for item in stmt.items:
                self._scan_expr(item.context_expr, locks, in_loop, is_with=True)
                lock = self._lock_for_expr(item.context_expr)
                if lock is not None:
                    added.add(lock)
            self._walk_block(stmt.body, locks | added, in_loop)
            return
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            qualname = self.scanner._index_function(
                stmt, cls=self.info.cls, owner=self.info.qualname
            )
            nested = self.model.functions[qualname]
            nested.param_types = self.scanner._param_types(
                stmt, self.info.cls, closure=self.info.param_types
            )
            # Nested defs close over the enclosing scope (including
            # self when nested in a method).
            _BodyWalker(self.scanner, nested, stmt).run()
            return
        if isinstance(stmt, ast.ClassDef):
            # A class defined inside a function (the HTTP handler
            # factory pattern): index and analyse it now, seeding its
            # methods with the factory's annotated params as closure
            # types.
            self.scanner._index_class(stmt, owner=self.info.qualname)
            self.scanner._analyse_class(
                stmt, owner=self.info.qualname, closure=self.info.param_types
            )
            return
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._scan_expr(stmt.iter, locks, in_loop)
            self._walk_block(stmt.body, locks, in_loop=True)
            self._walk_block(stmt.orelse, locks, in_loop)
            return
        if isinstance(stmt, ast.While):
            self._scan_expr(stmt.test, locks, in_loop)
            self._walk_block(stmt.body, locks, in_loop=True)
            self._walk_block(stmt.orelse, locks, in_loop)
            return
        if isinstance(stmt, ast.If):
            self._scan_expr(stmt.test, locks, in_loop)
            self._walk_block(stmt.body, locks, in_loop)
            self._walk_block(stmt.orelse, locks, in_loop)
            return
        if isinstance(stmt, ast.Try):
            # acquire() directly before try / release() in finally is
            # the classic linear pair: the try body runs under the
            # locks acquired so far; the finally's release applies
            # after.
            self._walk_block(stmt.body, frozenset(held), in_loop)
            for handler in stmt.handlers:
                self._walk_block(handler.body, frozenset(held), in_loop)
            self._walk_block(stmt.orelse, frozenset(held), in_loop)
            self._walk_block(stmt.finalbody, frozenset(held), in_loop)
            for sub in stmt.finalbody:
                self._apply_acquire_release(sub, held)
            return
        # Plain statement: acquire/release bookkeeping, then writes and
        # calls.
        self._apply_acquire_release(stmt, held)
        locks = frozenset(held)
        if isinstance(stmt, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            self._record_writes(stmt, locks)
        for node in ast.walk(stmt):
            if isinstance(node, ast.Call):
                self._scan_call(node, locks, in_loop)
            elif isinstance(node, ast.Lambda):
                self._register_lambda(node)

    def _apply_acquire_release(self, stmt: ast.stmt, held: Set[LockId]) -> None:
        if not isinstance(stmt, ast.Expr) or not isinstance(stmt.value, ast.Call):
            return
        call = stmt.value
        if not isinstance(call.func, ast.Attribute):
            return
        if call.func.attr == "acquire":
            lock = self._lock_for_expr(call.func.value)
            if lock is not None:
                held.add(lock)
        elif call.func.attr == "release":
            lock = self._lock_for_expr(call.func.value)
            if lock is not None:
                held.discard(lock)

    # -- expression-level scanning ------------------------------------

    def _scan_expr(
        self,
        node: ast.expr,
        locks: FrozenSet[LockId],
        in_loop: bool,
        is_with: bool = False,
    ) -> None:
        for sub in ast.walk(node):
            if isinstance(sub, ast.Call):
                self._scan_call(sub, locks, in_loop)
            elif isinstance(sub, ast.Lambda):
                self._register_lambda(sub)

    def _register_lambda(self, node: ast.Lambda) -> str:
        qualname = _lambda_qualname(self.info.qualname, node)
        if qualname not in self.model.functions:
            info = FunctionInfo(
                qualname=qualname,
                module=self.scanner.module,
                cls=self.info.cls,
                name="<lambda>",
                line=node.lineno,
            )
            info.param_types = dict(self.info.param_types)
            self.model.functions[qualname] = info
            self.model.function_files[qualname] = self.scanner.file
            saved = self.info
            self.info = info
            try:
                self._scan_expr(node.body, frozenset(), in_loop=False)
                if isinstance(node.body, ast.Call):
                    pass  # already scanned
                # Lambda bodies can also write attributes only via
                # calls; plain assignments are impossible in a lambda.
            finally:
                self.info = saved
        return qualname

    def _record_writes(self, stmt: ast.stmt, locks: FrozenSet[LockId]) -> None:
        targets: List[ast.expr] = []
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, (ast.Tuple, ast.List)):
                    targets.extend(target.elts)
                else:
                    targets.append(target)
        elif isinstance(stmt, ast.AugAssign):
            targets.append(stmt.target)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets.append(stmt.target)
        for target in targets:
            owner_attr = self._owner_attr(target)
            if owner_attr is None:
                continue
            owner, attr = owner_attr
            owner_info = self.model.classes.get(owner)
            if owner_info is not None and attr in owner_info.local_attrs:
                continue  # threading.local: per-thread by construction
            self.info.writes.append(
                AttrWrite(
                    owner=owner,
                    attr=attr,
                    line=target.lineno,
                    function=self.info.qualname,
                    locks=locks,
                    in_init=self.in_init,
                )
            )

    def _owner_attr(self, target: ast.expr) -> Optional[Tuple[str, str]]:
        """``(class qualname, attr)`` for a tracked attribute write."""
        if not isinstance(target, ast.Attribute):
            # Subscript writes (self.d[k] = v) mutate the container in
            # place; the container attribute itself is not rebound, and
            # per-key aliasing is beyond this model.
            return None
        base = target.value
        if not isinstance(base, ast.Name):
            return None  # chained (a.b.c = x): invisible by design
        if base.id == "self":
            if self.info.cls is None:
                return None
            return (self.info.cls, target.attr)
        owner = self.info.param_types.get(base.id)
        if owner is not None:
            return (owner, target.attr)
        return None

    def _scan_call(
        self, node: ast.Call, locks: FrozenSet[LockId], in_loop: bool
    ) -> None:
        name = dotted_name(node.func)
        # Thread creation?
        if name is not None and name.split(".")[-1] == "Thread" and (
            name.startswith("threading") or name == "Thread"
        ):
            target = self._thread_target(node)
            self.info.thread_creations.append(
                ThreadCreation(line=node.lineno, target=target, multi=in_loop)
            )
            return
        # Blocking primitive?
        desc = self._blocking_desc(node, name)
        if desc is not None:
            self.info.blocking.append(
                BlockingCall(line=node.lineno, desc=desc, locks=locks)
            )
            return
        # Ordinary call: try to resolve.
        callee = self._resolve_call(node, name)
        self.info.calls.append(CallSite(line=node.lineno, locks=locks, callee=callee))

    def _blocking_desc(self, node: ast.Call, name: Optional[str]) -> Optional[str]:
        if isinstance(node.func, ast.Name) and node.func.id == "open":
            return "open()"
        if name is not None:
            for dotted in _BLOCKING_DOTTED:
                if name == dotted or name.endswith("." + dotted):
                    return f"{dotted}()"
        if isinstance(node.func, ast.Attribute):
            attr = node.func.attr
            if attr in _BLOCKING_ATTRS:
                return f".{attr}()"
            if attr == "join":
                # thread.join() / thread.join(5.0) — but never
                # ", ".join(parts).
                if not node.args and not node.keywords:
                    return ".join()"
                if (
                    len(node.args) == 1
                    and isinstance(node.args[0], ast.Constant)
                    and isinstance(node.args[0].value, (int, float))
                ):
                    return ".join(timeout)"
        return None

    def _thread_target(self, node: ast.Call) -> Optional[str]:
        for keyword in node.keywords:
            if keyword.arg == "target":
                return self._resolve_target_expr(keyword.value)
        return None

    def _resolve_target_expr(self, node: ast.expr) -> Optional[str]:
        if isinstance(node, ast.Lambda):
            return self._register_lambda(node)
        if isinstance(node, ast.Call):
            # functools.partial(f, ...) → f
            name = dotted_name(node.func)
            if name is not None and name.split(".")[-1] == "partial" and node.args:
                return self._resolve_target_expr(node.args[0])
            return None
        return self._resolve_ref(node)

    def _resolve_ref(self, node: ast.expr) -> Optional[str]:
        """Resolve a function *reference* (not a call) to a qualname."""
        attr = _self_attr(node)
        if attr is not None:
            return self._resolve_method(self.info.cls, attr)
        if isinstance(node, ast.Name):
            return self._resolve_bare(node.id)
        if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
            base = node.value.id
            owner = self.info.param_types.get(base)
            if owner is not None:
                return self._resolve_method(owner, node.attr)
            dotted = self.scanner.imports.get(base)
            if dotted is not None:
                candidate = f"{dotted}.{node.attr}"
                if candidate in self.model.functions:
                    return candidate
                if candidate in self.model.classes:
                    return self.model.classes[candidate].methods.get("__init__")
        return None

    def _resolve_bare(self, name: str) -> Optional[str]:
        if name in self.scanner.local_functions:
            return self.scanner.local_functions[name]
        if name in self.scanner.local_classes:
            cls = self.model.classes[self.scanner.local_classes[name]]
            return cls.methods.get("__init__")
        dotted = self.scanner.imports.get(name)
        if dotted is not None:
            if dotted in self.model.functions:
                return dotted
            if dotted in self.model.classes:
                return self.model.classes[dotted].methods.get("__init__")
        # Nested function defined in this same function?
        nested = f"{self.info.qualname}.{name}"
        if nested in self.model.functions:
            return nested
        return None

    def _resolve_method(self, cls_qualname: Optional[str], method: str) -> Optional[str]:
        seen: Set[str] = set()
        while cls_qualname is not None and cls_qualname not in seen:
            seen.add(cls_qualname)
            cls = self.model.classes.get(cls_qualname)
            if cls is None:
                return None
            if method in cls.methods:
                return cls.methods[method]
            # Single-inheritance walk over project-local bases.
            next_cls = None
            for base in cls.bases:
                resolved = None
                candidate = f"{cls.module}.{base.split('.')[-1]}"
                if candidate in self.model.classes:
                    resolved = candidate
                if resolved is not None:
                    next_cls = resolved
                    break
            cls_qualname = next_cls
        return None

    def _resolve_call(self, node: ast.Call, name: Optional[str]) -> Optional[str]:
        if isinstance(node.func, ast.Attribute):
            base = node.func.value
            attr = node.func.attr
            self_attr = _self_attr(base)
            if isinstance(base, ast.Name):
                if base.id == "self":
                    return self._resolve_method(self.info.cls, attr)
                owner = self.info.param_types.get(base.id)
                if owner is not None:
                    return self._resolve_method(owner, attr)
                dotted = self.scanner.imports.get(base.id)
                if dotted is not None:
                    candidate = f"{dotted}.{attr}"
                    if candidate in self.model.functions:
                        return candidate
                    if candidate in self.model.classes:
                        return self.model.classes[candidate].methods.get("__init__")
                if base.id in self.scanner.local_classes:
                    return self._resolve_method(
                        self.scanner.local_classes[base.id], attr
                    )
                return None
            if self_attr is not None and self.cls is not None:
                owner = self.cls.attr_types.get(self_attr)
                if owner is not None:
                    return self._resolve_method(owner, attr)
                return None
            return None
        if isinstance(node.func, ast.Name):
            return self._resolve_bare(node.func.id)
        return None


# ---------------------------------------------------------------------
# Assembly: call graph, roots, fixpoints


def _assemble(files: Sequence[SourceFile]) -> ProjectModel:
    model = ProjectModel()
    scanners = [_ModuleScanner(source_file, model) for source_file in files]
    for scanner in scanners:
        scanner.index()
    for scanner in scanners:
        scanner.analyse()

    # Call graph.
    for qualname, info in model.functions.items():
        edges = model.call_graph.setdefault(qualname, set())
        for site in info.calls:
            if site.callee is not None:
                edges.add(site.callee)
        for creation in info.thread_creations:
            if creation.target is not None:
                edges.add(creation.target)

    # Thread roots.
    seen_roots: Set[Tuple[str, bool]] = set()

    def add_root(qualname: str, multi: bool, reason: str) -> None:
        key = (qualname, multi)
        if key not in seen_roots:
            seen_roots.add(key)
            model.roots.append(ThreadRoot(qualname, multi, reason))

    for qualname, info in model.functions.items():
        for creation in info.thread_creations:
            if creation.target is not None:
                add_root(
                    creation.target,
                    creation.multi,
                    "threading.Thread target"
                    + (" (created in a loop)" if creation.multi else ""),
                )
            # The spawning function keeps running concurrently with
            # its children.
            add_root(qualname, False, "spawns threads")
    for cls in model.classes.values():
        if cls.is_http_handler:
            for method_name, method_qualname in cls.methods.items():
                if method_name.startswith("do_"):
                    add_root(
                        method_qualname,
                        True,
                        "HTTP handler (one thread per request)",
                    )
    model.roots.sort(key=lambda root: (root.qualname, not root.multi))

    _fix_entry_locks(model)
    _fix_blocking(model)
    return model


def _fix_entry_locks(model: ProjectModel) -> None:
    """Fixpoint: locks guaranteed held on every path into a function."""
    universe: Set[LockId] = set()
    for info in model.functions.values():
        for write in info.writes:
            universe.update(write.locks)
        for site in info.calls:
            universe.update(site.locks)
        for blocking in info.blocking:
            universe.update(blocking.locks)
    top = frozenset(universe)

    # Call sites per callee.
    incoming: Dict[str, List[Tuple[str, FrozenSet[LockId]]]] = {}
    for qualname, info in model.functions.items():
        for site in info.calls:
            if site.callee is not None:
                incoming.setdefault(site.callee, []).append((qualname, site.locks))

    root_names = {root.qualname for root in model.roots}
    entry: Dict[str, FrozenSet[LockId]] = {}
    for qualname in model.functions:
        if qualname in root_names or qualname not in incoming:
            entry[qualname] = frozenset()
        else:
            entry[qualname] = top
    changed = True
    while changed:
        changed = False
        for qualname, info in model.functions.items():
            if qualname in root_names or qualname not in incoming:
                continue
            meet: Optional[FrozenSet[LockId]] = None
            for caller, site_locks in incoming[qualname]:
                effective = entry.get(caller, frozenset()) | site_locks
                meet = effective if meet is None else (meet & effective)
            new = meet if meet is not None else frozenset()
            if new != entry[qualname]:
                entry[qualname] = new
                changed = True
    for qualname, locks in entry.items():
        model.functions[qualname].entry_locks = locks


def _fix_blocking(model: ProjectModel) -> None:
    """Fixpoint: can a function transitively reach a blocking call?"""
    for info in model.functions.values():
        if info.blocking:
            info.blocks = True
            info.blocks_why = info.blocking[0].desc
    changed = True
    while changed:
        changed = False
        for info in model.functions.values():
            if info.blocks:
                continue
            for site in info.calls:
                callee = site.callee and model.functions.get(site.callee)
                if callee is not None and callee.blocks:
                    info.blocks = True
                    info.blocks_why = f"calls {callee.qualname} ({callee.blocks_why})"
                    changed = True
                    break
    return


# ---------------------------------------------------------------------
# Cached entry point

_CACHE: Dict[Tuple[Tuple[str, int], ...], ProjectModel] = {}


def get_model(files: Sequence[SourceFile]) -> ProjectModel:
    """Build (or reuse) the project model for ``files``.

    Keyed by every file's path and source hash, so the CONC rules and
    COV share one build per lint run while edits invalidate cleanly.
    """
    key = tuple((str(f.path), hash(f.source)) for f in files)
    model = _CACHE.get(key)
    if model is None:
        model = _assemble(files)
        _CACHE.clear()  # one live model is enough
        _CACHE[key] = model
    return model


def iter_shared_writes(
    model: ProjectModel,
) -> Iterable[Tuple[Tuple[str, str], List[AttrWrite]]]:
    """All non-``__init__`` attribute writes grouped by (class, attr),
    sorted for deterministic reporting."""
    grouped: Dict[Tuple[str, str], List[AttrWrite]] = {}
    for info in model.functions.values():
        for write in info.writes:
            if write.in_init:
                continue
            grouped.setdefault((write.owner, write.attr), []).append(write)
    for key in sorted(grouped):
        writes = grouped[key]
        writes.sort(key=lambda w: (w.function, w.line))
        yield key, writes
