"""The simulator-invariant linter: rule runner, suppressions, CLI.

Usage (equivalent)::

    repro-fvc lint [paths...]
    python -m repro.analysis [paths...]

With no paths, lints ``src/`` when run from the repo root (falling back
to the current directory).  Output is one line per finding::

    src/repro/fvc/cache.py:17 DET001 random.random() draws unseeded ...

and the process exits non-zero when any finding survives suppression or
the suppression budget is exceeded.

Suppressions
------------
A finding is suppressed by a ``# repro: allow[CODE]`` comment either
trailing the offending line or alone on the line above it::

    value = uuid.uuid4().hex  # repro: allow[DET001] job ids are not results

Several codes may be listed (``allow[DET001, DET003]``).  Every
suppression must carry a justification in the same comment, and the
total across a lint run is budgeted (default
:data:`DEFAULT_SUPPRESSION_BUDGET`): exceeding the budget fails the run
even if each individual suppression is valid.  Unused suppressions are
reported as warnings so stale ones get cleaned up.
"""

from __future__ import annotations

import argparse
import ast
import io
import json
import re
import sys
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, TextIO, Tuple

from repro.analysis.rules import ALL_RULES, ProjectRule, Rule, SourceFile
from repro.analysis.rules.base import package_relpath

#: How many ``# repro: allow[...]`` suppressions one lint run may use.
DEFAULT_SUPPRESSION_BUDGET = 5

#: Reported (as a finding) when a file does not parse at all.
PARSE_ERROR_CODE = "SYN001"

_SUPPRESS_RE = re.compile(
    r"#\s*repro:\s*allow\[([A-Z]{3,5}\d{3}(?:\s*,\s*[A-Z]{3,5}\d{3})*)\]"
)


@dataclass(frozen=True, order=True)
class Finding:
    """One lint finding, ordered for stable output."""

    path: str
    line: int
    code: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line} {self.code} {self.message}"


@dataclass
class LintReport:
    """Everything one lint run observed."""

    findings: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    #: ``(path, line, codes)`` of allow-comments that matched nothing.
    unused_suppressions: List[Tuple[str, int, str]] = field(default_factory=list)
    files_checked: int = 0
    budget: int = DEFAULT_SUPPRESSION_BUDGET

    @property
    def over_budget(self) -> bool:
        return len(self.suppressed) > self.budget

    @property
    def exit_code(self) -> int:
        return 1 if self.findings or self.over_budget else 0


def _parse_suppressions(
    source: str,
) -> Tuple[Dict[int, Set[str]], List[Tuple[int, Set[str], List[int]]]]:
    """Map line → allowed codes, plus the raw comments for usage audit.

    Only genuine comment tokens count (an allow-example quoted inside a
    docstring is not a suppression).  A trailing comment covers its own
    line; a comment-only line also covers the next line.
    """
    allowed: Dict[int, Set[str]] = {}
    comments: List[Tuple[int, Set[str], List[int]]] = []
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return allowed, comments
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _SUPPRESS_RE.search(token.string)
        if match is None:
            continue
        lineno = token.start[0]
        codes = {code.strip() for code in match.group(1).split(",")}
        covered = [lineno]
        if token.line.lstrip().startswith("#"):
            covered.append(lineno + 1)
        for line in covered:
            allowed.setdefault(line, set()).update(codes)
        comments.append((lineno, codes, covered))
    return allowed, comments


def _collect_files(paths: Sequence[Path]) -> List[Path]:
    """Expand files/directories into a sorted, deduplicated .py list."""
    collected: List[Path] = []
    seen: Set[Path] = set()
    for path in paths:
        if path.is_dir():
            candidates = sorted(
                p
                for p in path.rglob("*.py")
                if "__pycache__" not in p.parts
                and not any(part.startswith(".") for part in p.parts)
            )
        else:
            candidates = [path]
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                collected.append(candidate)
    return collected


def _load(path: Path) -> Tuple[Optional[SourceFile], Optional[Finding]]:
    try:
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(path))
    except (OSError, SyntaxError, ValueError) as exc:
        return None, Finding(str(path), 1, PARSE_ERROR_CODE, f"cannot parse: {exc}")
    return SourceFile(path=path, relpath=package_relpath(path), source=source, tree=tree), None


class Linter:
    """Runs a rule set over a file set and applies suppressions."""

    def __init__(
        self,
        rules: Optional[Sequence[Rule]] = None,
        budget: int = DEFAULT_SUPPRESSION_BUDGET,
        select: Optional[Sequence[str]] = None,
    ) -> None:
        self.rules: List[Rule] = list(ALL_RULES if rules is None else rules)
        if select:
            wanted = {code.strip().upper() for code in select}
            self.rules = [rule for rule in self.rules if rule.code in wanted]
        self.budget = budget

    def lint_paths(self, paths: Sequence[Path]) -> LintReport:
        """Lint files and/or directory trees."""
        report = LintReport(budget=self.budget)
        files: List[SourceFile] = []
        raw: List[Finding] = []
        for path in _collect_files(paths):
            source_file, parse_error = _load(path)
            if parse_error is not None:
                raw.append(parse_error)
                continue
            files.append(source_file)
        report.files_checked = len(files)

        for source_file in files:
            for rule in self.rules:
                if isinstance(rule, ProjectRule):
                    continue
                if not rule.applies_to(source_file.relpath):
                    continue
                for line, message in rule.check(source_file):
                    raw.append(
                        Finding(str(source_file.path), line, rule.code, message)
                    )
        for rule in self.rules:
            if isinstance(rule, ProjectRule):
                for found_in, line, message in rule.check_project(files):
                    raw.append(
                        Finding(str(found_in.path), line, rule.code, message)
                    )

        # Suppression pass, per file.
        by_path: Dict[str, Tuple[Dict[int, Set[str]], List]] = {}
        for source_file in files:
            by_path[str(source_file.path)] = _parse_suppressions(source_file.source)
        used_comment_lines: Dict[str, Set[int]] = {}
        for finding in sorted(raw):
            allowed, comments = by_path.get(finding.path, ({}, []))
            if finding.code in allowed.get(finding.line, set()):
                report.suppressed.append(finding)
                for comment_line, codes, covered in comments:
                    if finding.line in covered and finding.code in codes:
                        used_comment_lines.setdefault(finding.path, set()).add(
                            comment_line
                        )
            else:
                report.findings.append(finding)
        for path, (_allowed, comments) in sorted(by_path.items()):
            for comment_line, codes, _covered in comments:
                if comment_line not in used_comment_lines.get(path, set()):
                    report.unused_suppressions.append(
                        (path, comment_line, ", ".join(sorted(codes)))
                    )
        return report


def _render_text(report: LintReport, out: TextIO) -> None:
    for finding in sorted(report.findings):
        print(finding.render(), file=out)
    for path, line, codes in report.unused_suppressions:
        print(
            f"{path}:{line} warning: unused suppression [{codes}]", file=out
        )
    used = len(report.suppressed)
    print(
        f"checked {report.files_checked} file(s): "
        f"{len(report.findings)} finding(s), "
        f"{used} suppression(s) used (budget {report.budget})",
        file=out,
    )
    if report.over_budget:
        print(
            f"suppression budget exceeded: {used} > {report.budget} — "
            "fix findings instead of allowing them away",
            file=out,
        )


def _render_json(report: LintReport) -> str:
    document = {
        "files_checked": report.files_checked,
        "findings": [
            {
                "path": f.path,
                "line": f.line,
                "code": f.code,
                "message": f.message,
            }
            for f in sorted(report.findings)
        ],
        "suppressed": [
            {
                "path": f.path,
                "line": f.line,
                "code": f.code,
                "message": f.message,
            }
            for f in sorted(report.suppressed)
        ],
        "unused_suppressions": [
            {"path": path, "line": line, "codes": codes}
            for path, line, codes in report.unused_suppressions
        ],
        "suppression_budget": report.budget,
        "over_budget": report.over_budget,
        "exit_code": report.exit_code,
    }
    return json.dumps(document, indent=2, sort_keys=True) + "\n"


def run(
    paths: Optional[Sequence[str]] = None,
    select: Optional[Sequence[str]] = None,
    max_suppressions: Optional[int] = None,
    list_rules: bool = False,
    out: Optional[TextIO] = None,
    output_format: str = "text",
    output_path: Optional[str] = None,
) -> int:
    """Execute one lint run; returns the process exit code.

    Shared by ``repro-fvc lint`` and ``python -m repro.analysis``.
    ``output_format`` is ``text`` (human report), ``json`` (machine
    summary) or ``sarif`` (SARIF 2.1.0); the machine formats print only
    the document itself.  ``output_path`` writes the report to a file
    instead of ``out`` (exit code is unaffected).
    """
    out = out if out is not None else sys.stdout
    if output_format not in ("text", "json", "sarif"):
        raise ValueError(f"unknown lint output format: {output_format!r}")
    if list_rules:
        for rule in ALL_RULES:
            kind = "project" if isinstance(rule, ProjectRule) else "file"
            print(f"{rule.code}  [{kind}] {rule.title}", file=out)
            print(f"        scope: {rule.scope_description()}", file=out)
        return 0
    if not paths:
        default = Path("src")
        paths = [str(default if default.is_dir() else Path("."))]
    budget = (
        DEFAULT_SUPPRESSION_BUDGET if max_suppressions is None else max_suppressions
    )
    linter = Linter(budget=budget, select=select)
    report = linter.lint_paths([Path(p) for p in paths])

    if output_format == "sarif":
        from repro.analysis.sarif import render_sarif

        rendered = render_sarif(report, rules=linter.rules)
    elif output_format == "json":
        rendered = _render_json(report)
    else:
        rendered = None

    if rendered is not None:
        if output_path is not None:
            Path(output_path).write_text(rendered, encoding="utf-8")
        else:
            out.write(rendered)
    elif output_path is not None:
        with open(output_path, "w", encoding="utf-8") as handle:
            _render_text(report, handle)
    else:
        _render_text(report, out)
    return report.exit_code


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Simulator-invariant linter (see docs/ANALYSIS.md)",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: src/, else .)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue"
    )
    parser.add_argument(
        "--select",
        default=None,
        metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--rules",
        default=None,
        metavar="CODES",
        help="additional comma-separated rule codes (merged with --select)",
    )
    parser.add_argument(
        "--format",
        dest="output_format",
        choices=("text", "json", "sarif"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--output",
        default=None,
        metavar="PATH",
        help="write the report to PATH instead of stdout",
    )
    parser.add_argument(
        "--max-suppressions",
        type=int,
        default=None,
        metavar="N",
        help=f"suppression budget (default {DEFAULT_SUPPRESSION_BUDGET})",
    )
    return parser


def merge_selected_codes(
    select: Optional[str], rules: Optional[str]
) -> Optional[List[str]]:
    """Merge the ``--select`` and ``--rules`` code lists (either may be
    ``None``); returns ``None`` when neither was given (= run all)."""
    codes: List[str] = []
    for raw in (select, rules):
        if raw:
            codes.extend(c for c in (p.strip() for p in raw.split(",")) if c)
    return codes or None


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    select = merge_selected_codes(args.select, args.rules)
    try:
        return run(
            paths=args.paths,
            select=select,
            max_suppressions=args.max_suppressions,
            list_rules=args.list_rules,
            output_format=args.output_format,
            output_path=args.output,
        )
    except Exception as exc:  # noqa: BLE001 - exit-code contract
        # Findings exit 1; an analyzer crash must be distinguishable
        # from "the tree has findings", so internal errors exit 2.
        print(f"lint: internal error: {exc}", file=sys.stderr)
        return 2
