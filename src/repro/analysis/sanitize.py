"""Runtime invariant sanitizer for the simulation engine.

Enabled by ``REPRO_SANITIZE=1`` in the environment or ``repro-fvc run
--sanitize`` (which sets it, so pool workers inherit the flag).  When
on, :func:`repro.engine.cells.run_cell` wires these checks around every
simulation cell:

* **encode/decode round-trip** — on every FVC entry installation, each
  non-infrequent code must decode to a value that re-encodes to the
  same code (the compressed word is information-preserving);
* **DMC/FVC exclusion** — no line is simultaneously resident in the
  main cache and the FVC (so no word is live in both structures);
* **write-back conservation** — words written to main memory equal the
  write-back words the statistics claim, and words read equal the fill
  words (dirty evictions all reach the next level, none are invented);
* **stats conservation** — ``hits + misses == accesses`` and the access
  count equals the trace length.

All checks are observational: they wrap and audit, never mutate, so a
``run --jobs N --sanitize`` run is bit-identical to an unsanitized
sequential run.  Cross-structure checks run at cell boundaries (after
the trace is fully replayed); violations raise
:class:`SanitizeViolation`.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional

from repro.common.errors import ReproError

#: Environment flag that turns the sanitizer on (``1``/``true``/``on``).
ENV_VAR = "REPRO_SANITIZE"

_TRUE_VALUES = ("1", "true", "yes", "on")


class SanitizeViolation(ReproError):
    """A simulator invariant the sanitizer enforces was broken."""


def enabled() -> bool:
    """Whether the sanitizer is on in this process."""
    return os.environ.get(ENV_VAR, "").strip().lower() in _TRUE_VALUES


def enable() -> None:
    """Turn the sanitizer on for this process and every child it
    spawns (worker pools inherit the environment)."""
    os.environ[ENV_VAR] = "1"


def disable() -> None:
    """Turn the sanitizer off for this process."""
    os.environ.pop(ENV_VAR, None)


# ----------------------------------------------------------------------
# Check accounting (per process)
# ----------------------------------------------------------------------
_counters: Dict[str, int] = {}


def _count(name: str, n: int = 1) -> None:
    _counters[name] = _counters.get(name, 0) + n


def counters() -> Dict[str, int]:
    """Checks performed in this process, by invariant name."""
    return dict(sorted(_counters.items()))


def checks_performed() -> int:
    """Total invariant checks performed in this process."""
    return sum(_counters.values())


def reset_counters() -> None:
    """Zero the per-process check counters (tests)."""
    _counters.clear()


# ----------------------------------------------------------------------
# Wrappers
# ----------------------------------------------------------------------
class MemoryAudit:
    """Transparent :class:`repro.cache.mainmem.MainMemory` wrapper that
    counts every word crossing the memory boundary.

    Purely observational — same values in, same values out — so wrapping
    cannot perturb the simulation it audits.
    """

    __slots__ = ("_memory", "words_read", "words_written")

    def __init__(self, memory) -> None:
        self._memory = memory
        self.words_read = 0
        self.words_written = 0

    def read_word(self, byte_addr: int) -> int:
        self.words_read += 1
        return self._memory.read_word(byte_addr)

    def write_word(self, byte_addr: int, value: int) -> None:
        self.words_written += 1
        self._memory.write_word(byte_addr, value)

    def read_line(self, line_addr: int, words_per_line: int) -> List[int]:
        self.words_read += words_per_line
        return self._memory.read_line(line_addr, words_per_line)

    def write_line(self, line_addr: int, data: List[int]) -> None:
        self.words_written += len(data)
        self._memory.write_line(line_addr, data)

    def __len__(self) -> int:
        return len(self._memory)


def check_codes_roundtrip(encoder, codes, context: str = "") -> None:
    """Assert every non-infrequent code decodes and re-encodes to
    itself — the FVC's compressed words are information-preserving."""
    infrequent = encoder.infrequent_code
    for word_index, code in enumerate(codes):
        if code == infrequent:
            continue
        try:
            value = encoder.decode(code)
        except Exception as exc:
            raise SanitizeViolation(
                f"{context}word {word_index}: code {code} does not "
                f"decode ({exc})"
            ) from exc
        back = encoder.encode(value)
        if back != code:
            raise SanitizeViolation(
                f"{context}word {word_index}: encode/decode round-trip "
                f"broken — code {code} decodes to {value:#x} which "
                f"re-encodes to {back}"
            )
    _count("fvc_code_roundtrip")


def attach_fvc_system(system) -> MemoryAudit:
    """Arm a :class:`repro.fvc.system.FvcSystem` with per-insertion
    round-trip checks and memory-traffic auditing.

    Returns the :class:`MemoryAudit` now interposed before the system's
    memory; pass it to :func:`check_fvc_system` at the cell boundary.
    """
    fvc = system.fvc
    encoder = fvc.encoder
    words_per_line = fvc.words_per_line
    original_install = fvc.install

    def checked_install(line_addr, codes, dirty=None):
        if len(codes) != words_per_line:
            raise SanitizeViolation(
                f"FVC install at line {line_addr:#x}: {len(codes)} codes "
                f"into {words_per_line}-word entries"
            )
        check_codes_roundtrip(
            encoder, codes, context=f"FVC install at line {line_addr:#x}, "
        )
        return original_install(line_addr, codes, dirty)

    # Instance attribute shadows the bound method; behaviour identical.
    fvc.install = checked_install
    audit = MemoryAudit(system.memory)
    system.memory = audit
    return audit


# ----------------------------------------------------------------------
# Cell-boundary checks
# ----------------------------------------------------------------------
def check_stats_conservation(stats, accesses: Optional[int] = None) -> None:
    """``hits + misses == accesses`` (== the replayed trace length)."""
    if stats.hits + stats.misses != stats.accesses:
        raise SanitizeViolation(
            f"stats conservation broken: hits {stats.hits} + misses "
            f"{stats.misses} != accesses {stats.accesses}"
        )
    if accesses is not None and stats.accesses != accesses:
        raise SanitizeViolation(
            f"stats conservation broken: {stats.accesses} accesses "
            f"recorded but {accesses} records replayed"
        )
    _count("stats_conservation")


def check_fvc_system(system, accesses: int, audit: Optional[MemoryAudit] = None) -> None:
    """Cell-boundary invariants of a DMC+FVC system.

    Runs after the trace is fully replayed.  (It may touch LRU recency
    inside an associative FVC array, which is why it runs only once the
    simulation is complete.)
    """
    stats = system.stats
    check_stats_conservation(stats, accesses)

    fvc = system.fvc
    resident = fvc.resident_line_addresses()
    if system.config.exclusive:
        overlap = set(system.main_resident_lines()).intersection(resident)
        if overlap:
            sample = ", ".join(f"{a:#x}" for a in sorted(overlap)[:3])
            raise SanitizeViolation(
                f"DMC/FVC exclusion broken: {len(overlap)} line(s) "
                f"resident in both structures (e.g. {sample})"
            )
        _count("dmc_fvc_exclusion")

    if fvc.valid_entries != len(resident):
        raise SanitizeViolation(
            f"FVC occupancy broken: valid_entries={fvc.valid_entries} "
            f"but {len(resident)} entries are resident"
        )
    recount = 0
    for line_addr in resident:
        codes = fvc.codes_for(line_addr)
        check_codes_roundtrip(
            fvc.encoder, codes, context=f"FVC entry at line {line_addr:#x}, "
        )
        recount += fvc.encoder.count_frequent(codes)
    if recount != fvc.frequent_words:
        raise SanitizeViolation(
            f"FVC occupancy broken: frequent_words={fvc.frequent_words} "
            f"but entries hold {recount} frequent codes"
        )
    _count("fvc_occupancy")

    if audit is not None:
        if audit.words_written != stats.writeback_words:
            raise SanitizeViolation(
                "write-back conservation broken: "
                f"{audit.words_written} words written to memory but "
                f"stats record {stats.writeback_words} write-back words"
            )
        if audit.words_read != stats.fill_words:
            raise SanitizeViolation(
                "fill conservation broken: "
                f"{audit.words_read} words read from memory but stats "
                f"record {stats.fill_words} fill words"
            )
        _count("writeback_conservation")


def check_baseline(cache, accesses: int) -> None:
    """Cell-boundary invariants of a conventional write-allocate cache."""
    stats = cache.stats
    check_stats_conservation(stats, accesses)
    words_per_line = cache.geometry.words_per_line
    if stats.fills != stats.misses:
        raise SanitizeViolation(
            f"fill conservation broken: {stats.fills} fills for "
            f"{stats.misses} misses (write-allocate fills once per miss)"
        )
    if stats.fill_words != stats.fills * words_per_line:
        raise SanitizeViolation(
            f"fill conservation broken: {stats.fill_words} fill words "
            f"for {stats.fills} line fills of {words_per_line} words"
        )
    if stats.writeback_words != stats.writebacks * words_per_line:
        raise SanitizeViolation(
            "write-back conservation broken: "
            f"{stats.writeback_words} write-back words for "
            f"{stats.writebacks} line write-backs of {words_per_line} words"
        )
    _count("baseline_conservation")


def check_access_count(recorded: int, replayed: int, context: str = "") -> None:
    """Generic ``recorded == replayed`` accounting check."""
    if recorded != replayed:
        raise SanitizeViolation(
            f"{context}access conservation broken: {recorded} accesses "
            f"recorded but {replayed} records replayed"
        )
    _count("access_count")


def sanitized_fvc_config(config=None):
    """The given :class:`repro.fvc.system.FvcSystemConfig` (or the
    default) with the value-consistency oracle switched on.

    ``verify_values`` cross-checks every value the system returns
    against the traced value — observational, so statistics are
    unchanged."""
    import dataclasses

    from repro.fvc.system import FvcSystemConfig

    return dataclasses.replace(config or FvcSystemConfig(), verify_values=True)
