"""SARIF 2.1.0 serialisation of a lint report.

SARIF (Static Analysis Results Interchange Format) is the lingua
franca CI systems speak: GitHub code scanning, most IDE problem
panels, and artifact diff tooling all ingest it directly.  This module
turns a :class:`~repro.analysis.linter.LintReport` into one
``sarif-version 2.1.0`` document with:

- a ``tool.driver`` rule table carrying every registered rule's code,
  title and scope, so viewers can render rule help without the repo;
- one ``result`` per surviving finding, anchored to a
  ``physicalLocation`` (file + line);
- suppressed findings included as results with a ``suppressions``
  entry of kind ``inSource`` — they are part of the record, just
  marked as accepted.

Determinism is a hard contract: the document is built purely from the
report (no timestamps, no hostnames, no absolute paths beyond what the
report already carries) and serialised with sorted keys, so two runs
over the same tree produce byte-identical output.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence

from repro.analysis.rules import ALL_RULES, ProjectRule, Rule

#: The SARIF schema this module emits.
SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

#: How the tool identifies itself in ``tool.driver``.
TOOL_NAME = "repro-fvc-lint"
INFORMATION_URI = "https://example.invalid/repro-fvc/docs/ANALYSIS.md"


def _rule_descriptor(rule: Rule) -> Dict:
    kind = "project" if isinstance(rule, ProjectRule) else "file"
    return {
        "id": rule.code,
        "name": type(rule).__name__,
        "shortDescription": {"text": rule.title},
        "properties": {
            "kind": kind,
            "scope": rule.scope_description(),
        },
    }


def _result(finding, rules_index: Dict[str, int], suppressed: bool) -> Dict:
    result: Dict = {
        "ruleId": finding.code,
        "level": "error",
        "message": {"text": finding.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": finding.path.replace("\\", "/"),
                    },
                    "region": {"startLine": finding.line},
                }
            }
        ],
    }
    if finding.code in rules_index:
        result["ruleIndex"] = rules_index[finding.code]
    if suppressed:
        result["suppressions"] = [
            {
                "kind": "inSource",
                "justification": "repro: allow[...] comment at the site",
            }
        ]
    return result


def report_to_sarif(report, rules: Optional[Sequence[Rule]] = None) -> Dict:
    """The SARIF 2.1.0 document for one lint report, as a plain dict.

    ``rules`` defaults to the full registry; pass the linter's (possibly
    ``--select``-filtered) rule list to keep the driver table in step
    with what actually ran.
    """
    rule_list = list(ALL_RULES if rules is None else rules)
    rules_index = {rule.code: i for i, rule in enumerate(rule_list)}
    results: List[Dict] = []
    for finding in sorted(report.findings):
        results.append(_result(finding, rules_index, suppressed=False))
    for finding in sorted(report.suppressed):
        results.append(_result(finding, rules_index, suppressed=True))
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": TOOL_NAME,
                        "informationUri": INFORMATION_URI,
                        "rules": [_rule_descriptor(r) for r in rule_list],
                    }
                },
                "results": results,
                "properties": {
                    "filesChecked": report.files_checked,
                    "suppressionBudget": report.budget,
                    "suppressionsUsed": len(report.suppressed),
                    "unusedSuppressions": [
                        {"uri": path, "startLine": line, "codes": codes}
                        for path, line, codes in report.unused_suppressions
                    ],
                },
            }
        ],
    }


def render_sarif(report, rules: Optional[Sequence[Rule]] = None) -> str:
    """Serialise the report deterministically: sorted keys, two-space
    indent, trailing newline — byte-identical across runs."""
    return (
        json.dumps(report_to_sarif(report, rules), indent=2, sort_keys=True)
        + "\n"
    )
