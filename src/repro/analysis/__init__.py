"""Static analysis and runtime sanitizing for the reproduction's
determinism invariants.

The repo's value rests on bit-identical reproduction: parallel runs
match sequential ones, served results match CLI runs.  Nothing about
Python enforces the coding discipline that makes that true, so this
package does, in two halves:

* :mod:`repro.analysis.linter` — an AST-walking lint framework with
  pluggable rules (:mod:`repro.analysis.rules`) that reject the
  constructs known to break determinism or canonical serialisation.
  Run it as ``repro-fvc lint`` or ``python -m repro.analysis``.
* :mod:`repro.analysis.sanitize` — runtime invariant assertions wired
  into the simulation engine (``REPRO_SANITIZE=1`` or ``repro-fvc run
  --sanitize``): encode/decode round-trips, DMC/FVC exclusion,
  write-back conservation and stats conservation, all checked at cell
  boundaries so sanitized runs stay bit-identical to unsanitized ones.

See ``docs/ANALYSIS.md`` for the rule catalogue and suppression policy.
"""

from __future__ import annotations
