"""Analytical cache access-time model (paper Fig. 9; CACTI substitute).

The paper uses the CACTI tool (Wilton & Jouppi, DEC WRL TR 93/5) at
0.8 µm to argue that adding an FVC does not lengthen the cache access
path.  CACTI itself is proprietary-era C code we re-derive in simplified
form: the access path decomposes the same way —

    decode  →  wordline  →  bitline  →  sense amp  →  tag compare / mux

— with each stage's delay a function of the array's rows and columns.
The stage constants below are *calibrated*, not transistor-derived, to
pin the three load-bearing facts the paper states for 0.8 µm:

* a 512-entry top-7 FVC takes ≈ 6 ns including value decode;
* a 4-entry fully-associative victim cache takes ≈ 9 ns;
* exactly 12 of the 15 DMC configurations (4–64 KB × 16/32/64 B lines)
  are no faster than that 512-entry FVC (the Fig. 12 selection), the
  fast outliers being the small-and-wide arrays.

Only these *orderings* feed the experiments; absolute nanoseconds are
never compared against the paper's plots.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.cache.geometry import CacheGeometry
from repro.common.errors import ConfigurationError
from repro.common.words import is_power_of_two

#: Physical address width assumed for tag sizing.
ADDRESS_BITS = 32


@dataclass(frozen=True)
class CactiModel:
    """Calibrated stage delays (nanoseconds, 0.8 µm).

    ``scale`` multiplies the whole RAM path, standing in for the process
    node; the individual coefficients set the shape of each stage.
    """

    #: Fixed overhead of the RAM path (sense amp, drivers).
    ram_fixed_ns: float = 1.2
    #: Row-decoder delay per doubling of rows.
    decode_per_log_row_ns: float = 0.30
    #: Bitline/wordline RC growth with array height.
    bitline_per_sqrt_row_ns: float = 0.09
    #: Wordline/output growth per bit of array width.
    wordline_per_bit_ns: float = 0.0008
    #: Tag comparator delay per tag bit.
    compare_per_tag_bit_ns: float = 0.01
    #: Process/global scale factor.
    scale: float = 1.22
    #: Fixed cost of the FVC's value-decode register mux.
    fvc_decode_ns: float = 0.8
    #: Narrow FVC arrays are column-multiplexed; base + per-log-entry.
    fvc_fixed_ns: float = 1.58
    fvc_per_log_entry_ns: float = 0.40
    #: Fully-associative CAM search: fixed broadcast + per-log-entry.
    cam_fixed_ns: float = 8.2
    cam_per_log_entry_ns: float = 0.40
    #: Way-select overhead for set-associative RAM caches.
    way_mux_fixed_ns: float = 0.4
    way_mux_per_log_way_ns: float = 0.30

    # ------------------------------------------------------------------
    def _ram_array_ns(self, rows: int, width_bits: int, tag_bits: int) -> float:
        """Delay of one RAM array of ``rows`` × ``width_bits``."""
        if rows <= 0 or width_bits <= 0:
            raise ConfigurationError("array must have positive rows and width")
        raw = (
            self.ram_fixed_ns
            + self.decode_per_log_row_ns * math.log2(max(rows, 2))
            + self.bitline_per_sqrt_row_ns * math.sqrt(rows)
            + self.wordline_per_bit_ns * width_bits
            + self.compare_per_tag_bit_ns * tag_bits
        )
        return self.scale * raw

    # Public per-structure models ------------------------------------------
    def direct_mapped_access_ns(self, geometry: CacheGeometry) -> float:
        """Access time of a direct-mapped data cache."""
        if geometry.ways != 1:
            raise ConfigurationError("use set_associative_access_ns for ways > 1")
        tag_bits = ADDRESS_BITS - geometry.line_shift - geometry.set_shift
        return self._ram_array_ns(
            rows=geometry.num_sets,
            width_bits=geometry.line_bytes * 8,
            tag_bits=tag_bits,
        )

    def set_associative_access_ns(self, geometry: CacheGeometry) -> float:
        """Access time of an n-way set-associative RAM cache."""
        if geometry.ways == 1:
            return self.direct_mapped_access_ns(geometry)
        tag_bits = ADDRESS_BITS - geometry.line_shift - geometry.set_shift
        base = self._ram_array_ns(
            rows=geometry.num_sets,
            width_bits=geometry.line_bytes * 8 * geometry.ways,
            tag_bits=tag_bits,
        )
        return (
            base
            + self.way_mux_fixed_ns
            + self.way_mux_per_log_way_ns * math.log2(geometry.ways)
        )

    def fully_associative_access_ns(self, entries: int, line_bytes: int) -> float:
        """Access time of a fully-associative (CAM-tagged) cache.

        The CAM broadcast dominates, which is why a 4-entry victim cache
        is *slower* than a 512-entry direct-mapped FVC (Fig. 15's
        equal-time pairing).
        """
        if not is_power_of_two(entries) or line_bytes <= 0:
            raise ConfigurationError("bad fully-associative configuration")
        return self.cam_fixed_ns + self.cam_per_log_entry_ns * math.log2(
            max(entries, 2)
        )

    def fvc_access_ns(
        self, entries: int, code_bits: int, words_per_line: int
    ) -> float:
        """Access time of a direct-mapped FVC, including value decode.

        The data array is only ``words_per_line * code_bits`` bits wide
        (24 bits for the headline 8-word top-7 configuration), so the
        array itself is fast; the decode of the matched code through the
        frequent-value registers adds a fixed mux delay.
        """
        if not is_power_of_two(entries):
            raise ConfigurationError(f"FVC entries={entries} must be a power of two")
        if not 1 <= code_bits <= 8 or words_per_line <= 0:
            raise ConfigurationError("bad FVC configuration")
        array = self.fvc_fixed_ns + self.fvc_per_log_entry_ns * math.log2(
            max(entries, 2)
        )
        # Wider data fields and tags perturb the time only slightly —
        # the paper notes "small variation ... due to the varying sizes
        # of tags determined by the DMC configuration".
        width_bits = words_per_line * code_bits
        array += self.wordline_per_bit_ns * width_bits * self.scale
        return array + self.fvc_decode_ns

    def fvc_fits_dmc(
        self, fvc_entries: int, code_bits: int, geometry: CacheGeometry
    ) -> bool:
        """True when the FVC's access time does not exceed the DMC's —
        the admissibility criterion used to pick the Fig. 12 configs."""
        fvc_time = self.fvc_access_ns(
            fvc_entries, code_bits, geometry.words_per_line
        )
        return fvc_time <= self.direct_mapped_access_ns(geometry)


#: The calibrated 0.8 µm model used by every experiment.
DEFAULT_MODEL = CactiModel()
