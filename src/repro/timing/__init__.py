"""Cache access-time, energy, and execution-time modelling (CACTI
substitute + the paper's power and performance arguments)."""

from repro.timing.cacti import CactiModel, DEFAULT_MODEL
from repro.timing.energy import DEFAULT_ENERGY_MODEL, EnergyModel
from repro.timing.performance import (
    DEFAULT_PERFORMANCE_MODEL,
    PerformanceModel,
)

__all__ = [
    "CactiModel",
    "DEFAULT_MODEL",
    "EnergyModel",
    "DEFAULT_ENERGY_MODEL",
    "PerformanceModel",
    "DEFAULT_PERFORMANCE_MODEL",
]
