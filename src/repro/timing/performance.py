"""Execution-time estimation (the paper's "reduced miss rates should
provide lower execution times").

A deliberately simple trace-driven CPI model in the style of early
cache studies:

    cycles = accesses * hit_cycles + misses * miss_penalty_cycles
    time   = cycles * cycle_time

where the cycle time is set by the slowest structure on the L1 access
path (the CACTI-style model supplies the nanoseconds), and the miss
penalty is a fixed memory round-trip plus the line transfer.  Only
memory accesses are modelled (a perfect-compute processor), which is
the regime where cache studies compare configurations.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.geometry import CacheGeometry
from repro.cache.stats import CacheStats
from repro.timing.cacti import DEFAULT_MODEL, CactiModel


@dataclass(frozen=True)
class PerformanceModel:
    """Calibrated penalty parameters (early-2000s memory system).

    ``memory_latency_ns`` is the fixed DRAM round trip;
    ``bus_ns_per_word`` the per-word transfer cost on the memory bus.
    """

    memory_latency_ns: float = 60.0
    bus_ns_per_word: float = 5.0
    timing: CactiModel = DEFAULT_MODEL

    def cycle_time_ns(self, geometry: CacheGeometry, fvc_entries: int = 0,
                      code_bits: int = 3) -> float:
        """The L1 path's cycle time: the slower of the conventional
        array and (when present) the FVC, as the paper's Fig. 9 frames
        it."""
        if geometry.ways == 1:
            base = self.timing.direct_mapped_access_ns(geometry)
        else:
            base = self.timing.set_associative_access_ns(geometry)
        if fvc_entries:
            fvc = self.timing.fvc_access_ns(
                fvc_entries, code_bits, geometry.words_per_line
            )
            return max(base, fvc)
        return base

    def miss_penalty_ns(self, geometry: CacheGeometry) -> float:
        """Fixed memory latency plus the line transfer."""
        return (
            self.memory_latency_ns
            + geometry.words_per_line * self.bus_ns_per_word
        )

    def execution_time_ns(
        self,
        stats: CacheStats,
        geometry: CacheGeometry,
        fvc_entries: int = 0,
        code_bits: int = 3,
    ) -> float:
        """Total memory-access time of the simulated run."""
        cycle = self.cycle_time_ns(geometry, fvc_entries, code_bits)
        penalty = self.miss_penalty_ns(geometry)
        return stats.accesses * cycle + stats.misses * penalty

    def amat_ns(
        self,
        stats: CacheStats,
        geometry: CacheGeometry,
        fvc_entries: int = 0,
        code_bits: int = 3,
    ) -> float:
        """Average memory access time."""
        if not stats.accesses:
            return 0.0
        return self.execution_time_ns(
            stats, geometry, fvc_entries, code_bits
        ) / stats.accesses


#: Shared default model.
DEFAULT_PERFORMANCE_MODEL = PerformanceModel()
