"""Energy accounting for the cache hierarchy (the paper's power story).

The paper motivates the FVC through power: reduced miss rates cut
off-chip traffic, and "reductions in traffic will directly result in
corresponding reductions in power consumption".  This module makes the
argument quantitative with a simple, calibrated energy model in the
spirit of Kamble & Ghose's cache power models:

* each access to an SRAM array costs energy proportional to the bits
  read/written (decode + wordline + bitline swings);
* each word moved across the off-chip bus costs two orders of magnitude
  more — which is why traffic dominates.

Absolute numbers are representative early-2000s values (nJ scale);
only the relative ordering between configurations is meaningful, as
with the access-time model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.geometry import CacheGeometry
from repro.cache.stats import CacheStats


@dataclass(frozen=True)
class EnergyModel:
    """Calibrated per-event energies (nanojoules).

    ``sram_bit_nj`` covers the on-chip array access per bit involved;
    ``bus_word_nj`` covers driving one 32-bit word across the off-chip
    bus including DRAM access share.
    """

    sram_bit_nj: float = 0.0004
    bus_word_nj: float = 1.6
    #: Per-access fixed cost of the tag path / control.
    access_overhead_nj: float = 0.02
    #: The FVC's value-decode register mux, per FVC hit.
    fvc_decode_nj: float = 0.005

    # ------------------------------------------------------------------
    def dmc_access_nj(self, geometry: CacheGeometry) -> float:
        """Energy of one conventional cache access (line read + tag)."""
        bits = geometry.line_bytes * 8 + 32  # data + tag path
        return self.access_overhead_nj + bits * self.sram_bit_nj

    def fvc_access_nj(
        self, words_per_line: int, code_bits: int
    ) -> float:
        """Energy of one FVC probe (narrow code field + tag)."""
        bits = words_per_line * code_bits + 32
        return (
            self.access_overhead_nj
            + bits * self.sram_bit_nj
            + self.fvc_decode_nj
        )

    def traffic_nj(self, words: int) -> float:
        """Energy of moving ``words`` across the off-chip bus."""
        return words * self.bus_word_nj

    # ------------------------------------------------------------------
    def baseline_total_nj(
        self, stats: CacheStats, geometry: CacheGeometry
    ) -> float:
        """Total energy of a run on the conventional cache alone."""
        return (
            stats.accesses * self.dmc_access_nj(geometry)
            + self.traffic_nj(stats.traffic_words)
        )

    def fvc_system_total_nj(
        self,
        stats: CacheStats,
        geometry: CacheGeometry,
        code_bits: int,
    ) -> float:
        """Total energy of a run on the DMC+FVC system.

        Both structures are probed in parallel on every access (the
        paper's design), so each access pays both array costs.
        """
        per_access = self.dmc_access_nj(geometry) + self.fvc_access_nj(
            geometry.words_per_line, code_bits
        )
        return stats.accesses * per_access + self.traffic_nj(
            stats.traffic_words
        )


#: Shared default model.
DEFAULT_ENERGY_MODEL = EnergyModel()
