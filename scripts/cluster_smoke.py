"""Cluster fabric smoke gate (CI: the cluster-smoke job).

Starts an in-process coordinator (``ReproService`` on an ephemeral
port), attaches two real ``repro-fvc worker`` subprocesses, runs the
fig13 test-scale sweep through the cluster lane, and gates on the
bit-identical contract: the stored payload must equal what
``repro-fvc run fig13 --fast --json`` (``--jobs 1``) prints, byte for
byte.  Every cell must have been computed via worker leases — zero
coordinator-side fallback.

``--kill-one`` runs the failure drill on top: one worker is poisoned
(``REPRO_FAULTS=engine.cell:hang``) so its first cell stalls, the
worker is then SIGKILLed mid-lease, and the run must still complete
with identical bytes — the coordinator's worker-TTL reap re-issues the
orphaned lease to the surviving worker, and the audit log must record
the takeover.

``--kill-coordinator`` drills the other side of the fabric: the
coordinator runs as a real ``repro-fvc serve --state-dir`` subprocess,
is SIGKILLed mid-fig13 (after at least one lease completed), and is
restarted on the same port and state dir.  The restarted coordinator
must recover the job from its write-ahead journal, the workers must
re-attach through their heartbeat ``known: false`` loop, and the final
payload must still be byte-identical to ``run --jobs 1``.

Usage::

    PYTHONPATH=src python scripts/cluster_smoke.py \
        [--kill-one | --kill-coordinator]
"""

from __future__ import annotations

import argparse
import io
import os
import signal
import subprocess
import sys
import tempfile
import time
from contextlib import redirect_stdout

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

EXPERIMENT = "fig13"


def local_payload() -> bytes:
    """What ``run fig13 --fast --json`` prints with ``--jobs 1``."""
    from repro.cli import main

    buffer = io.StringIO()
    with redirect_stdout(buffer):
        rc = main(["run", EXPERIMENT, "--fast", "--json"])
    assert rc == 0, f"local run failed with exit code {rc}"
    return buffer.getvalue().encode()


def spawn_worker(url: str, name: str, cache_dir: str, faults: str = ""):
    env = dict(
        os.environ,
        PYTHONPATH=os.path.join(REPO_ROOT, "src"),
        REPRO_TRACE_CACHE_DIR=cache_dir,
    )
    env.pop("REPRO_FAULTS", None)
    if faults:
        env["REPRO_FAULTS"] = faults
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro", "worker",
            "--coordinator", url, "--name", name, "--poll", "0.1",
        ],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.STDOUT,
    )


def wait_until(predicate, timeout: float, message: str) -> None:
    deadline = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() > deadline:
            raise SystemExit(f"cluster smoke FAILED: {message}")
        time.sleep(0.1)


def spawn_coordinator(port: int, tmp: str):
    """A real ``serve`` subprocess with a durable ``--state-dir``."""
    env = dict(os.environ, PYTHONPATH=os.path.join(REPO_ROOT, "src"))
    env.pop("REPRO_FAULTS", None)
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--port", str(port),
            "--workers", "1",
            "--store-dir", os.path.join(tmp, "results"),
            "--state-dir", os.path.join(tmp, "state"),
            "--worker-ttl", "3",
            "--lease-timeout", "120",
        ],
        env=env,
        start_new_session=True,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.STDOUT,
    )


def killpg(process) -> None:
    try:
        os.killpg(process.pid, signal.SIGKILL)
    except ProcessLookupError:
        pass
    process.wait(timeout=30)


def kill_coordinator_drill() -> int:
    """SIGKILL the coordinator mid-run, restart it, gate recovery."""
    import socket

    from repro.service.client import ServiceClient, ServiceError

    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
    url = f"http://127.0.0.1:{port}"
    client = ServiceClient(url)

    def healthy() -> bool:
        try:
            client.healthz()
            return True
        except ServiceError:
            return False

    def metric(name: str) -> float:
        try:
            return client.metrics()["metrics"][name]["value"]
        except (ServiceError, KeyError):
            return -1.0

    tmp = tempfile.mkdtemp(prefix="cluster-smoke-")
    coordinator = spawn_coordinator(port, tmp)
    workers = []
    try:
        wait_until(healthy, 60.0, "coordinator never became healthy")
        # Slow every cell so the SIGKILL demonstrably lands mid-run:
        # some leases completed, others still in flight.
        for index in range(2):
            workers.append(
                spawn_worker(
                    url, f"w{index}", os.path.join(tmp, f"cache-{index}"),
                    faults="engine.cell:delay(0.3)@1-999",
                )
            )
        wait_until(
            lambda: metric("cluster_workers") == 2,
            30.0, "workers never registered",
        )
        job = client.submit_experiment(EXPERIMENT, fast=True)
        wait_until(
            lambda: metric("cluster_leases_completed_total") >= 1,
            120.0, "no lease completed before the kill",
        )
        killpg(coordinator)
        print(f"SIGKILLed coordinator pid {coordinator.pid} mid-run")

        coordinator = spawn_coordinator(port, tmp)
        wait_until(healthy, 60.0, "restarted coordinator never came up")
        recovered = metric("journal_recovered_jobs_total")
        assert recovered >= 1, f"journal recovered {recovered} jobs"
        view = client.status(job["id"])
        assert view["state"] in ("queued", "running", "done"), view
        # Workers re-attach on their own: heartbeat answers
        # ``known: false`` and the loop re-registers.
        wait_until(
            lambda: metric("cluster_workers") == 2,
            60.0, "workers never re-attached after the restart",
        )
        done = client.wait(job["id"], timeout=600)
        assert done["state"] == "done", done
        served = client.result_bytes(done["result_key"])
        expected = local_payload()
        if served != expected:
            raise SystemExit(
                "cluster smoke FAILED: post-recovery payload differs "
                f"from run --jobs 1 ({len(served)} vs "
                f"{len(expected)} bytes)"
            )
        print(
            f"coordinator-kill OK: job {job['id']} recovered from the "
            f"journal ({int(recovered)} job(s)), workers re-attached, "
            f"{EXPERIMENT} payload byte-identical"
        )
        return 0
    finally:
        for worker in workers:
            if worker.poll() is None:
                worker.terminate()
        for worker in workers:
            try:
                worker.wait(timeout=10)
            except subprocess.TimeoutExpired:
                worker.kill()
        if coordinator.poll() is None:
            killpg(coordinator)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--kill-one",
        action="store_true",
        help="SIGKILL one worker mid-lease and gate the takeover",
    )
    parser.add_argument(
        "--kill-coordinator",
        action="store_true",
        help="SIGKILL the coordinator mid-run, restart it, and gate "
        "journal recovery + worker re-attach",
    )
    args = parser.parse_args(argv)
    if args.kill_coordinator:
        return kill_coordinator_drill()

    from repro.service.client import ServiceClient
    from repro.service.server import ReproService, ServiceConfig

    tmp = tempfile.mkdtemp(prefix="cluster-smoke-")
    service = ReproService(
        ServiceConfig(
            port=0,
            workers=1,
            store_dir=os.path.join(tmp, "results"),
            # A tight TTL keeps the SIGKILL drill fast; the lease
            # timeout stays long so recovery demonstrably comes from
            # worker-loss reaping, not lease expiry.
            cluster_worker_ttl=3.0,
            cluster_lease_timeout=120.0,
        )
    ).start()
    workers = []
    try:
        hang = "engine.cell:hang(300)@1" if args.kill_one else ""
        workers.append(
            spawn_worker(
                service.url, "victim" if args.kill_one else "w0",
                os.path.join(tmp, "cache-0"), faults=hang,
            )
        )
        workers.append(
            spawn_worker(
                service.url, "w1", os.path.join(tmp, "cache-1")
            )
        )
        wait_until(
            lambda: service.cluster.live_worker_count() == 2,
            timeout=30.0,
            message="workers never registered",
        )

        client = ServiceClient(service.url)
        job = client.submit_experiment(EXPERIMENT, fast=True)

        if args.kill_one:
            # The poisoned worker's first leased cell hangs.  Wait
            # until it actually holds a lease, then SIGKILL it.
            victim = workers[0]

            def victim_holds_a_lease() -> bool:
                view = service.cluster.workers_view()
                return any(
                    entry["pid"] == victim.pid and entry["leases"] > 0
                    for entry in view["workers"]
                )

            wait_until(
                victim_holds_a_lease,
                timeout=60.0,
                message="poisoned worker never took a lease",
            )
            os.kill(victim.pid, signal.SIGKILL)
            victim.wait(timeout=10)
            print(f"SIGKILLed worker pid {victim.pid} mid-lease")

        done = client.wait(job["id"], timeout=600)
        assert done["state"] == "done", done
        served = client.result_bytes(done["result_key"])

        expected = local_payload()
        if served != expected:
            raise SystemExit(
                "cluster smoke FAILED: served payload differs from "
                f"run --jobs 1 ({len(served)} vs {len(expected)} bytes)"
            )

        entries = service.metrics()["metrics"]
        completed = entries["cluster_leases_completed_total"]["value"]
        fallback = entries["cluster_local_fallback_total"]["value"]
        assert completed >= 1, entries
        if not args.kill_one:
            assert fallback == 0, (
                f"expected pure worker execution, saw {fallback} "
                "local-fallback cells"
            )

        if args.kill_one:
            events = [e["event"] for e in service.cluster.log_events()]
            assert "worker_lost" in events, events
            assert "reissue" in events, events
            lost = entries["cluster_workers_lost_total"]["value"]
            reissued = entries["cluster_leases_reissued_total"]["value"]
            assert lost >= 1 and reissued >= 1, entries
            print(
                f"takeover OK: {lost} worker(s) lost, "
                f"{reissued} lease(s) re-issued, audit log has "
                f"{events.count('worker_lost')} worker_lost + "
                f"{events.count('reissue')} reissue entries"
            )

        print(
            f"cluster smoke OK: {EXPERIMENT} payload byte-identical "
            f"across 2 workers ({completed} leases completed, "
            f"{fallback} local fallback)"
        )
        return 0
    finally:
        for worker in workers:
            if worker.poll() is None:
                worker.terminate()
        for worker in workers:
            try:
                worker.wait(timeout=10)
            except subprocess.TimeoutExpired:
                worker.kill()
        service.stop(drain=False)


if __name__ == "__main__":
    raise SystemExit(main())
