"""Regenerates Figure 11 of the paper at full scale.

Frequent value content of the FVC and the derived storage factor
(paper: >40% content, ~4.27x less storage).
"""

from benchmarks.conftest import run_experiment


def test_fig11_compression(benchmark, store):
    result = run_experiment(benchmark, store, "fig11")
    contents = [r["frequent_content_%"] for r in result.rows]
    assert sum(contents) / len(contents) > 40
