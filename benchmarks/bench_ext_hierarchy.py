"""Extension benchmark: the FVC behind a unified 64KB 4-way L2 —
does the benefit survive hierarchy composition?
"""

from benchmarks.conftest import run_experiment


def test_ext_hierarchy(benchmark, store):
    result = run_experiment(benchmark, store, "ext-hierarchy")
    # The FVC's first-order effect behind an L2 is L1-L2 traffic saved.
    saved = [r["l2_read_traffic_saved_%"] for r in result.rows]
    assert sum(saved) / len(saved) > 5
