"""Regenerates Figure 2 of the paper at full scale.

Frequent value locality of the SPECfp95 analogs.
"""

from benchmarks.conftest import run_experiment


def test_fig02_fvl_fp(benchmark, store):
    result = run_experiment(benchmark, store, "fig2")
    assert all(r["occ_top10_%"] > 25 for r in result.rows)
