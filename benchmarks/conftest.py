"""Benchmark fixtures: a session-wide trace store and result emission.

Each ``bench_*`` module runs one paper experiment at full scale
(reference inputs, full configuration sweeps) under pytest-benchmark,
prints the regenerated table through the capture bypass (so it lands in
``pytest ... | tee`` output), and saves it under benchmarks/results/.
"""

from __future__ import annotations

import pathlib
import sys

import pytest

from repro.experiments.base import ExperimentResult
from repro.experiments.registry import get_experiment
from repro.workloads.store import TraceStore

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def store() -> TraceStore:
    """One store for the whole benchmark session (ref traces are big).

    Backed by the on-disk trace cache, so only the first benchmark run
    on a machine pays for ref-input synthesis.
    """
    return TraceStore(max_traces=8, disk_cache="auto")


def emit(result: ExperimentResult) -> None:
    """Print the regenerated table (bypassing capture) and archive it."""
    text = result.format_table()
    print("\n" + text, file=sys.__stdout__, flush=True)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{result.experiment_id}.txt").write_text(text + "\n")


def run_experiment(benchmark, store: TraceStore, experiment_id: str):
    """Benchmark one full experiment run and emit its table."""
    experiment = get_experiment(experiment_id)
    result = benchmark.pedantic(
        lambda: experiment.run(store, fast=False), rounds=1, iterations=1
    )
    emit(result)
    assert result.rows
    return result
