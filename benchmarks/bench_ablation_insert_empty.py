"""Regenerates Section 3 ablation of the paper at full scale.

Inserting all-infrequent lines into the FVC on eviction.
"""

from benchmarks.conftest import run_experiment


def test_ablation_insert_empty(benchmark, store):
    result = run_experiment(benchmark, store, "ablation-insert-empty")
    assert result.rows
