"""Regenerates Figure 3 of the paper at full scale.

Coverage-over-time curves for the gcc analog.
"""

from benchmarks.conftest import run_experiment


def test_fig03_timeline(benchmark, store):
    result = run_experiment(benchmark, store, "fig3")
    assert len(result.rows) >= 10
