"""The committed cluster-fabric trajectory (``make bench-cluster``).

Measures the fig13 test-scale sweep end to end through the distributed
fabric — coordinator + N real ``repro-fvc worker`` subprocesses — at
1, 2 and 4 workers, median of :data:`REPEATS` timed runs each, and
writes ``BENCH_cluster.json`` at the repo root.

Every row re-gates the determinism contract: the payload served by the
sharded run must be byte-identical to what ``repro-fvc run fig13
--fast --json`` (``--jobs 1``) prints.  There is deliberately no
speed *gate*: at test scale the sweep is protocol-bound, so the file
records the wall-clock trajectory for trend inspection rather than
asserting a speedup.

Each timed sample covers submit-to-done only; worker spawn/registration
happens outside the clock, one untimed warmup run per worker count
settles trace caches, and every run gets a fresh result store so no
sample is answered from the memo.
"""

from __future__ import annotations

import argparse
import io
import json
import os
import statistics
import subprocess
import sys
import tempfile
import time
from contextlib import redirect_stdout

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

EXPERIMENT = "fig13"
WORKER_COUNTS = (1, 2, 4)
REPEATS = 3


def local_payload() -> bytes:
    from repro.cli import main

    buffer = io.StringIO()
    with redirect_stdout(buffer):
        assert main(["run", EXPERIMENT, "--fast", "--json"]) == 0
    return buffer.getvalue().encode()


def spawn_worker(url: str, name: str, cache_dir: str):
    env = dict(
        os.environ,
        PYTHONPATH=os.path.join(REPO_ROOT, "src"),
        REPRO_TRACE_CACHE_DIR=cache_dir,
    )
    env.pop("REPRO_FAULTS", None)
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro", "worker",
            "--coordinator", url, "--name", name, "--poll", "0.05",
        ],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.STDOUT,
    )


def timed_run(worker_count: int, cache_dirs, store_dir, expected: bytes):
    """One coordinator + worker_count workers, one sharded fig13 run.

    Returns (seconds, payload_identical)."""
    from repro.service.client import ServiceClient
    from repro.service.server import ReproService, ServiceConfig

    service = ReproService(
        ServiceConfig(port=0, workers=1, store_dir=store_dir)
    ).start()
    workers = []
    try:
        for index in range(worker_count):
            workers.append(
                spawn_worker(service.url, f"w{index}", cache_dirs[index])
            )
        deadline = time.monotonic() + 60.0
        while service.cluster.live_worker_count() < worker_count:
            if time.monotonic() > deadline:
                raise SystemExit("bench-cluster: workers never registered")
            time.sleep(0.05)

        client = ServiceClient(service.url)
        started = time.perf_counter()
        job = client.submit_experiment(EXPERIMENT, fast=True)
        done = client.wait(job["id"], timeout=600)
        elapsed = time.perf_counter() - started
        assert done["state"] == "done", done
        served = client.result_bytes(done["result_key"])
        return elapsed, served == expected
    finally:
        for worker in workers:
            if worker.poll() is None:
                worker.terminate()
        for worker in workers:
            try:
                worker.wait(timeout=10)
            except subprocess.TimeoutExpired:
                worker.kill()
        service.stop(drain=False)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="fig13 wall-clock through the cluster fabric "
        "at 1/2/4 workers"
    )
    parser.add_argument(
        "-o", "--output", default="BENCH_cluster.json",
        help="result file (default: %(default)s)",
    )
    args = parser.parse_args(argv)

    os.environ.pop("REPRO_FAULTS", None)
    expected = local_payload()

    tmp = tempfile.mkdtemp(prefix="bench-cluster-")
    # Cache dirs persist across runs so synthesis cost lands in warmup.
    cache_dirs = [
        os.path.join(tmp, f"cache-{index}")
        for index in range(max(WORKER_COUNTS))
    ]

    rows = {}
    identical = True
    store_serial = 0
    for count in WORKER_COUNTS:
        timings = []
        for iteration in range(REPEATS + 1):  # first run is warmup
            store_serial += 1
            store_dir = os.path.join(tmp, f"results-{store_serial}")
            seconds, same = timed_run(count, cache_dirs, store_dir, expected)
            identical = identical and same
            if iteration > 0:
                timings.append(seconds)
        median = statistics.median(timings)
        rows[str(count)] = {
            "seconds": timings,
            "median_seconds": median,
        }
        print(f"{EXPERIMENT} @ {count} worker(s): median {median:.3f}s")

    report = {
        "schema": "repro.bench-cluster/1",
        "experiment": EXPERIMENT,
        "repeats": REPEATS,
        "workers": rows,
        "payloads_identical": identical,
        "passed": identical,
    }
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")

    if not identical:
        print(
            "FAIL: sharded payload diverged from run --jobs 1",
            file=sys.stderr,
        )
        return 1
    print(f"payloads byte-identical at every worker count -> {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
