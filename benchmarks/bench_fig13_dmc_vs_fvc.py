"""Regenerates Figure 13 of the paper at full scale.

Small DMC + FVC against a doubled DMC (m88ksim, perl).
"""

from benchmarks.conftest import run_experiment


def test_fig13_dmc_vs_fvc(benchmark, store):
    result = run_experiment(benchmark, store, "fig13")
    top7 = [r for r in result.rows if r["top_k"] == 7]
    wins = sum(1 for r in top7 if r["fvc_wins"] == "yes")
    assert wins >= len(top7) * 0.7
