"""Extension benchmark: FVC configured from a train-input profile, deployed on ref.
"""

from benchmarks.conftest import run_experiment


def test_ext_cross_input(benchmark, store):
    result = run_experiment(benchmark, store, "ext-cross-input")
    retained = [r["retained_%"] for r in result.rows
                if r["self_profiled_red_%"] > 5]
    assert retained and sum(retained) / len(retained) > 30
