"""Extension benchmark: content-routed FVC + victim buffer hybrid
(following the paper's closing suggestion to exploit FVL further).
"""

from benchmarks.conftest import run_experiment


def test_ext_hybrid(benchmark, store):
    result = run_experiment(benchmark, store, "ext-hybrid")
    # The hybrid should not lose to the better of its two parts by much
    # on average, and should win somewhere (complementary strengths).
    margins = [
        row["hybrid_red_%"] - max(row["fvc_only_red_%"], row["vc_only_red_%"])
        for row in result.rows
    ]
    assert sum(margins) / len(margins) > -10
    assert max(margins) > -2
