"""Regenerates Figure 4 of the paper at full scale.

Share of 16KB-DMC misses attributable to the top-10 values
(paper: about half).
"""

from benchmarks.conftest import run_experiment


def test_fig04_miss_attrib(benchmark, store):
    result = run_experiment(benchmark, store, "fig4")
    shares = [r["miss_top10_accessed_%"] for r in result.rows]
    assert sum(shares) / len(shares) > 40
