"""Regenerates Figure 10 of the paper at full scale.

Miss-rate reduction vs FVC size (64-4096 entries), 16KB DMC,
8-word lines, top-7 values.
"""

from benchmarks.conftest import run_experiment


def test_fig10_fvc_size(benchmark, store):
    result = run_experiment(benchmark, store, "fig10")
    rows = {r["benchmark"]: r for r in result.rows}
    # m88ksim and perl saturate with the smallest FVC.
    for name in ("m88ksim", "perl"):
        assert rows[name]["red_64e_%"] > rows[name]["red_4096e_%"] - 25
    # go/gcc/vortex grow steadily with size.
    for name in ("go", "gcc", "vortex"):
        assert rows[name]["red_4096e_%"] > rows[name]["red_64e_%"] + 10
