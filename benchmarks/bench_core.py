"""Microbenchmarks of the core simulation loops.

Unlike the per-figure benchmarks (one full experiment per run), these
use pytest-benchmark's statistical mode to track the throughput of the
hot paths: the baseline cache, the DMC+FVC system, the encoder, and the
profiling counters.

Run directly (``make bench-core``), the module instead measures the
fig13 DMC-vs-FVC sweep under ``REPRO_BACKEND=python`` and
``REPRO_BACKEND=numpy`` and writes ``BENCH_core.json`` at the repo
root — the committed perf trajectory.  The numpy backend must beat the
pure-Python oracle by at least :data:`SPEEDUP_GATE` on this sweep, and
both runs must produce byte-identical canonical payloads (the dual-run
contract, enforced here as well as in tests/kernels/test_dual_run.py).
"""

from __future__ import annotations

import pytest

from repro.cache.direct import DirectMappedCache
from repro.cache.geometry import CacheGeometry
from repro.cache.setassoc import SetAssociativeCache
from repro.experiments.common import encoder_for
from repro.fvc.system import FvcSystem
from repro.profiling.access import profile_accessed_values
from repro.profiling.topk import SpaceSaving

GEOMETRY = CacheGeometry(16 * 1024, 32)


@pytest.fixture(scope="module")
def records(store):
    return store.get("gcc", "test").records


@pytest.fixture(scope="module")
def encoder(store):
    return encoder_for(store.get("gcc", "test"), 7)


def test_direct_mapped_throughput(benchmark, records):
    benchmark(lambda: DirectMappedCache(GEOMETRY).simulate(records))


def test_direct_mapped_batch_throughput(benchmark, records):
    benchmark(lambda: DirectMappedCache(GEOMETRY).simulate_batch(records))


def test_two_way_throughput(benchmark, records):
    geometry = CacheGeometry(16 * 1024, 32, ways=2)
    benchmark(lambda: SetAssociativeCache(geometry).simulate(records))


def test_two_way_batch_throughput(benchmark, records):
    geometry = CacheGeometry(16 * 1024, 32, ways=2)
    benchmark(lambda: SetAssociativeCache(geometry).simulate_batch(records))


def test_fvc_system_throughput(benchmark, records, encoder):
    benchmark(lambda: FvcSystem(GEOMETRY, 512, encoder).simulate(records))


def test_fvc_system_batch_throughput(benchmark, records, encoder):
    benchmark(
        lambda: FvcSystem(GEOMETRY, 512, encoder).simulate_batch(records)
    )


def test_access_profile_throughput(benchmark, store):
    trace = store.get("gcc", "test")
    benchmark(lambda: profile_accessed_values(trace))


def test_encoder_line_ops(benchmark, encoder):
    line = [0, 1, 42, 0, 7, 0xFFFFFFFF, 3, 0]

    def work():
        codes = encoder.encode_line(line)
        encoder.count_frequent(codes)
        fetched = [0] * 8
        encoder.merge_line(fetched, codes)

    benchmark(work)


def test_space_saving_throughput(benchmark, records):
    values = [record[2] for record in records[:50_000]]

    def work():
        summary = SpaceSaving(64)
        add = summary.add
        for value in values:
            add(value)

    benchmark(work)


# ----------------------------------------------------------------------
# Standalone mode: the committed backend-speedup trajectory
# ----------------------------------------------------------------------

#: The numpy backend must beat the oracle by at least this factor on
#: the fig13 DMC-vs-FVC sweep (acceptance gate for BENCH_core.json).
SPEEDUP_GATE = 5.0

#: Timed repetitions per backend (medians are compared; one untimed
#: warmup run per backend settles traces, imports and kernel memos so
#: both backends are measured steady-state under equal conditions).
REPEATS = 3


def _measure_backend(backend_name: str, store):
    import os
    import time

    from repro.api import run_experiment
    from repro.experiments.render import dumps_canonical

    os.environ["REPRO_BACKEND"] = backend_name
    payload = run_experiment("fig13", fast=True, store=store)  # warmup
    timings = []
    for _ in range(REPEATS):
        started = time.perf_counter()
        run_experiment("fig13", fast=True, store=store)
        timings.append(time.perf_counter() - started)
    return timings, dumps_canonical(payload)


def main(argv=None) -> int:
    import argparse
    import json
    import os
    import statistics
    import sys

    parser = argparse.ArgumentParser(
        description="fig13 sweep speedup: numpy backend vs pure Python"
    )
    parser.add_argument(
        "-o", "--output", default="BENCH_core.json",
        help="result file (default: %(default)s)",
    )
    args = parser.parse_args(argv)

    from repro.kernels.backend import numpy_available
    from repro.workloads.store import TraceStore

    if not numpy_available():
        print(
            "numpy is not importable; install the fast extra "
            "(pip install .[fast]) to measure the vectorized backend",
            file=sys.stderr,
        )
        return 1

    saved = os.environ.get("REPRO_BACKEND")
    store = TraceStore(max_traces=8)
    try:
        python_times, python_payload = _measure_backend("python", store)
        numpy_times, numpy_payload = _measure_backend("numpy", store)
    finally:
        if saved is None:
            os.environ.pop("REPRO_BACKEND", None)
        else:
            os.environ["REPRO_BACKEND"] = saved

    python_median = statistics.median(python_times)
    numpy_median = statistics.median(numpy_times)
    speedup = python_median / numpy_median
    identical = python_payload == numpy_payload
    passed = speedup >= SPEEDUP_GATE and identical

    report = {
        "schema": "repro.bench-core/1",
        "experiment": "fig13",
        "repeats": REPEATS,
        "python_seconds": python_times,
        "numpy_seconds": numpy_times,
        "python_median_seconds": python_median,
        "numpy_median_seconds": numpy_median,
        "speedup": speedup,
        "speedup_gate": SPEEDUP_GATE,
        "payloads_identical": identical,
        "passed": passed,
    }
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")

    print(
        f"fig13 sweep: python {python_median:.3f}s, numpy "
        f"{numpy_median:.3f}s -> {speedup:.1f}x "
        f"(gate >= {SPEEDUP_GATE}x), payloads "
        f"{'identical' if identical else 'DIVERGED'}"
    )
    if not passed:
        print("FAIL: backend speedup gate not met", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
