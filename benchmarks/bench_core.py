"""Microbenchmarks of the core simulation loops.

Unlike the per-figure benchmarks (one full experiment per run), these
use pytest-benchmark's statistical mode to track the throughput of the
hot paths: the baseline cache, the DMC+FVC system, the encoder, and the
profiling counters.
"""

from __future__ import annotations

import pytest

from repro.cache.direct import DirectMappedCache
from repro.cache.geometry import CacheGeometry
from repro.cache.setassoc import SetAssociativeCache
from repro.experiments.common import encoder_for
from repro.fvc.system import FvcSystem
from repro.profiling.access import profile_accessed_values
from repro.profiling.topk import SpaceSaving

GEOMETRY = CacheGeometry(16 * 1024, 32)


@pytest.fixture(scope="module")
def records(store):
    return store.get("gcc", "test").records


@pytest.fixture(scope="module")
def encoder(store):
    return encoder_for(store.get("gcc", "test"), 7)


def test_direct_mapped_throughput(benchmark, records):
    benchmark(lambda: DirectMappedCache(GEOMETRY).simulate(records))


def test_direct_mapped_batch_throughput(benchmark, records):
    benchmark(lambda: DirectMappedCache(GEOMETRY).simulate_batch(records))


def test_two_way_throughput(benchmark, records):
    geometry = CacheGeometry(16 * 1024, 32, ways=2)
    benchmark(lambda: SetAssociativeCache(geometry).simulate(records))


def test_two_way_batch_throughput(benchmark, records):
    geometry = CacheGeometry(16 * 1024, 32, ways=2)
    benchmark(lambda: SetAssociativeCache(geometry).simulate_batch(records))


def test_fvc_system_throughput(benchmark, records, encoder):
    benchmark(lambda: FvcSystem(GEOMETRY, 512, encoder).simulate(records))


def test_fvc_system_batch_throughput(benchmark, records, encoder):
    benchmark(
        lambda: FvcSystem(GEOMETRY, 512, encoder).simulate_batch(records)
    )


def test_access_profile_throughput(benchmark, store):
    trace = store.get("gcc", "test")
    benchmark(lambda: profile_accessed_values(trace))


def test_encoder_line_ops(benchmark, encoder):
    line = [0, 1, 42, 0, 7, 0xFFFFFFFF, 3, 0]

    def work():
        codes = encoder.encode_line(line)
        encoder.count_frequent(codes)
        fetched = [0] * 8
        encoder.merge_line(fetched, codes)

    benchmark(work)


def test_space_saving_throughput(benchmark, records):
    values = [record[2] for record in records[:50_000]]

    def work():
        summary = SpaceSaving(64)
        add = summary.add
        for value in values:
            add(value)

    benchmark(work)
