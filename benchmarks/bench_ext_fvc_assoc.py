"""Extension benchmark: direct-mapped vs set-associative FVC arrays.
"""

from benchmarks.conftest import run_experiment


def test_ext_fvc_assoc(benchmark, store):
    result = run_experiment(benchmark, store, "ext-fvc-assoc")
    for row in result.rows:
        assert row["red_2way_%"] > row["red_direct_%"] - 10
