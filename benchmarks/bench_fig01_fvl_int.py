"""Regenerates Figure 1 of the paper at full scale.

Frequent value locality of the SPECint95 analogs: % of live
locations occupied / % of accesses covered by the top 1/3/7/10 values.
"""

from benchmarks.conftest import run_experiment


def test_fig01_fvl_int(benchmark, store):
    result = run_experiment(benchmark, store, "fig1")
    fvl = [r for r in result.rows if r["benchmark"] not in ("compress", "ijpeg")]
    controls = [r for r in result.rows if r["benchmark"] in ("compress", "ijpeg")]
    # Paper shape: the six FVL benchmarks dominate the two controls.
    assert min(r["acc_top10_%"] for r in fvl) > max(
        r["acc_top10_%"] for r in controls
    )
