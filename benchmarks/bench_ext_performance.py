"""Extension benchmark: estimated memory access time (the paper's
execution-time claim under the calibrated CACTI + memory model).
"""

from benchmarks.conftest import run_experiment


def test_ext_performance(benchmark, store):
    result = run_experiment(benchmark, store, "ext-performance")
    speedups = [r["fvc_speedup_%"] for r in result.rows]
    assert sum(speedups) / len(speedups) > 0
    # The FVC never slows the access path (cycle time is DMC-bound).
    for row in result.rows:
        assert row["fvc_amat_ns"] <= row["base_amat_ns"] + 0.01
