"""Extension benchmark: write-through vs write-back traffic (the paper's §1 premise).
"""

from benchmarks.conftest import run_experiment


def test_ext_writethrough(benchmark, store):
    result = run_experiment(benchmark, store, "ext-writethrough")
    # Write-through costs more traffic on average, dramatically so for
    # programs with store locality (m88ksim); workloads whose stores
    # scatter across lines can tilt the other way (see EXPERIMENTS.md).
    factors = [r["traffic_factor_x"] for r in result.rows]
    assert sum(factors) / len(factors) > 1.0
    assert max(factors) > 1.4
