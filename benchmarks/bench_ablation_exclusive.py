"""Regenerates Section 3 ablation of the paper at full scale.

Exclusive (paper) vs inclusive FVC contents.
"""

from benchmarks.conftest import run_experiment


def test_ablation_exclusive(benchmark, store):
    result = run_experiment(benchmark, store, "ablation-exclusive")
    assert result.rows
