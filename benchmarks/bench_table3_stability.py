"""Regenerates Table 3 of the paper at full scale.

Execution fraction after which the top-k value sets stabilise.
"""

from benchmarks.conftest import run_experiment


def test_table3_stability(benchmark, store):
    result = run_experiment(benchmark, store, "table3")
    for row in result.rows:
        assert row["in_top10_top1_%"] <= 60.0
