"""Regenerates Figure 5 of the paper at full scale.

Spatial density of frequent values across memory blocks (gcc).
"""

from benchmarks.conftest import run_experiment


def test_fig05_spatial(benchmark, store):
    result = run_experiment(benchmark, store, "fig5")
    assert result.rows
