"""Regenerates Figure 14 of the paper at full scale.

FVC benefit under 1/2/4-way base caches (conflict benchmarks
collapse; capacity benchmarks persist).
"""

from benchmarks.conftest import run_experiment


def test_fig14_associativity(benchmark, store):
    result = run_experiment(benchmark, store, "fig14")
    rows = {r["benchmark"]: r for r in result.rows}
    for name in ("m88ksim", "li", "perl"):
        assert rows[name]["2w_red_%"] < rows[name]["1w_red_%"] * 0.6
    for name in ("go", "gcc", "vortex"):
        assert rows[name]["4w_red_%"] > 5
