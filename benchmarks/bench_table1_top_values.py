"""Regenerates Table 1 of the paper at full scale.

Top-10 occurring and accessed values per benchmark (hex).
"""

from benchmarks.conftest import run_experiment


def test_table1_top_values(benchmark, store):
    result = run_experiment(benchmark, store, "table1")
    assert len(result.rows) == 10
