"""Regenerates Section 3 ablation of the paper at full scale.

The paper's write-allocate-frequent exception, quantified.
"""

from benchmarks.conftest import run_experiment


def test_ablation_waf(benchmark, store):
    result = run_experiment(benchmark, store, "ablation-waf")
    assert result.rows
