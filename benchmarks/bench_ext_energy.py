"""Extension benchmark: energy of 16KB DMC vs 16KB+FVC vs 32KB DMC (the power argument).
"""

from benchmarks.conftest import run_experiment


def test_ext_energy(benchmark, store):
    result = run_experiment(benchmark, store, "ext-energy")
    savings = [r["fvc_saving_%"] for r in result.rows]
    assert sum(savings) / len(savings) > 0
