"""Regenerates Table 2 of the paper at full scale.

Overlap of top-7/10 accessed values across test/train/ref inputs.
"""

from benchmarks.conftest import run_experiment


def test_table2_input_sensitivity(benchmark, store):
    result = run_experiment(benchmark, store, "table2")
    assert len(result.rows) == 6
