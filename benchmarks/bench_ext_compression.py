"""Extension benchmark: the frequent-value compression cache of the
paper's reference [11] — two compressed lines per physical slot.
"""

from benchmarks.conftest import run_experiment


def test_ext_compression(benchmark, store):
    result = run_experiment(benchmark, store, "ext-compression")
    # Compression adds effective capacity wherever lines compress.
    for row in result.rows:
        if row["compressible_%"] > 60:
            assert row["compression_red_%"] > 0
