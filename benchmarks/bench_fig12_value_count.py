"""Regenerates Figure 12 of the paper at full scale.

Reductions with top-1 vs top-3 vs top-7 values over the twelve
admissible DMC configurations.
"""

from benchmarks.conftest import run_experiment


def test_fig12_value_count(benchmark, store):
    result = run_experiment(benchmark, store, "fig12")
    gains_3 = [r["red_top3_%"] - r["red_top1_%"] for r in result.rows]
    gains_7 = [r["red_top7_%"] - r["red_top3_%"] for r in result.rows]
    # Paper: exploiting more values helps at every step, and the
    # reductions span a wide range (~1-68%).  (Deviation note: on the
    # analogs the 3->7 step helps at least as much as 1->3, because
    # their value mass sits deeper in the ranking — see EXPERIMENTS.md.)
    assert sum(gains_3) / len(gains_3) > 0
    assert sum(gains_7) / len(gains_7) > 0
    assert max(r["red_top7_%"] for r in result.rows) > 50
    assert min(r["red_top7_%"] for r in result.rows) < 25
