#!/usr/bin/env python3
"""Observability overhead gate: obs fully on must cost < 5%.

Times the same batch of simulation cells twice — once with metrics and
tracing disabled (the default) and once with both armed — and writes
``BENCH_obs.json``.  Exits non-zero when the median instrumented run is
more than :data:`MAX_OVERHEAD_PERCENT` slower than the median baseline,
which is the CI perf-smoke job's contract that observability stays
observational in cost as well as in content.

Stdlib only; run as ``make bench-obs`` or directly::

    PYTHONPATH=src python benchmarks/obs_overhead.py [-o BENCH_obs.json]
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import sys
import tempfile
import time

#: The gate: enabling observability may cost at most this much.
MAX_OVERHEAD_PERCENT = 5.0

#: Timed repetitions per mode (medians are compared).
REPEATS = 5

_CELL_SPECS = (
    ("gcc", "baseline", 8 * 1024),
    ("gcc", "fvc", 8 * 1024),
    ("m88ksim", "baseline", 8 * 1024),
    ("m88ksim", "fvc", 8 * 1024),
    ("li", "baseline", 4 * 1024),
    ("li", "fvc", 4 * 1024),
)


def _cells():
    from repro.engine.cells import SimCell

    return [
        SimCell(
            workload=workload,
            input_name="test",
            kind=kind,
            size_bytes=size_bytes,
            fvc_entries=256,
            top_values=7,
        )
        for workload, kind, size_bytes in _CELL_SPECS
    ]


def _run_batch(cells, store) -> float:
    from repro.engine.cells import run_cell

    started = time.perf_counter()
    for cell in cells:
        run_cell(cell, store)
    return time.perf_counter() - started


def _measure(cells, store) -> list:
    # One untimed warmup settles trace materialisation and imports.
    _run_batch(cells, store)
    return [_run_batch(cells, store) for _ in range(REPEATS)]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "-o", "--output", default="BENCH_obs.json",
        help="result file (default: %(default)s)",
    )
    args = parser.parse_args(argv)

    from repro.obs import tracing
    from repro.workloads.store import TraceStore

    cells = _cells()
    store = TraceStore(max_traces=8)
    # Materialise every trace up front so neither mode pays synthesis.
    for cell in cells:
        store.get(cell.workload, cell.input_name)

    for name in ("REPRO_OBS", tracing.ENV_VAR):
        os.environ.pop(name, None)
    tracing.reset()
    baseline = _measure(cells, store)

    with tempfile.TemporaryDirectory(prefix="obs-bench-") as scratch:
        os.environ["REPRO_OBS"] = "1"
        os.environ[tracing.ENV_VAR] = os.path.join(scratch, "spans.jsonl")
        tracing.reset()
        try:
            instrumented = _measure(cells, store)
        finally:
            os.environ.pop("REPRO_OBS", None)
            os.environ.pop(tracing.ENV_VAR, None)
            tracing.reset()

    baseline_median = statistics.median(baseline)
    instrumented_median = statistics.median(instrumented)
    overhead_percent = 100.0 * (
        (instrumented_median - baseline_median) / baseline_median
    )
    passed = overhead_percent < MAX_OVERHEAD_PERCENT

    report = {
        "schema": "repro.bench-obs/1",
        "cells": len(cells),
        "repeats": REPEATS,
        "baseline_seconds": baseline,
        "instrumented_seconds": instrumented,
        "baseline_median_seconds": baseline_median,
        "instrumented_median_seconds": instrumented_median,
        "overhead_percent": overhead_percent,
        "max_overhead_percent": MAX_OVERHEAD_PERCENT,
        "passed": passed,
    }
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")

    print(
        f"obs overhead: baseline {baseline_median:.3f}s, "
        f"instrumented {instrumented_median:.3f}s -> "
        f"{overhead_percent:+.2f}% (gate < {MAX_OVERHEAD_PERCENT}%)"
    )
    if not passed:
        print("FAIL: observability overhead exceeds the gate", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
