"""Regenerates Figure 9 of the paper at full scale.

CACTI-style access times of FVC vs DMC configurations.
"""

from benchmarks.conftest import run_experiment


def test_fig09_access_time(benchmark, store):
    result = run_experiment(benchmark, store, "fig9")
    assert result.notes[0].startswith("12 of 15")
