"""Regenerates Figure 15 of the paper at full scale.

Victim cache vs FVC at equal storage and at equal access time.
"""

from benchmarks.conftest import run_experiment


def test_fig15_victim(benchmark, store):
    result = run_experiment(benchmark, store, "fig15")
    # Paper: the VC wins the equal-storage pairing; at equal access
    # time the FVC is at least competitive (it wins outright in the
    # paper; on the analogs the two tie on average because their
    # conflict sets are small enough for a 4-entry VC — see
    # EXPERIMENTS.md).  Both help a small DMC substantially.
    vc4 = [r["vc4_red_%"] for r in result.rows]
    fvc512 = [r["fvc512_red_%"] for r in result.rows]
    vc16 = [r["vc16_red_%"] for r in result.rows]
    fvc128 = [r["fvc128_red_%"] for r in result.rows]
    assert sum(vc16) / 6 > sum(fvc128) / 6  # equal storage: VC wins
    assert sum(fvc512) / 6 > sum(vc4) / 6 - 5  # equal time: FVC competitive
    assert sum(fvc512) / 6 > 10 and sum(vc4) / 6 > 10
