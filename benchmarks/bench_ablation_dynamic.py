"""Regenerates Extension ablation of the paper at full scale.

Online (Space-Saving) value identification vs offline profiling.
"""

from benchmarks.conftest import run_experiment


def test_ablation_dynamic(benchmark, store):
    result = run_experiment(benchmark, store, "ablation-dynamic")
    assert result.rows
