"""Regenerates Table 4 of the paper at full scale.

Fraction of referenced addresses holding a constant value
(paper: high for the FVL six, ~3-7% for compress/ijpeg).
"""

from benchmarks.conftest import run_experiment


def test_table4_constancy(benchmark, store):
    result = run_experiment(benchmark, store, "table4")
    rows = {r["benchmark"]: r["constant_%"] for r in result.rows}
    assert rows["compress"] < 10 and rows["ijpeg"] < 10
    assert rows["m88ksim"] > 60 and rows["perl"] > 60
    assert rows["li"] == min(v for k, v in rows.items()
                             if k not in ("compress", "ijpeg"))
