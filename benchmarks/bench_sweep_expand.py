"""The declarative sweep layer's own overhead.

Expansion and aggregation are pure bookkeeping around the simulation
cells — they must stay negligible next to a single cell's replay.
Benchmarks the full-scale ``l1_size_study`` grid (120 points) through
expand + a synthetic-snapshot report build, no simulation.
"""

from __future__ import annotations

from repro.sweeps.catalog import get_sweep
from repro.sweeps.expand import expand, unique_cells
from repro.sweeps.report import build_report


def _synthetic_snapshots(points):
    snapshots = []
    for point in points:
        misses = 100 + 7 * (point.index % 13)
        accesses = 10_000
        snapshots.append(
            (
                {
                    "read_hits": accesses - misses,
                    "read_misses": misses,
                    "write_hits": 0,
                    "write_misses": 0,
                    "fills": misses,
                    "writebacks": 0,
                    "fill_words": 8 * misses,
                    "writeback_words": 0,
                },
                {},
            )
        )
    return snapshots


def test_sweep_expand(benchmark):
    spec = get_sweep("l1_size_study")

    def expand_grid():
        points = expand(spec)
        return points, unique_cells(points)

    points, distinct = benchmark(expand_grid)
    assert len(points) == 120
    assert len(distinct) == 120


def test_sweep_report(benchmark):
    spec = get_sweep("l1_size_study")
    points = expand(spec)
    snapshots = _synthetic_snapshots(points)

    headers, rows = benchmark(build_report, spec, points, snapshots)
    assert headers[0] == "arm"
    assert len(rows) == 120
