"""Structured tracing: deterministic span identity, nesting, JSONL."""

from __future__ import annotations

import json

import pytest

from repro.engine.cells import SimCell, cell_span_key, run_cell
from repro.engine.runner import run_cells
from repro.engine.trace_cache import TraceCache
from repro.obs import tracing
from repro.obs.tracing import SPAN_SCHEMA, Tracer, span_id
from repro.workloads.store import TraceStore


def _read_spans(path):
    lines = path.read_text(encoding="utf-8").splitlines()
    return [json.loads(line) for line in lines]


@pytest.fixture
def traced(tmp_path, monkeypatch):
    """Enable tracing to a temp file; yields the file path."""
    path = tmp_path / "spans.jsonl"
    monkeypatch.setenv(tracing.ENV_VAR, str(path))
    tracing.reset()
    try:
        yield path
    finally:
        tracing.reset()


class TestSpanId:
    def test_deterministic(self):
        assert span_id("engine.cell", "k", None) == span_id(
            "engine.cell", "k", None
        )

    def test_varies_with_inputs(self):
        base = span_id("engine.cell", "k", None)
        assert span_id("engine.other", "k", None) != base
        assert span_id("engine.cell", "k2", None) != base
        assert span_id("engine.cell", "k", "deadbeef00000000") != base

    def test_shape(self):
        digest = span_id("a", "b", None)
        assert len(digest) == 16
        int(digest, 16)  # hex


class TestTracer:
    def test_nesting_records_parentage(self, tmp_path):
        tracer = Tracer(str(tmp_path / "out.jsonl"))
        with tracer.span("outer", key="o") as outer:
            with tracer.span("inner", key="i") as inner:
                assert inner.parent_id == outer.span_id
                assert tracer.current() is inner
            assert tracer.current() is outer
        assert tracer.current() is None

    def test_unkeyed_spans_get_ordinals(self, tmp_path):
        tracer = Tracer(str(tmp_path / "out.jsonl"))
        with tracer.span("root") as first:
            pass
        with tracer.span("root") as second:
            pass
        assert (first.key, second.key) == ("#1", "#2")
        assert first.span_id != second.span_id

    def test_error_attribute_on_exception(self, tmp_path):
        tracer = Tracer(str(tmp_path / "out.jsonl"))
        with pytest.raises(RuntimeError):
            with tracer.span("doomed", key="d") as doomed:
                raise RuntimeError("boom")
        assert doomed.attrs["error"] == "RuntimeError"

    def test_flush_writes_canonical_jsonl(self, tmp_path):
        path = tmp_path / "out.jsonl"
        tracer = Tracer(str(path))
        with tracer.span("outer", key="o"):
            with tracer.span("inner", key="i") as inner:
                inner.add_event("mark", detail=1)
        # Root closed -> both spans flushed, inner (closed first) first.
        records = _read_spans(path)
        assert [record["name"] for record in records] == ["inner", "outer"]
        for record in records:
            assert record["schema"] == SPAN_SCHEMA
            # Canonical single-line form: sorted keys, stable bytes.
            assert json.dumps(record, sort_keys=True) == json.dumps(record)
        assert records[0]["parent_id"] == records[1]["span_id"]
        assert records[0]["events"] == [{"name": "mark", "detail": 1}]

    def test_module_span_is_noop_when_disabled(self):
        tracing.reset()
        assert tracing.active() is None
        with tracing.span("anything", key="k") as span:
            assert span is None
        tracing.event("ignored")  # must not raise


_CELLS = [
    SimCell(workload="gcc", input_name="test", kind="baseline",
            size_bytes=size)
    for size in (4 * 1024, 8 * 1024)
] + [
    SimCell(workload="m88ksim", input_name="test", kind="baseline",
            size_bytes=size)
    for size in (4 * 1024, 8 * 1024)
]


def _cell_spans(path):
    return {
        (record["span_id"], record["key"])
        for record in _read_spans(path)
        if record["name"] == "engine.cell"
    }


class TestEngineSpans:
    def test_cell_span_ids_identical_across_jobs(
        self, tmp_path, monkeypatch, store
    ):
        """The span-id set of a --jobs 4 run equals a --jobs 1 run:
        identity is content-derived, never process-derived."""
        sequential = tmp_path / "seq.jsonl"
        parallel = tmp_path / "par.jsonl"

        monkeypatch.setenv(tracing.ENV_VAR, str(sequential))
        tracing.reset()
        run_cells(_CELLS, jobs=1, store=store)

        monkeypatch.setenv(tracing.ENV_VAR, str(parallel))
        tracing.reset()
        run_cells(_CELLS, jobs=4, store=store)
        tracing.reset()

        expected = {
            (span_id("engine.cell", cell_span_key(cell), None),
             cell_span_key(cell))
            for cell in _CELLS
        }
        assert _cell_spans(sequential) == expected
        assert _cell_spans(parallel) == expected

    def test_trace_cache_spans_nest_under_cell(self, tmp_path, traced):
        """With a cold disk cache, one cell's trace resolution shows up
        as trace_cache.load (synthesised) under engine.cell, with the
        persist as trace_cache.store under the load."""
        fresh_store = TraceStore(
            max_traces=2, disk_cache=TraceCache(tmp_path / "cache")
        )
        cell = _CELLS[0]
        run_cell(cell, fresh_store)

        records = {record["name"]: record for record in _read_spans(traced)}
        cell_record = records["engine.cell"]
        load = records["trace_cache.load"]
        store_record = records["trace_cache.store"]
        assert cell_record["key"] == cell_span_key(cell)
        assert cell_record["parent_id"] is None
        assert cell_record["attrs"]["workload"] == cell.workload
        assert load["parent_id"] == cell_record["span_id"]
        assert load["key"] == f"{cell.workload}/{cell.input_name}"
        assert load["attrs"]["outcome"] == "synthesised"
        assert store_record["parent_id"] == load["span_id"]

    def test_warm_load_reports_disk_hit(self, tmp_path, traced):
        cache = TraceCache(tmp_path / "cache")
        cell = _CELLS[0]
        run_cell(cell, TraceStore(max_traces=2, disk_cache=cache))
        run_cell(cell, TraceStore(max_traces=2, disk_cache=cache))

        outcomes = [
            record["attrs"]["outcome"]
            for record in _read_spans(traced)
            if record["name"] == "trace_cache.load"
        ]
        assert outcomes == ["synthesised", "disk_hit"]
