"""The metrics registry: typed handles, snapshots, both expositions."""

from __future__ import annotations

import pytest

from repro.obs.metrics import (
    METRICS_SCHEMA,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    metrics_payload,
    prometheus_text,
)


class TestCounter:
    def test_monotonic(self):
        counter = Counter("jobs_completed_total")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        assert counter.sample() == {"type": "counter", "value": 5}

    def test_rejects_negative(self):
        counter = Counter("jobs_completed_total")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_rejects_bad_names(self):
        for bad in ("CamelCase", "kebab-case", "9starts_with_digit", ""):
            with pytest.raises(ValueError):
                Counter(bad)


class TestGauge:
    def test_set_and_add(self):
        gauge = Gauge("queue_depth")
        gauge.set(7)
        gauge.add(-3)
        assert gauge.value == 4
        assert gauge.sample() == {"type": "gauge", "value": 4}


class TestHistogram:
    def test_cumulative_buckets(self):
        histogram = Histogram("engine_cell_seconds", buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 0.5, 5.0, 50.0):
            histogram.observe(value)
        assert histogram.count == 5
        assert histogram.sum == pytest.approx(56.05)
        assert histogram.cumulative() == [
            ("0.1", 1),
            ("1", 3),
            ("10", 4),
            ("+Inf", 5),
        ]

    def test_sample_shape(self):
        histogram = Histogram("engine_cell_seconds", buckets=(1.0,))
        histogram.observe(0.5)
        sample = histogram.sample()
        assert sample["type"] == "histogram"
        assert sample["buckets"] == [
            {"le": "1", "count": 1},
            {"le": "+Inf", "count": 1},
        ]
        assert sample["count"] == 1

    def test_rejects_unordered_or_empty_buckets(self):
        with pytest.raises(ValueError):
            Histogram("engine_cell_seconds", buckets=())
        with pytest.raises(ValueError):
            Histogram("engine_cell_seconds", buckets=(1.0, 0.5))
        with pytest.raises(ValueError):
            Histogram("engine_cell_seconds", buckets=(1.0, 1.0))


class TestRegistry:
    def test_get_or_create_returns_same_handle(self):
        registry = MetricsRegistry()
        first = registry.counter("jobs_completed_total")
        second = registry.counter("jobs_completed_total")
        assert first is second
        first.inc()
        assert second.value == 1

    def test_kind_clash_raises(self):
        registry = MetricsRegistry()
        registry.counter("jobs_completed_total")
        with pytest.raises(TypeError):
            registry.gauge("jobs_completed_total")

    def test_histogram_bucket_disagreement_raises(self):
        registry = MetricsRegistry()
        registry.histogram("engine_cell_seconds", buckets=(0.1, 1.0))
        with pytest.raises(ValueError):
            registry.histogram("engine_cell_seconds", buckets=(0.5, 5.0))

    def test_samples_are_name_sorted(self):
        registry = MetricsRegistry()
        registry.counter("jobs_completed_total").inc()
        registry.gauge("queue_depth").set(2)
        samples = registry.samples()
        assert list(samples) == sorted(samples)
        assert samples["jobs_completed_total"]["value"] == 1

    def test_reset(self):
        registry = MetricsRegistry()
        registry.counter("jobs_completed_total").inc()
        registry.reset()
        assert registry.names() == []
        assert registry.counter("jobs_completed_total").value == 0


class TestExposition:
    def test_payload_schema(self):
        registry = MetricsRegistry()
        registry.counter("jobs_completed_total").inc(3)
        payload = metrics_payload(registry.samples())
        assert payload["schema"] == METRICS_SCHEMA == "metrics/v1"
        assert payload["metrics"]["jobs_completed_total"] == {
            "type": "counter",
            "value": 3,
        }

    def test_prometheus_text(self):
        registry = MetricsRegistry()
        registry.counter("jobs_completed_total").inc(2)
        registry.gauge("queue_depth").set(1)
        histogram = registry.histogram(
            "engine_cell_seconds", buckets=(0.5, 5.0)
        )
        histogram.observe(0.1)
        histogram.observe(1.0)
        text = prometheus_text(registry.samples())
        lines = text.splitlines()
        assert "# TYPE repro_jobs_completed_total counter" in lines
        assert "repro_jobs_completed_total 2" in lines
        assert "# TYPE repro_queue_depth gauge" in lines
        assert 'repro_engine_cell_seconds_bucket{le="0.5"} 1' in lines
        assert 'repro_engine_cell_seconds_bucket{le="+Inf"} 2' in lines
        assert "repro_engine_cell_seconds_count 2" in lines
        assert text.endswith("\n")

    def test_prometheus_text_is_deterministic(self):
        registry = MetricsRegistry()
        registry.gauge("queue_depth").set(4)
        registry.counter("jobs_completed_total").inc()
        assert prometheus_text(registry.samples()) == prometheus_text(
            registry.samples()
        )
