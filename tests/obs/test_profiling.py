"""Profiling hooks: collapsed stacks and per-cell accounting."""

from __future__ import annotations

import pytest

from repro.common.errors import ConfigurationError
from repro.engine.cells import SimCell
from repro.obs.profiling import (
    CellProfile,
    cell_frames,
    profile_run,
    write_collapsed,
)


class TestCellProfile:
    def test_line_weights(self):
        profile = CellProfile(
            stack=("a", "b", "c"), references=100, micros=250
        )
        assert profile.line("refs") == "a;b;c 100"
        assert profile.line("micros") == "a;b;c 250"

    def test_unknown_weight_raises(self):
        profile = CellProfile(stack=("a",), references=1, micros=1)
        with pytest.raises(ConfigurationError):
            profile.line("seconds")


class TestCellFrames:
    def test_frames_have_no_separators(self):
        cell = SimCell(
            workload="gcc", input_name="test", kind="fvc", fvc_entries=512
        )
        frames = cell_frames("fig13", cell)
        assert len(frames) == 3
        for frame in frames:
            assert ";" not in frame
            assert " " not in frame
        assert frames[0] == "repro-fvc:fig13"
        assert frames[1] == "gcc/test"
        assert "fvc" in frames[2]


class TestProfileRun:
    def test_fig13_fast_profiles_every_cell(self, store):
        profile = profile_run("fig13", fast=True, store=store)
        assert profile.experiment_id == "fig13"
        assert len(profile.cells) > 0
        assert profile.total_references > 0
        assert profile.elapsed_seconds > 0
        assert profile.throughput() > 0
        for cell in profile.cells:
            assert len(cell.stack) == 3
            assert cell.references > 0
            assert cell.micros >= 0

    def test_refs_collapsed_is_deterministic(self, store):
        first = profile_run("fig13", fast=True, store=store)
        second = profile_run("fig13", fast=True, store=store)
        assert first.collapsed("refs") == second.collapsed("refs")

    def test_non_decomposable_experiment_raises(self, store):
        from repro.experiments.registry import experiment_ids, get_experiment

        flat = [
            experiment_id
            for experiment_id in experiment_ids()
            if get_experiment(experiment_id).plan_cells(True) is None
        ]
        if not flat:
            pytest.skip("every experiment decomposes into cells")
        with pytest.raises(ConfigurationError) as excinfo:
            profile_run(flat[0], fast=True, store=store)
        assert "decomposable" in str(excinfo.value)

    def test_write_collapsed(self, tmp_path, store):
        profile = profile_run("fig13", fast=True, store=store)
        path = tmp_path / "out.folded"
        assert write_collapsed(profile, str(path)) == str(path)
        document = path.read_text(encoding="utf-8")
        assert document.endswith("\n")
        lines = document.splitlines()
        assert len(lines) == len(profile.cells)
        for line in lines:
            frames, weight = line.rsplit(" ", 1)
            assert frames.count(";") == 2
            assert int(weight) > 0
