"""Observability is observational: enabling it changes no result bytes.

The ISSUE-level guarantee — obs disabled (the default) produces outputs
byte-identical to obs enabled — regression-tested at the payload layer,
where every consumer (CLI ``--json``, the result store, the HTTP API)
reads from.
"""

from __future__ import annotations

from repro import obs
from repro.experiments.registry import run_experiment
from repro.experiments.render import dumps_canonical, experiment_payload
from repro.obs import tracing


def _fig13_payload_bytes(store) -> str:
    result = run_experiment("fig13", store=store, fast=True)
    return dumps_canonical(experiment_payload(result))


def test_fig13_bytes_identical_with_obs_enabled(
    tmp_path, monkeypatch, store
):
    baseline = _fig13_payload_bytes(store)

    monkeypatch.setenv(obs.ENV_VAR, "1")
    monkeypatch.setenv(tracing.ENV_VAR, str(tmp_path / "spans.jsonl"))
    tracing.reset()
    try:
        instrumented = _fig13_payload_bytes(store)
    finally:
        tracing.reset()

    assert instrumented == baseline
    # And the instrumented run did actually record something.
    assert (tmp_path / "spans.jsonl").exists()
    assert obs.registry().counter("engine_cells_total").value > 0
