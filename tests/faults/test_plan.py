"""Fault-plan grammar and deterministic clause matching."""

import pytest

from repro.faults.plan import FaultPlan, FaultSpecError, Injection


class TestParsing:
    def test_single_clause_defaults_to_first_call(self):
        plan = FaultPlan.parse("trace_cache.read:io_error")
        [clause] = plan.clauses
        assert clause.site == "trace_cache.read"
        assert clause.action == "io_error"
        assert clause.arg is None
        assert clause.when.kind == "ordinals"
        assert (clause.when.first, clause.when.last) == (1, 1)

    def test_arg_and_ordinal(self):
        plan = FaultPlan.parse("server.request:delay(0.25)@3")
        [clause] = plan.clauses
        assert clause.arg == 0.25
        assert clause.when.first == clause.when.last == 3

    def test_range_every_prob_and_seed(self):
        plan = FaultPlan.parse(
            "worker.child:slow(0.05)@2-4;"
            "server.request:delay@every=3;"
            "client.request:io_error@p=0.5;"
            "seed=7"
        )
        assert plan.seed == 7
        assert [c.when.kind for c in plan.clauses] == [
            "ordinals", "every", "prob",
        ]

    def test_whitespace_and_empty_clauses_tolerated(self):
        plan = FaultPlan.parse(" trace_cache.read:io_error@1 ; ;")
        assert len(plan.clauses) == 1

    @pytest.mark.parametrize(
        "spec",
        [
            "nonsense",
            "trace_cache.read:",
            "no.such.site:io_error",
            "trace_cache.read:no_such_action",
            "engine.cell:bitflip",  # data action at a data-free site
            "trace_cache.read:io_error@0",  # ordinals are 1-based
            "trace_cache.read:io_error@5-2",
            "trace_cache.read:io_error@every=0",
            "trace_cache.read:io_error@p=1.5",
            "seed=banana",
        ],
    )
    def test_rejects(self, spec):
        with pytest.raises(FaultSpecError):
            FaultPlan.parse(spec)

    def test_from_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        assert FaultPlan.from_env() is None
        monkeypatch.setenv("REPRO_FAULTS", "   ")
        assert FaultPlan.from_env() is None
        monkeypatch.setenv("REPRO_FAULTS", "engine.cell:raise@2")
        plan = FaultPlan.from_env()
        assert plan is not None
        assert plan.clauses[0].site == "engine.cell"


class TestMatching:
    def test_ordinal_fires_exactly_once(self):
        plan = FaultPlan.parse("engine.cell:raise@2")
        decisions = [plan.decide("engine.cell") for _ in range(4)]
        fired = [d for d in decisions if d is not None]
        assert len(fired) == 1
        _, ordinal = fired[0]
        assert ordinal == 2
        assert plan.counters() == {"engine.cell": 4}
        assert plan.injections == [Injection("engine.cell", 2, "raise")]

    def test_range_and_every(self):
        plan = FaultPlan.parse(
            "engine.cell:raise@2-3;server.request:raise@every=2"
        )
        hits = [i for i in range(1, 6) if plan.decide("engine.cell")]
        assert hits == [2, 3]
        hits = [i for i in range(1, 7) if plan.decide("server.request")]
        assert hits == [2, 4, 6]

    def test_sites_count_independently(self):
        plan = FaultPlan.parse("engine.cell:raise@1")
        assert plan.decide("server.request") is None
        assert plan.decide("engine.cell") is not None

    def test_first_matching_clause_wins(self):
        plan = FaultPlan.parse("engine.cell:raise@1;engine.cell:io_error@1")
        clause, _ = plan.decide("engine.cell")
        assert clause.action == "raise"

    def test_probabilistic_matching_replays_exactly(self):
        spec = "engine.cell:raise@p=0.3;seed=11"

        def sequence():
            plan = FaultPlan.parse(spec)
            return [
                plan.decide("engine.cell") is not None for _ in range(64)
            ]

        first, second = sequence(), sequence()
        assert first == second
        assert any(first) and not all(first)

    def test_seed_changes_probabilistic_sequence(self):
        def sequence(seed):
            plan = FaultPlan.parse(f"engine.cell:raise@p=0.5;seed={seed}")
            return [
                plan.decide("engine.cell") is not None for _ in range(64)
            ]

        assert sequence(1) != sequence(2)


class TestDescribe:
    def test_round_trip(self):
        spec = "worker.child:crash@1;worker.child:slow(0.05)@2-3;seed=7"
        plan = FaultPlan.parse(spec)
        assert plan.describe() == spec
        assert FaultPlan.parse(plan.describe()).describe() == spec
