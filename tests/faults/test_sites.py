"""Injection sites: the catalog, the active plan, and how each fault
action lands at a :func:`repro.faults.sites.fault_point`."""

import pickle

import pytest

from repro.common.errors import FaultInjected
from repro.faults import install, reset
from repro.faults.plan import FaultPlan
from repro.faults.sites import (
    SITE_CATALOG,
    InjectedIOError,
    apply_child_fault,
    decide_child_fault,
    fault_point,
)


@pytest.fixture(autouse=True)
def _clean_plan():
    reset()
    yield
    reset()


class TestCatalog:
    def test_data_sites_carry_data(self):
        data_sites = {
            name for name, site in SITE_CATALOG.items() if site.carries_data
        }
        assert data_sites == {
            "trace_cache.read",
            "trace_cache.write",
            "result_store.read",
            "result_store.write",
            "checkpoint.read",
            "checkpoint.write",
            "journal.append",
            "journal.snapshot",
            "journal.replay",
        }

    def test_every_site_documented(self):
        for site in SITE_CATALOG.values():
            assert site.description


class TestFaultPoint:
    def test_no_plan_is_a_no_op(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        payload = b"payload"
        assert fault_point("engine.cell") is None
        assert fault_point("trace_cache.read", data=payload) == payload

    def test_io_error_is_an_oserror(self):
        install(FaultPlan.parse("engine.cell:io_error@1"))
        with pytest.raises(InjectedIOError) as excinfo:
            fault_point("engine.cell")
        assert isinstance(excinfo.value, OSError)
        assert "engine.cell" in str(excinfo.value)
        fault_point("engine.cell")  # the @1 clause is spent

    def test_raise_is_typed(self):
        install(FaultPlan.parse("engine.cell:raise@1"))
        with pytest.raises(FaultInjected):
            fault_point("engine.cell")

    def test_truncate_halves_payload(self):
        install(FaultPlan.parse("trace_cache.read:truncate@1"))
        assert fault_point("trace_cache.read", data=b"12345678") == b"1234"

    def test_bitflip_flips_exactly_one_bit_deterministically(self):
        def flip():
            reset()
            install(FaultPlan.parse("trace_cache.read:bitflip@1;seed=3"))
            return fault_point("trace_cache.read", data=b"\x00" * 32)

        first, second = flip(), flip()
        assert first == second
        assert first != b"\x00" * 32
        assert sum(bin(byte).count("1") for byte in first) == 1

    def test_delay_passes_data_through(self):
        install(FaultPlan.parse("trace_cache.read:delay(0.001)@1"))
        assert fault_point("trace_cache.read", data=b"x") == b"x"

    def test_env_plan_resolves_lazily(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "engine.cell:raise@1")
        reset()  # as a fresh (child) process would start
        with pytest.raises(FaultInjected):
            fault_point("engine.cell")


class TestChildFaults:
    def test_decision_is_picklable(self):
        install(FaultPlan.parse("worker.child:raise@1"))
        decision = decide_child_fault()
        assert decision is not None
        clause, ordinal = pickle.loads(pickle.dumps(decision))
        assert clause.action == "raise" and ordinal == 1
        # The parent's counter advanced: the @1 clause is spent, so the
        # retry attempt runs clean.
        assert decide_child_fault() is None

    def test_no_plan_decides_nothing(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        assert decide_child_fault() is None

    def test_apply_none_is_a_noop(self):
        apply_child_fault(None)

    def test_apply_raises_in_the_child(self):
        install(FaultPlan.parse("worker.child:io_error@1"))
        with pytest.raises(InjectedIOError):
            apply_child_fault(decide_child_fault())
