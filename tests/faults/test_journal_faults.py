"""Injected faults at the journal's three sites — ``journal.append``,
``journal.snapshot``, ``journal.replay`` — must degrade along typed
paths (StorageExhausted, failed-snapshot report, torn-tail truncation),
never crash the control plane."""

import pytest

from repro.common.errors import StorageExhausted
from repro.faults import install, reset
from repro.faults.plan import FaultPlan
from repro.service.journal import LOG_NAME, SNAPSHOT_NAME, Journal


@pytest.fixture(autouse=True)
def _clean_plan():
    reset()
    yield
    reset()


def make_journal(path) -> Journal:
    return Journal(path, fsync=False)


def empty_state():
    return {
        "queue": {"jobs": [], "serial": 0, "counters": {}},
        "sched": {
            "worker_serial": 0, "lease_serial": 0,
            "epoch": 0.0, "counters": {},
        },
    }


class TestAppendFaults:
    def test_io_error_becomes_storage_exhausted(self, tmp_path):
        journal = make_journal(tmp_path)
        install(FaultPlan.parse("journal.append:io_error@1"))
        with pytest.raises(StorageExhausted):
            journal.append("job.retry")
        assert journal.exhausted
        assert journal.stats()["append_failures"] == 1
        # The injected ENOSPC was transient; the next append recovers.
        assert journal.append("job.retry") == 2
        assert not journal.exhausted

    def test_io_error_via_append_safe_never_raises(self, tmp_path):
        journal = make_journal(tmp_path)
        install(FaultPlan.parse("journal.append:io_error@1"))
        assert journal.append_safe("job.retry") is None
        assert journal.exhausted

    def test_torn_write_is_truncated_on_replay(self, tmp_path):
        journal = make_journal(tmp_path)
        journal.append("job.retry")
        install(FaultPlan.parse("journal.append:truncate@1"))
        journal.append("job.cancel", id="j")  # half the bytes hit disk
        journal.close()

        swept = make_journal(tmp_path)
        _, tail, torn = swept.replay()
        assert torn
        assert [record["k"] for record in tail] == ["job.retry"]
        report = swept.sweep()
        assert report["quarantined"] == 1
        assert (tmp_path / (LOG_NAME + ".corrupt")).exists()
        # Post-sweep the log is whole again and appends resume.
        assert swept.append("job.retry") == 2

    def test_corrupt_record_stops_replay_at_last_good(self, tmp_path):
        journal = make_journal(tmp_path)
        journal.append("job.retry")
        install(FaultPlan.parse("journal.append:bitflip@1;seed=7"))
        journal.append("job.cancel", id="j")
        journal.close()

        _, tail, torn = make_journal(tmp_path).replay()
        assert torn
        assert [record["k"] for record in tail] == ["job.retry"]


class TestSnapshotFaults:
    def test_io_error_keeps_old_snapshot_and_log(self, tmp_path):
        journal = make_journal(tmp_path)
        journal.append("job.retry")
        install(FaultPlan.parse("journal.snapshot:io_error@1"))
        assert journal.snapshot(empty_state) is False
        assert journal.stats()["snapshot_failures"] == 1
        # The log was not compacted: a full replay still works.
        _, tail, torn = make_journal(tmp_path).replay()
        assert not torn and len(tail) == 1

    def test_corrupt_snapshot_quarantined_on_replay(self, tmp_path):
        journal = make_journal(tmp_path)
        journal.append("job.retry")
        install(FaultPlan.parse("journal.snapshot:bitflip@1;seed=5"))
        assert journal.snapshot(empty_state)

        state, tail, torn = make_journal(tmp_path).replay()
        assert state is None and not torn
        quarantined = tmp_path / (SNAPSHOT_NAME + ".corrupt")
        assert quarantined.exists()

    def test_truncated_snapshot_quarantined_by_sweep(self, tmp_path):
        journal = make_journal(tmp_path)
        journal.append("job.retry")
        install(FaultPlan.parse("journal.snapshot:truncate@1"))
        assert journal.snapshot(empty_state)

        report = make_journal(tmp_path).sweep()
        assert not report["snapshot_ok"]
        assert (tmp_path / (SNAPSHOT_NAME + ".corrupt")).exists()


class TestReplayFaults:
    def test_io_error_recovers_empty(self, tmp_path):
        journal = make_journal(tmp_path)
        journal.append("job.retry")
        journal.close()
        install(FaultPlan.parse("journal.replay:io_error@1"))
        _, tail, torn = make_journal(tmp_path).replay()
        # An unreadable log degrades to a cold start, not a crash.
        assert tail == [] and not torn

    def test_bitflip_reads_as_torn_tail(self, tmp_path):
        journal = make_journal(tmp_path)
        journal.append("job.retry")
        journal.append("job.cancel", id="j")
        journal.close()
        install(FaultPlan.parse("journal.replay:bitflip@1;seed=11"))
        _, tail, torn = make_journal(tmp_path).replay()
        assert torn or len(tail) == 2  # flip may land in verified bytes
        assert len(tail) <= 2

    def test_truncate_drops_the_tail_only(self, tmp_path):
        journal = make_journal(tmp_path)
        for _ in range(4):
            journal.append("job.retry")
        journal.close()
        install(FaultPlan.parse("journal.replay:truncate@1"))
        _, tail, torn = make_journal(tmp_path).replay()
        # Half the log survives: a clean prefix, never interleaved junk.
        assert 0 < len(tail) < 4
        assert [record["seq"] for record in tail] == list(
            range(1, len(tail) + 1)
        )
