"""Tests for the spatial distribution analysis (Fig. 5)."""

import pytest

from repro.profiling.spatial import profile_spatial_distribution


def _items(values):
    return [(index * 4, value) for index, value in enumerate(values)]


class TestSpatialDistribution:
    def test_uniform_spread_is_flat(self):
        # Alternating frequent/infrequent: every 8-word line holds 4.
        values = [0, 9] * 800
        profile = profile_spatial_distribution(
            _items(values), frequent_values=[0], block_words=800, line_words=8
        )
        assert len(profile.per_block) == 2
        assert profile.per_block == (4.0, 4.0)
        assert profile.uniformity == 0.0

    def test_skewed_spread_detected(self):
        values = [0] * 800 + [9] * 800
        profile = profile_spatial_distribution(
            _items(values), frequent_values=[0], block_words=800, line_words=8
        )
        assert profile.per_block == (8.0, 0.0)
        assert profile.uniformity > 0.9

    def test_blocks_follow_referenced_order_not_raw_addresses(self):
        # Two distant regions with a hole between them still chunk into
        # consecutive referenced locations, as the paper does.
        items = [(addr, 0) for addr in range(0, 3200, 4)]
        items += [(addr, 9) for addr in range(100000, 103200, 4)]
        profile = profile_spatial_distribution(
            items, frequent_values=[0], block_words=800, line_words=8
        )
        assert profile.per_block == (8.0, 0.0)

    def test_partial_tail_block_dropped(self):
        values = [0] * 900  # 800 + 100 leftover
        profile = profile_spatial_distribution(
            _items(values), frequent_values=[0], block_words=800, line_words=8
        )
        assert len(profile.per_block) == 1

    def test_bad_geometry_rejected(self):
        with pytest.raises(ValueError):
            profile_spatial_distribution([], [0], block_words=10, line_words=8)

    def test_empty_snapshot(self):
        profile = profile_spatial_distribution([], [0])
        assert profile.per_block == ()
        assert profile.mean_density == 0.0
