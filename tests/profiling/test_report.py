"""Tests for the consolidated FVL report."""

from repro.profiling.report import build_report
from repro.workloads.registry import get_workload


class TestBuildReport:
    def test_full_report_for_fvl_workload(self, store):
        workload = get_workload("go")
        trace = store.get("go", "test")
        report = build_report(workload, "test", trace=trace)
        assert report.workload_name == "go"
        assert report.accesses == len(trace)
        assert report.exhibits_fvl
        assert report.occurrence is not None

    def test_control_workload_flagged(self, store):
        workload = get_workload("ijpeg")
        trace = store.get("ijpeg", "test")
        report = build_report(
            workload, "test", trace=trace, include_occurrence=False
        )
        assert not report.exhibits_fvl
        assert report.occurrence is None

    def test_format_contains_all_sections(self, store):
        workload = get_workload("go")
        report = build_report(
            workload, "test", trace=store.get("go", "test"),
            include_occurrence=False,
        )
        text = report.format()
        assert "top accessed values" in text
        assert "access coverage" in text
        assert "constant addrs" in text
        assert "verdict" in text
        assert "exhibits frequent value locality" in text

    def test_trace_reuse_avoids_regeneration(self, store):
        workload = get_workload("li")
        trace = store.get("li", "test")
        report = build_report(
            workload, "test", trace=trace, include_occurrence=False
        )
        assert report.accesses == len(trace)
