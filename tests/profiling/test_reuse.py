"""Tests for the reuse-distance profiler."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.setassoc import SetAssociativeCache
from repro.profiling.reuse import (
    ReuseProfile,
    fvc_catchable_fraction,
    reuse_distance_profile,
)


def _loads(lines, line_bytes=32):
    return [(0, line * line_bytes, 0) for line in lines]


class TestStackDistances:
    def test_immediate_reuse_is_distance_zero(self):
        profile = reuse_distance_profile(_loads([1, 1, 1]))
        assert profile.cold_accesses == 1
        assert profile.histogram == {0: 2}

    def test_classic_sequence(self):
        # a b c a : the re-access of a has seen {b, c} in between.
        profile = reuse_distance_profile(_loads([1, 2, 3, 1]))
        assert profile.histogram == {2: 1}
        assert profile.cold_accesses == 3

    def test_duplicates_between_reuses_count_once(self):
        # a b b a : distance of the second a is 1 (only b).
        profile = reuse_distance_profile(_loads([1, 2, 2, 1]))
        assert profile.histogram[1] == 1

    def test_word_accesses_fold_into_lines(self):
        records = [(0, 0x100, 0), (0, 0x104, 0), (0, 0x11C, 0)]
        profile = reuse_distance_profile(records, line_bytes=32)
        assert profile.cold_accesses == 1
        assert profile.histogram == {0: 2}

    def test_bad_line_size_rejected(self):
        with pytest.raises(ValueError):
            reuse_distance_profile([], line_bytes=24)


class TestCapacityPredictions:
    def test_cyclic_pattern_thresholds(self):
        # Cycling 8 lines: every reuse has distance 7.
        lines = list(range(8)) * 5
        profile = reuse_distance_profile(_loads(lines))
        assert profile.miss_rate_at_capacity(8) < profile.miss_rate_at_capacity(7)
        assert profile.hits_at_capacity(8) == len(lines) - 8

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=20), min_size=1,
                    max_size=300),
           st.sampled_from([1, 2, 4, 8, 16]))
    def test_matches_fully_associative_lru(self, lines, capacity):
        """Mattson's theorem: hits at capacity C equal a fully
        associative LRU cache of C lines — checked against the
        simulator."""
        records = _loads(lines)
        profile = reuse_distance_profile(records)
        cache = SetAssociativeCache.fully_associative(capacity, 32)
        cache.simulate(records)
        assert cache.stats.hits == profile.hits_at_capacity(capacity)

    def test_working_set_estimate(self):
        lines = list(range(10)) * 4
        profile = reuse_distance_profile(_loads(lines))
        assert profile.working_set_lines() == 10


class TestFvcCatchability:
    def test_band_between_dmc_and_fvc(self):
        # All reuses at distance 12: invisible to an 8-line cache,
        # fully catchable by 8 lines + 8 FVC entries.
        lines = list(range(13)) * 3
        profile = reuse_distance_profile(_loads(lines))
        assert fvc_catchable_fraction(profile, 8, 8) > 0.5
        assert fvc_catchable_fraction(profile, 16, 8) == 0.0

    def test_frequent_fraction_scales(self):
        lines = list(range(13)) * 3
        profile = reuse_distance_profile(_loads(lines))
        full = fvc_catchable_fraction(profile, 8, 8, 1.0)
        half = fvc_catchable_fraction(profile, 8, 8, 0.5)
        assert half == pytest.approx(full / 2)

    def test_bad_fraction_rejected(self):
        profile = ReuseProfile({}, 0, 0)
        with pytest.raises(ValueError):
            fvc_catchable_fraction(profile, 8, 8, 1.5)
