"""Tests for the top-k stabilisation analysis (Table 3)."""

import pytest

from repro.profiling.stability import profile_stability
from repro.trace.trace import Trace


def _trace_stable_early():
    """Value 9 dominates from the very start."""
    records = [(0, 0, 9)] * 50 + [(0, 4, 1), (0, 0, 9)] * 25
    return Trace(records)


def _trace_late_flip():
    """Value 2 overtakes value 1 only in the last quarter."""
    records = [(0, 0, 1)] * 60 + [(0, 4, 2)] * 100
    return Trace(records)


class TestStability:
    def test_early_dominance_stabilises_at_zero(self):
        result = profile_stability(_trace_stable_early(), ks=(1,), checkpoints=20)
        assert result.order_stable_at[1] == 0.0
        assert result.membership_stable_at[1] == 0.0

    def test_late_flip_detected(self):
        result = profile_stability(_trace_late_flip(), ks=(1,), checkpoints=20)
        # Value 2 passes value 1 at access 121 of 160 (~0.75).
        assert 0.5 < result.order_stable_at[1] <= 0.85

    def test_membership_never_later_than_order(self):
        result = profile_stability(_trace_late_flip(), ks=(1, 3), checkpoints=20)
        for k in (1, 3):
            assert result.membership_stable_at[k] <= result.order_stable_at[k]

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            profile_stability(Trace())

    def test_bad_checkpoints_rejected(self):
        with pytest.raises(ValueError):
            profile_stability(_trace_stable_early(), checkpoints=0)

    def test_real_workload_mostly_early(self, gcc_trace):
        result = profile_stability(gcc_trace, ks=(1, 3, 7), checkpoints=50)
        # Paper Table 3: the top value is found essentially immediately.
        assert result.membership_stable_at[1] < 0.5
