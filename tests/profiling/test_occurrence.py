"""Tests for the occurrence profiler (sampled live-memory snapshots)."""

from repro.profiling.occurrence import (
    OccurrenceCollector,
    OccurrenceProfile,
    OccurrenceSample,
    profile_occurring_values,
)
from repro.workloads.registry import get_workload


def _profile():
    samples = (
        OccurrenceSample(access_count=10, live_locations=4,
                         counts={0: 3, 5: 1}),
        OccurrenceSample(access_count=20, live_locations=8,
                         counts={0: 4, 5: 2, 9: 2}),
    )
    ranked = ((0, 7), (5, 3), (9, 2))
    return OccurrenceProfile(samples=samples, ranked=ranked)


class TestOccurrenceProfile:
    def test_top_values(self):
        assert _profile().top_values(2) == [0, 5]

    def test_coverage_averages_over_samples(self):
        profile = _profile()
        # top-1 = {0}: 3/4 and 4/8 -> mean 0.625
        assert abs(profile.coverage(1) - 0.625) < 1e-9

    def test_coverage_of_arbitrary_set(self):
        profile = _profile()
        # {5, 9}: 1/4 and 4/8 -> mean 0.375
        assert abs(profile.coverage_of([5, 9]) - 0.375) < 1e-9

    def test_mean_distinct(self):
        assert _profile().mean_distinct_values == 2.5

    def test_empty_profile(self):
        empty = OccurrenceProfile(samples=(), ranked=())
        assert empty.coverage(3) == 0.0
        assert empty.mean_distinct_values == 0.0


class TestCollector:
    def test_collects_against_workload(self):
        profile = profile_occurring_values(
            get_workload("go"), "test", sample_interval=5_000
        )
        assert len(profile.samples) >= 2
        # Board/feature arrays: zero dominates occupied locations.
        assert profile.top_values(1) == [0]
        assert profile.coverage(10) > 0.4

    def test_sample_count_property(self):
        collector = OccurrenceCollector()
        assert collector.sample_count == 0
