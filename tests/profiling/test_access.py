"""Tests for the accessed-value profiler."""

from repro.profiling.access import profile_accessed_values
from repro.trace.trace import Trace


def _trace():
    return Trace(
        [(0, 0, 7)] * 5 + [(1, 4, 1)] * 3 + [(0, 8, 2)] * 2
    )


class TestAccessProfile:
    def test_ranking(self):
        profile = profile_accessed_values(_trace())
        assert profile.top_values(3) == [7, 1, 2]
        assert profile.ranked[0] == (7, 5)

    def test_coverage(self):
        profile = profile_accessed_values(_trace())
        assert profile.coverage(1) == 0.5
        assert profile.coverage(10) == 1.0
        assert profile.coverage_profile((1, 2)) == [0.5, 0.8]

    def test_totals(self):
        profile = profile_accessed_values(_trace())
        assert profile.total_accesses == 10
        assert profile.distinct_values == 3

    def test_depth_truncation(self):
        trace = Trace([(0, i * 4, i) for i in range(100)])
        profile = profile_accessed_values(trace, depth=5)
        assert len(profile.ranked) == 5

    def test_empty_trace(self):
        profile = profile_accessed_values(Trace())
        assert profile.coverage(3) == 0.0
        assert profile.top_values(3) == []
