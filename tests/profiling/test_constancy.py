"""Tests for the constant-address analysis (Table 4)."""

from hypothesis import given
from hypothesis import strategies as st

from repro.profiling.constancy import profile_constancy
from repro.trace.trace import Trace


class TestConstancy:
    def test_all_constant(self):
        trace = Trace([(0, 0, 5), (1, 4, 9), (0, 0, 5), (0, 4, 9)])
        result = profile_constancy(trace)
        assert result.referenced_addresses == 2
        assert result.constant_addresses == 2
        assert result.constant_fraction == 1.0

    def test_mutation_detected(self):
        trace = Trace([(1, 0, 5), (1, 0, 6), (0, 4, 1)])
        result = profile_constancy(trace)
        assert result.constant_addresses == 1
        assert result.constant_fraction == 0.5

    def test_same_value_store_stays_constant(self):
        trace = Trace([(1, 0, 5), (1, 0, 5)])
        assert profile_constancy(trace).constant_fraction == 1.0

    def test_empty_trace(self):
        result = profile_constancy(Trace())
        assert result.referenced_addresses == 0
        assert result.constant_fraction == 0.0

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=7),
                st.integers(min_value=0, max_value=3),
            ),
            min_size=1,
            max_size=100,
        )
    )
    def test_matches_naive_reference(self, ops):
        trace = Trace([(1, slot * 4, value) for slot, value in ops])
        seen = {}
        mutated = set()
        for slot, value in ops:
            if slot in seen and seen[slot] != value:
                mutated.add(slot)
            seen.setdefault(slot, value)
        result = profile_constancy(trace)
        assert result.referenced_addresses == len(seen)
        assert result.constant_addresses == len(seen) - len(mutated)
