"""Tests for exact and streaming top-k counters, including the
published guarantees of Misra-Gries and Space-Saving."""

from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.profiling.topk import ExactTopK, MisraGries, SpaceSaving

_streams = st.lists(st.integers(min_value=0, max_value=30), max_size=500)


class TestExactTopK:
    def test_counts_and_ranking(self):
        counter = ExactTopK()
        counter.add_many([5, 5, 5, 1, 1, 9])
        assert counter.top(2) == [(5, 3), (1, 2)]
        assert counter.top_values(1) == [5]
        assert counter.count(9) == 1
        assert counter.distinct == 3
        assert counter.total == 6

    def test_coverage(self):
        counter = ExactTopK()
        counter.add_many([5, 5, 1, 9])
        assert counter.coverage(1) == 0.5
        assert counter.coverage(3) == 1.0

    def test_deterministic_tie_break(self):
        counter = ExactTopK()
        counter.add_many([3, 2, 1])
        assert counter.top_values(3) == [1, 2, 3]  # ties by value

    def test_empty(self):
        counter = ExactTopK()
        assert counter.top(5) == []
        assert counter.coverage(5) == 0.0


class TestMisraGries:
    @settings(max_examples=60, deadline=None)
    @given(stream=_streams, k=st.integers(min_value=1, max_value=8))
    def test_heavy_hitters_retained(self, stream, k):
        """Published guarantee: every value with true count > n/(k+1)
        survives in the summary."""
        summary = MisraGries(k)
        for value in stream:
            summary.add(value)
        true = Counter(stream)
        threshold = len(stream) / (k + 1)
        surviving = {value for value, _ in summary.candidates()}
        for value, count in true.items():
            if count > threshold:
                assert value in surviving

    @settings(max_examples=60, deadline=None)
    @given(stream=_streams, k=st.integers(min_value=1, max_value=8))
    def test_counts_are_lower_bounds(self, stream, k):
        summary = MisraGries(k)
        for value in stream:
            summary.add(value)
        true = Counter(stream)
        for value, estimate in summary.candidates():
            assert estimate <= true[value]

    def test_state_bounded(self):
        summary = MisraGries(4)
        for value in range(1000):
            summary.add(value)
        assert len(summary.candidates()) <= 4


class TestSpaceSaving:
    @settings(max_examples=60, deadline=None)
    @given(stream=_streams, k=st.integers(min_value=1, max_value=8))
    def test_heavy_hitters_monitored(self, stream, k):
        """Published guarantee: every value with true count > n/k is
        among the k monitored values."""
        summary = SpaceSaving(k)
        for value in stream:
            summary.add(value)
        true = Counter(stream)
        monitored = {value for value, _, _ in summary.estimates()}
        for value, count in true.items():
            if count > len(stream) / k:
                assert value in monitored

    @settings(max_examples=60, deadline=None)
    @given(stream=_streams, k=st.integers(min_value=1, max_value=8))
    def test_estimates_overcount_within_error(self, stream, k):
        summary = SpaceSaving(k)
        for value in stream:
            summary.add(value)
        true = Counter(stream)
        for value, estimate, error in summary.estimates():
            assert true[value] <= estimate  # never undercounts
            assert estimate - error <= true[value]  # error bound holds

    def test_guaranteed_top_is_prefix_of_true_heavy_hitters(self):
        summary = SpaceSaving(4)
        stream = [1] * 50 + [2] * 30 + list(range(100, 120))
        for value in stream:
            summary.add(value)
        guaranteed = summary.guaranteed_top()
        assert guaranteed[:1] == [1]

    def test_state_bounded(self):
        summary = SpaceSaving(4)
        for value in range(1000):
            summary.add(value)
        assert len(summary.estimates()) == 4
