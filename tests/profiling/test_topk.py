"""Tests for exact and streaming top-k counters, including the
published guarantees of Misra-Gries and Space-Saving."""

from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.profiling.topk import ExactTopK, MisraGries, SpaceSaving

_streams = st.lists(st.integers(min_value=0, max_value=30), max_size=500)


class TestExactTopK:
    def test_counts_and_ranking(self):
        counter = ExactTopK()
        counter.add_many([5, 5, 5, 1, 1, 9])
        assert counter.top(2) == [(5, 3), (1, 2)]
        assert counter.top_values(1) == [5]
        assert counter.count(9) == 1
        assert counter.distinct == 3
        assert counter.total == 6

    def test_coverage(self):
        counter = ExactTopK()
        counter.add_many([5, 5, 1, 9])
        assert counter.coverage(1) == 0.5
        assert counter.coverage(3) == 1.0

    def test_deterministic_tie_break(self):
        counter = ExactTopK()
        counter.add_many([3, 2, 1])
        assert counter.top_values(3) == [1, 2, 3]  # ties by value

    def test_empty(self):
        counter = ExactTopK()
        assert counter.top(5) == []
        assert counter.coverage(5) == 0.0


class TestMisraGries:
    @settings(max_examples=60, deadline=None)
    @given(stream=_streams, k=st.integers(min_value=1, max_value=8))
    def test_heavy_hitters_retained(self, stream, k):
        """Published guarantee: every value with true count > n/(k+1)
        survives in the summary."""
        summary = MisraGries(k)
        for value in stream:
            summary.add(value)
        true = Counter(stream)
        threshold = len(stream) / (k + 1)
        surviving = {value for value, _ in summary.candidates()}
        for value, count in true.items():
            if count > threshold:
                assert value in surviving

    @settings(max_examples=60, deadline=None)
    @given(stream=_streams, k=st.integers(min_value=1, max_value=8))
    def test_counts_are_lower_bounds(self, stream, k):
        summary = MisraGries(k)
        for value in stream:
            summary.add(value)
        true = Counter(stream)
        for value, estimate in summary.candidates():
            assert estimate <= true[value]

    def test_state_bounded(self):
        summary = MisraGries(4)
        for value in range(1000):
            summary.add(value)
        assert len(summary.candidates()) <= 4


class TestSpaceSaving:
    @settings(max_examples=60, deadline=None)
    @given(stream=_streams, k=st.integers(min_value=1, max_value=8))
    def test_heavy_hitters_monitored(self, stream, k):
        """Published guarantee: every value with true count > n/k is
        among the k monitored values."""
        summary = SpaceSaving(k)
        for value in stream:
            summary.add(value)
        true = Counter(stream)
        monitored = {value for value, _, _ in summary.estimates()}
        for value, count in true.items():
            if count > len(stream) / k:
                assert value in monitored

    @settings(max_examples=60, deadline=None)
    @given(stream=_streams, k=st.integers(min_value=1, max_value=8))
    def test_estimates_overcount_within_error(self, stream, k):
        summary = SpaceSaving(k)
        for value in stream:
            summary.add(value)
        true = Counter(stream)
        for value, estimate, error in summary.estimates():
            assert true[value] <= estimate  # never undercounts
            assert estimate - error <= true[value]  # error bound holds

    def test_guaranteed_top_is_prefix_of_true_heavy_hitters(self):
        summary = SpaceSaving(4)
        stream = [1] * 50 + [2] * 30 + list(range(100, 120))
        for value in stream:
            summary.add(value)
        guaranteed = summary.guaranteed_top()
        assert guaranteed[:1] == [1]

    def test_state_bounded(self):
        summary = SpaceSaving(4)
        for value in range(1000):
            summary.add(value)
        assert len(summary.estimates()) == 4


class TestExactTopKBatching:
    def test_add_many_accepts_generators(self):
        """Regression: add_many used to recompute the total with
        sum(counts.values()) — O(distinct) per batch — and relied on
        the values being re-iterable.  It must count the batch once."""
        counter = ExactTopK()
        counter.add_many(value % 3 for value in range(10))
        assert counter.total == 10
        assert counter.distinct == 3

    def test_repeated_batches_accumulate_total(self):
        counter = ExactTopK()
        for _ in range(5):
            counter.add_many([1, 2, 2])
        assert counter.total == 15
        assert counter.count(2) == 10

    def test_batches_match_single_adds(self):
        batched, single = ExactTopK(), ExactTopK()
        stream = [7, 7, 1, 9, 7, 1]
        batched.add_many(stream)
        for value in stream:
            single.add(value)
        assert batched.total == single.total
        assert batched.top(3) == single.top(3)

    def test_empty_batch(self):
        counter = ExactTopK()
        counter.add_many([])
        assert counter.total == 0


class TestSpaceSavingEstimate:
    def test_estimate_of_monitored_value(self):
        summary = SpaceSaving(4)
        for value in (5, 5, 5, 9):
            summary.add(value)
        assert summary.estimate(5) == 3
        assert summary.estimate(9) == 1

    def test_estimate_of_unmonitored_value_is_zero(self):
        summary = SpaceSaving(2)
        summary.add(1)
        assert summary.estimate(42) == 0

    def test_estimate_never_understates(self):
        summary = SpaceSaving(2)
        for value in (1, 2, 3, 1, 4, 1):
            summary.add(value)
        assert summary.estimate(1) >= 3
