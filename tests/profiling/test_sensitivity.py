"""Tests for cross-input top-value overlap (Table 2)."""

from repro.profiling.access import profile_accessed_values
from repro.profiling.sensitivity import top_value_overlap, trace_overlap
from repro.trace.trace import Trace


def _profile_from_values(values):
    """A profile where earlier values rank higher."""
    records = []
    for rank, value in enumerate(values):
        records += [(0, rank * 4, value)] * (len(values) - rank)
    return profile_accessed_values(Trace(records))


class TestOverlap:
    def test_full_overlap(self):
        a = _profile_from_values(list(range(10)))
        result = top_value_overlap(a, a, ks=(7, 10))
        assert result.overlap == {7: 7, 10: 10}
        assert result.as_fractions() == {7: 1.0, 10: 1.0}

    def test_partial_overlap(self):
        ref = _profile_from_values(list(range(10)))
        alt = _profile_from_values([0, 1, 2, 100, 101, 102, 103,
                                    104, 105, 106])
        result = top_value_overlap(ref, alt, ks=(7, 10))
        assert result.overlap[7] == 3
        assert result.overlap[10] == 3
        assert set(result.shared_values[7]) == {0, 1, 2}

    def test_no_overlap(self):
        ref = _profile_from_values(list(range(10)))
        alt = _profile_from_values(list(range(100, 110)))
        assert top_value_overlap(ref, alt).overlap == {7: 0, 10: 0}

    def test_paper_notation(self):
        ref = _profile_from_values(list(range(10)))
        alt = _profile_from_values([0, 1] + list(range(50, 58)))
        assert top_value_overlap(ref, alt).format() == "2/7 2/10"

    def test_trace_convenience(self):
        trace = Trace([(0, 0, 5)] * 3 + [(0, 4, 6)])
        result = trace_overlap(trace, trace)
        assert result.overlap[7] == 2
