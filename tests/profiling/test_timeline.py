"""Tests for the Fig. 3 timeline profiler."""

from repro.profiling.occurrence import OccurrenceProfile, OccurrenceSample
from repro.profiling.timeline import profile_timeline
from repro.trace.trace import Trace


def _fixture():
    # Value 7 dominates accesses; memory snapshots at 4 and 8 accesses.
    trace = Trace(
        [(0, 0, 7), (1, 4, 7), (0, 8, 1), (0, 0, 7),
         (0, 4, 7), (0, 8, 1), (1, 12, 2), (0, 0, 7)]
    )
    samples = (
        OccurrenceSample(access_count=4, live_locations=3,
                         counts={7: 2, 1: 1}),
        OccurrenceSample(access_count=8, live_locations=4,
                         counts={7: 2, 1: 1, 2: 1}),
    )
    occurrence = OccurrenceProfile(
        samples=samples, ranked=((7, 4), (1, 2), (2, 1))
    )
    return trace, occurrence


class TestTimeline:
    def test_points_align_with_snapshots(self):
        trace, occurrence = _fixture()
        points = profile_timeline(trace, occurrence)
        assert [p.access_count for p in points] == [4, 8]
        assert points[0].cumulative_accesses == 4
        assert points[1].cumulative_accesses == 8

    def test_access_coverage_cumulative(self):
        trace, occurrence = _fixture()
        points = profile_timeline(trace, occurrence)
        # Top-1 accessed value is 7: 3 of the first 4, 5 of all 8.
        assert points[0].covered_accesses[0] == 3
        assert points[1].covered_accesses[0] == 5

    def test_location_coverage_from_snapshots(self):
        trace, occurrence = _fixture()
        points = profile_timeline(trace, occurrence)
        assert points[0].covered_locations[0] == 2  # locations holding 7
        assert points[0].live_locations == 3

    def test_distinct_values_monotone(self):
        trace, occurrence = _fixture()
        points = profile_timeline(trace, occurrence)
        assert points[0].distinct_values_accessed <= points[1].distinct_values_accessed

    def test_coverage_bands_are_nested(self):
        trace, occurrence = _fixture()
        for point in profile_timeline(trace, occurrence):
            covered = point.covered_accesses
            assert covered[0] <= covered[1] <= covered[2] <= covered[3]
            locations = point.covered_locations
            assert locations[0] <= locations[1] <= locations[2] <= locations[3]
