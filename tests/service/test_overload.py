"""Overload shedding: the bounded queue, 503 + Retry-After at the HTTP
surface, degraded health reporting, and recovery without dropping any
accepted job."""

import time

import pytest

from repro.faults import install, reset
from repro.faults.plan import FaultPlan
from repro.service.client import ServiceClient, ServiceError
from repro.service.jobs import JobQueue, QueueFullError
from repro.service.server import ReproService, ServiceConfig


class TestQueueBound:
    def test_submissions_past_the_bound_shed(self):
        queue = JobQueue(max_queue_depth=2)
        queue.submit({"n": 1}, "k1")
        queue.submit({"n": 2}, "k2")
        with pytest.raises(QueueFullError) as excinfo:
            queue.submit({"n": 3}, "k3")
        assert excinfo.value.depth == 2
        assert excinfo.value.limit == 2
        assert "retry later" in str(excinfo.value)
        assert queue.stats()["shed"] == 1

    def test_duplicate_submission_is_never_shed(self):
        queue = JobQueue(max_queue_depth=1)
        job, deduplicated = queue.submit({"n": 1}, "k1")
        assert not deduplicated
        again, deduplicated = queue.submit({"n": 1}, "k1")
        assert again is job and deduplicated
        assert queue.stats()["shed"] == 0

    def test_unbounded_by_default(self):
        queue = JobQueue()
        for n in range(300):
            queue.submit({"n": n}, f"k{n}")
        assert queue.stats()["shed"] == 0
        assert queue.queue_depth() == 300


class TestServerShedding:
    """One worker, queue bound 1: with the first job parked by an
    injected ``worker.child`` slowdown, a second queues (degraded), a
    third is shed with 503 + Retry-After — and once the backlog drains,
    every *accepted* job has completed and submissions flow again."""

    @pytest.fixture()
    def service(self, tmp_path):
        install(FaultPlan.parse("worker.child:slow(1.5)@1-2"))
        config = ServiceConfig(
            port=0,
            workers=1,
            max_queue_depth=1,
            job_timeout=120.0,
            store_dir=tmp_path / "results",
        )
        service = ReproService(config).start()
        yield service
        service.stop(drain=False)
        reset()

    def test_shed_degrade_recover(self, service):
        client = ServiceClient(service.url)
        first = client.submit_experiment("fig9", fast=True)

        deadline = time.monotonic() + 30.0
        while service.jobs.running_count() == 0:
            assert time.monotonic() < deadline, "first job never claimed"
            time.sleep(0.02)

        second = client.submit_experiment("fig10", fast=True)
        assert client.healthz()["status"] == "degraded"
        assert client.metrics()["metrics"]["degraded"]["value"] == 1

        with pytest.raises(ServiceError) as excinfo:
            client.submit_experiment("fig12", fast=True)
        assert excinfo.value.status == 503
        assert excinfo.value.transient
        assert excinfo.value.retry_after is not None
        assert excinfo.value.retry_after >= 1.0

        # Both accepted jobs complete; nothing accepted was dropped.
        assert client.wait(first["id"], timeout=120.0)["state"] == "done"
        assert client.wait(second["id"], timeout=120.0)["state"] == "done"

        # The backlog drained: health is green and submissions flow.
        assert client.healthz()["status"] == "ok"
        third = client.submit_experiment("fig12", fast=True)
        assert client.wait(third["id"], timeout=120.0)["state"] == "done"
        assert client.metrics()["metrics"]["jobs_shed_total"]["value"] == 1
