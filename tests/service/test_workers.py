"""Tests for the process-isolated worker pool: success, deterministic
failure, crash retries with backoff, timeouts, cancellation, drain.

The pool is exercised with injected spec runners (the ``run_spec``
seam), so these tests cover the execution machinery without paying for
real simulations.
"""

import os
import time

import pytest

from repro.service import jobs as jobstates
from repro.service.jobs import JobQueue
from repro.service.workers import WorkerPool


# Spec runners executed in child processes --------------------------------
def _ok_runner(spec, progress):
    progress(1, 2)
    progress(2, 2)
    return {"echo": spec.get("tag", "")}


def _error_runner(spec, progress):
    raise ValueError("deterministic failure")


def _crashy_runner(spec, progress):
    """Simulates a crashing worker: hard-exits until the attempt file
    says the configured number of crashes has happened."""
    path = spec["counter"]
    attempt = int(open(path).read()) if os.path.exists(path) else 0
    with open(path, "w") as handle:
        handle.write(str(attempt + 1))
    if attempt < spec["crashes"]:
        os._exit(3)
    return {"survived_after": attempt}


def _sleepy_runner(spec, progress):
    progress(0, 1)
    time.sleep(spec.get("seconds", 30))
    return {"woke": True}


def _wait_for(predicate, timeout=10.0, interval=0.01):
    deadline = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() > deadline:
            raise AssertionError("condition not reached in time")
        time.sleep(interval)


@pytest.fixture()
def queue():
    return JobQueue()


def _run_pool(queue, runner, **kwargs):
    pool = WorkerPool(queue, run_spec=runner, workers=1, **kwargs)
    pool.start()
    return pool


class TestExecution:
    def test_success_delivers_payload_and_progress(self, queue):
        pool = _run_pool(queue, _ok_runner)
        try:
            job, _ = queue.submit({"tag": "hello"}, "k1")
            _wait_for(lambda: job.state == jobstates.DONE)
            assert job.payload == {"echo": "hello"}
            assert job.progress == (2, 2)
            assert job.attempts == 1
        finally:
            pool.stop(drain=False)

    def test_on_done_hook_records_admission(self, queue):
        seen = {}

        def on_done(job, payload):
            seen["payload"] = payload
            return False  # pretend the store rejected it

        pool = WorkerPool(
            queue, run_spec=_ok_runner, workers=1, on_done=on_done
        ).start()
        try:
            job, _ = queue.submit({"tag": "x"}, "k")
            _wait_for(lambda: job.state == jobstates.DONE)
            assert seen["payload"] == {"echo": "x"}
            assert job.stored is False
        finally:
            pool.stop(drain=False)

    def test_exception_fails_without_retry(self, queue):
        pool = _run_pool(queue, _error_runner)
        try:
            job, _ = queue.submit({}, "k")
            _wait_for(lambda: job.state == jobstates.FAILED)
            assert "ValueError: deterministic failure" in job.error
            assert job.attempts == 1
            assert queue.stats()["retries"] == 0
        finally:
            pool.stop(drain=False)


class TestCrashes:
    def test_crash_retries_then_succeeds(self, queue, tmp_path):
        pool = _run_pool(queue, _crashy_runner, retry_backoff=0.01)
        try:
            spec = {"counter": str(tmp_path / "attempts"), "crashes": 2}
            job, _ = queue.submit(spec, "k")
            _wait_for(lambda: job.state == jobstates.DONE)
            assert job.payload == {"survived_after": 2}
            assert job.attempts == 3
            assert queue.stats()["retries"] == 2
        finally:
            pool.stop(drain=False)

    def test_crash_budget_exhausted_fails(self, queue, tmp_path):
        pool = _run_pool(
            queue, _crashy_runner, max_retries=1, retry_backoff=0.01
        )
        try:
            spec = {"counter": str(tmp_path / "attempts"), "crashes": 99}
            job, _ = queue.submit(spec, "k")
            _wait_for(lambda: job.state == jobstates.FAILED)
            assert "exit code 3" in job.error
            assert "gave up after 2 attempts" in job.error
        finally:
            pool.stop(drain=False)

    def test_backoff_time_is_bounded_by_the_job_timeout(
        self, queue, tmp_path
    ):
        # Generous attempt count but a bounded budget: cumulative backoff
        # may not exceed the job's own timeout, so the pool gives up on
        # the crash-looping job long before 50 retries.  The timeout is
        # kept large relative to child-spawn latency so no single
        # (instantly crashing) attempt can itself hit the deadline.
        pool = _run_pool(
            queue,
            _crashy_runner,
            max_retries=50,
            retry_backoff=2.5,
            job_timeout=3.0,
        )
        try:
            spec = {"counter": str(tmp_path / "attempts"), "crashes": 99}
            job, _ = queue.submit(spec, "k")
            _wait_for(lambda: job.state == jobstates.FAILED, timeout=30.0)
            assert "retry budget" in job.error
            # 2.5s + 0.5s exhausts the 3.0s budget: attempt 3 fails.
            assert job.attempts == 3
        finally:
            pool.stop(drain=False)


class TestInjectedFaults:
    def test_injected_child_crash_is_retried_transparently(self, queue):
        from repro.faults import install, reset
        from repro.faults.plan import FaultPlan

        install(FaultPlan.parse("worker.child:crash@1"))
        try:
            pool = _run_pool(queue, _ok_runner, retry_backoff=0.01)
            try:
                job, _ = queue.submit({"tag": "x"}, "k")
                _wait_for(lambda: job.state == jobstates.DONE)
                assert job.payload == {"echo": "x"}
                assert job.attempts == 2
                assert queue.stats()["retries"] == 1
            finally:
                pool.stop(drain=False)
        finally:
            reset()


class TestTimeoutsAndCancellation:
    def test_timeout_kills_and_fails(self, queue):
        pool = _run_pool(queue, _sleepy_runner, job_timeout=0.3)
        try:
            job, _ = queue.submit({"seconds": 30}, "k")
            _wait_for(lambda: job.state == jobstates.FAILED)
            assert "timed out" in job.error
        finally:
            pool.stop(drain=False)

    def test_cancel_running_job(self, queue):
        pool = _run_pool(queue, _sleepy_runner)
        try:
            job, _ = queue.submit({"seconds": 30}, "k")
            _wait_for(lambda: job.state == jobstates.RUNNING)
            _wait_for(lambda: job.progress == (0, 1))  # child really up
            queue.cancel(job.id)
            _wait_for(lambda: job.state == jobstates.CANCELLED)
            assert queue.stats()["cancelled"] == 1
        finally:
            pool.stop(drain=False)


class TestDrain:
    def test_drain_finishes_queued_work(self, queue):
        pool = _run_pool(queue, _ok_runner)
        submitted = [queue.submit({"tag": str(i)}, f"k{i}")[0] for i in range(4)]
        pool.stop(drain=True)
        for job in submitted:
            assert job.state == jobstates.DONE

    def test_stop_without_drain_cancels_queue(self, queue):
        # Workers never start, so everything is still queued.
        pool = WorkerPool(queue, run_spec=_ok_runner, workers=1)
        submitted = [queue.submit({}, f"k{i}")[0] for i in range(3)]
        pool.stop(drain=False)
        for job in submitted:
            assert job.state == jobstates.CANCELLED

    def test_rejects_zero_workers(self, queue):
        with pytest.raises(ValueError):
            WorkerPool(queue, run_spec=_ok_runner, workers=0)
