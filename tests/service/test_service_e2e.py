"""End-to-end tests: HTTP server + client + workers + result store.

One in-process service (ephemeral port, real worker child processes,
temporary result store) serves the whole module.  Covers the
acceptance path: a served job's payload is byte-identical to ``repro-fvc
run --json``, and an identical resubmission is answered from the result
store without re-simulation, observable in ``/v1/metrics``.
"""

import pytest

from repro.cli import main
from repro.service.client import JobFailed, ServiceClient, ServiceError
from repro.service.server import ReproService, ServiceConfig

_EXPERIMENT = "fig9"


@pytest.fixture(scope="module")
def service(tmp_path_factory):
    config = ServiceConfig(
        port=0,  # ephemeral
        workers=2,
        job_timeout=120.0,
        retry_backoff=0.05,
        store_dir=tmp_path_factory.mktemp("result-store"),
    )
    service = ReproService(config).start()
    yield service
    service.stop(drain=False)


@pytest.fixture(scope="module")
def client(service):
    return ServiceClient(service.url)


class TestEndpoints:
    def test_healthz(self, client):
        body = client.healthz()
        assert body["status"] == "ok"
        assert body["queue_depth"] == 0
        assert "max_queue_depth" in body

    def test_metrics_shape(self, client):
        metrics = client.metrics()
        assert metrics["schema"] == "metrics/v1"
        structured = metrics["metrics"]
        for name in (
            "jobs_submitted_total",
            "jobs_completed_total",
            "jobs_failed_total",
            "jobs_cancelled_total",
            "result_store_hits_total",
            "result_store_admission_rejects_total",
            "queue_depth",
            "uptime_seconds",
        ):
            assert name in structured

    def test_unknown_endpoint_404(self, client):
        with pytest.raises(ServiceError) as err:
            client._request("GET", "/v1/nope")
        assert err.value.status == 404

    def test_unknown_job_404(self, client):
        with pytest.raises(ServiceError) as err:
            client.status("job-does-not-exist")
        assert err.value.status == 404

    def test_unknown_result_404(self, client):
        with pytest.raises(ServiceError) as err:
            client.result_bytes("0" * 24)
        assert err.value.status == 404

    def test_malformed_spec_400(self, client):
        with pytest.raises(ServiceError) as err:
            client.submit({"type": "mystery"})
        assert err.value.status == 400

    def test_unknown_experiment_400(self, client):
        with pytest.raises(ServiceError) as err:
            client.submit_experiment("fig99")
        assert err.value.status == 400

    def test_invalid_json_body_400(self, client):
        import urllib.request

        request = urllib.request.Request(
            client.base_url + "/v1/jobs",
            data=b"not json{",
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(request, timeout=10)
        assert err.value.code == 400


class TestAcceptance:
    """The ISSUE's acceptance criteria, verbatim."""

    def test_served_result_matches_run_json_and_resubmit_hits_store(
        self, service, client, capsys
    ):
        # 1. The same experiment via the CLI's machine-readable path.
        assert main(["run", _EXPERIMENT, "--fast", "--json"]) == 0
        local = capsys.readouterr().out.encode()

        # 2. Served: submit, poll to completion, fetch.
        before = client.metrics()
        job = client.submit_experiment(_EXPERIMENT, fast=True)
        assert job["state"] in ("queued", "running", "done")
        done = client.wait(job["id"], timeout=120)
        assert done["attempts"] == 1
        assert done["stored"] is True
        key = done["result_key"]

        # Byte-identical payloads, twice (second fetch is also a hit).
        first = client.result_bytes(key)
        second = client.result_bytes(key)
        assert first == local
        assert second == local

        # 3. Identical resubmission: answered from the result store,
        #    no new simulation.
        again = client.submit(
            {"type": "experiment", "experiment_id": _EXPERIMENT, "fast": True}
        )
        assert again["state"] == "done"
        assert again["cached"] is True
        assert again["result"] is not None
        assert again["result_key"] == key

        def sample(snapshot, name):
            return snapshot["metrics"][name]["value"]

        after = client.metrics()
        assert sample(after, "jobs_completed_total") == (
            sample(before, "jobs_completed_total") + 1
        )
        # Hits: two fetches + the resubmission lookup.
        assert sample(after, "result_store_hits_total") >= (
            sample(before, "result_store_hits_total") + 3
        )
        assert "result_store_admission_rejects_total" in after["metrics"]


class TestJobLifecycle:
    def test_cell_job_round_trip(self, client):
        job = client.submit_cell(
            "go", input_name="test", kind="fvc", size_bytes=8 * 1024,
            fvc_entries=128, top_values=3,
        )
        done = client.wait(job["id"], timeout=120)
        payload = client.result(done["result_key"])
        assert payload["schema"] == "repro.cell/1"
        assert payload["extras"]["fvc_hits"] > 0

    def test_inflight_deduplication(self, client):
        spec = {
            "type": "cell",
            "workload": "li",
            "input_name": "test",
            "size_bytes": 4 * 1024,
        }
        first = client.submit(spec)
        second = client.submit(spec)
        # Either answered from the store (first finished already) or
        # deduplicated against the in-flight job — never two jobs.
        assert second["cached"] or second["id"] == first["id"]
        client.wait(first["id"], timeout=120)

    def test_cancel_queued_job_resolves(self, service, client):
        # A burst bigger than the pool guarantees some jobs queue; the
        # last is cancelled before a worker reaches it (workers are
        # busy), so it must end cancelled without simulating.
        specs = [
            {
                "type": "cell",
                "workload": "perl",
                "input_name": "test",
                "size_bytes": 1024 << index,
            }
            for index in range(6)
        ]
        submitted = [client.submit(spec) for spec in specs]
        victim = submitted[-1]
        if victim["state"] == "queued":
            client.cancel(victim["id"])
            try:
                final = client.wait(victim["id"], timeout=120)
            except JobFailed as err:
                final = err.job
            assert final["state"] in ("cancelled", "done")
        for job in submitted[:-1]:
            if job["state"] != "done":
                try:
                    client.wait(job["id"], timeout=120)
                except JobFailed:  # pragma: no cover - diagnostics
                    raise

    def test_jobs_listing(self, client):
        listing = client.jobs()
        assert isinstance(listing["jobs"], list)
        assert len(listing["jobs"]) >= 1
        assert all("result" not in job for job in listing["jobs"])
