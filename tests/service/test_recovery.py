"""Crash recovery: rebuilding the control plane from journal +
snapshot — queue order determinism, attempt counts, done-from-store
rehydration, cancel propagation, and shedding under storage pressure."""

import json
import time

import pytest

from repro.common.errors import StorageExhausted
from repro.service.jobs import JobQueue
from repro.service.journal import Journal, recover
from repro.service.result_store import ResultStore
from repro.service.server import ReproService, ServiceConfig


def make_journal(path) -> Journal:
    return Journal(path, fsync=False)


@pytest.fixture()
def journal(tmp_path):
    return make_journal(tmp_path / "state")


class TestQueueJournalling:
    def test_lifecycle_is_recorded(self, journal):
        queue = JobQueue(journal=journal)
        job, deduplicated = queue.submit({"n": 1}, "key-1")
        assert not deduplicated
        claimed = queue.next_job(timeout=0.01)
        assert claimed is job
        queue.note_attempt(job, 1)
        queue.note_progress(job, 3, 9)
        queue.finish(job, "done", stored=True)
        _, tail, _ = make_journal(journal.directory).replay()
        assert [record["k"] for record in tail] == [
            "job.submit", "job.claim", "job.attempt", "job.progress",
            "job.finish",
        ]

    def test_storage_exhausted_submission_rolls_back(self, tmp_path):
        exhausted = Journal(tmp_path / "state", fsync=False, quota_bytes=1)
        queue = JobQueue(journal=exhausted)
        with pytest.raises(StorageExhausted):
            queue.submit({"n": 1}, "key-1")
        # The write-ahead contract: unrecordable means never accepted.
        assert queue.jobs() == []
        assert queue.next_job(timeout=0.01) is None
        assert queue.stats()["shed"] == 1
        assert queue.stats()["submitted"] == 0

    def test_note_attempt_is_monotonic(self, journal):
        queue = JobQueue(journal=journal)
        job, _ = queue.submit({"n": 1}, "key-1")
        queue.note_attempt(job, 3)
        queue.note_attempt(job, 1)  # a restarted executor's local loop
        assert job.attempts == 3


class TestQueueRestore:
    def drive(self, journal):
        queue = JobQueue(journal=journal)
        first, _ = queue.submit({"n": 1}, "key-1")
        second, _ = queue.submit({"n": 2}, "key-2")
        third, _ = queue.submit({"n": 3}, "key-3")
        claimed = queue.next_job(timeout=0.01)
        assert claimed is first
        queue.note_attempt(first, 2)
        queue.finish(first, "done", stored=False)
        claimed = queue.next_job(timeout=0.01)
        assert claimed is second
        queue.note_attempt(second, 1)
        return queue, (first, second, third)

    def test_replay_rebuilds_queue_order_and_attempts(self, journal):
        _, (first, second, third) = self.drive(journal)

        recovered = recover(make_journal(journal.directory))
        rebuilt = JobQueue(journal=None)
        rebuilt.restore(recovered, payloads={})

        ids = [job.id for job in rebuilt.jobs()]
        assert ids == [first.id, second.id, third.id]
        assert rebuilt.get(first.id).state == "done"
        # Jobs that were running at the crash re-enter the queue at
        # their recorded attempt count, pending jobs behind them.
        assert rebuilt.get(second.id).state == "queued"
        assert rebuilt.get(second.id).attempts == 1
        assert rebuilt.get(third.id).state == "queued"
        assert [
            rebuilt.next_job(timeout=0.01).id for _ in range(2)
        ] == [second.id, third.id]
        assert rebuilt.next_job(timeout=0.01) is None

    def test_replay_is_deterministic(self, journal):
        self.drive(journal)

        def fingerprint():
            recovered = recover(make_journal(journal.directory))
            queue = JobQueue(journal=None)
            queue.restore(recovered, payloads={})
            return [
                (job.id, job.state, job.attempts)
                for job in queue.jobs()
            ], queue.stats()

        assert fingerprint() == fingerprint()

    def test_counters_are_restored(self, journal):
        queue, _ = self.drive(journal)
        before = queue.stats()

        recovered = recover(make_journal(journal.directory))
        rebuilt = JobQueue(journal=None)
        rebuilt.restore(recovered, payloads={})
        after = rebuilt.stats()
        for name in ("submitted", "completed", "failed", "cancelled"):
            assert after[name] == before[name]

    def test_new_ids_never_collide_with_recovered(self, journal):
        _, (first, _, _) = self.drive(journal)
        recovered = recover(make_journal(journal.directory))
        rebuilt = JobQueue(journal=None)
        rebuilt.restore(recovered, payloads={})
        fresh, _ = rebuilt.submit({"n": 99}, "key-99")
        serials = {job.id.split("-")[1] for job in rebuilt.jobs()}
        assert len(serials) == 4  # three recovered + one fresh, distinct

    def test_cancel_requested_resolves_after_restart(self, journal):
        queue = JobQueue(journal=journal)
        job, _ = queue.submit({"n": 1}, "key-1")
        queue.cancel(job.id)

        recovered = recover(make_journal(journal.directory))
        rebuilt = JobQueue(journal=None)
        rebuilt.restore(recovered, payloads={})
        assert rebuilt.get(job.id).cancel_event.is_set()
        # The claim path resolves it, exactly like a pre-crash cancel.
        assert rebuilt.next_job(timeout=0.01) is None
        assert rebuilt.get(job.id).state == "cancelled"


class TestStorePeek:
    def test_peek_has_no_observability_side_effects(self, tmp_path):
        store = ResultStore(tmp_path / "store", capacity=4)
        store.put("a" * 24, b'{"x": 1}')
        baseline = store.stats()
        assert store.peek("a" * 24) == b'{"x": 1}'
        assert store.peek("b" * 24) is None
        after = store.stats()
        assert after["hits"] == baseline["hits"]
        assert after["misses"] == baseline["misses"]

    def test_peek_quarantines_corruption(self, tmp_path):
        store = ResultStore(tmp_path / "store", capacity=4)
        store.put("a" * 24, b'{"x": 1}')
        path = tmp_path / "store" / ("a" * 24 + ".json")
        path.write_bytes(b"rotten")
        assert store.peek("a" * 24) is None
        assert path.with_name(path.name + ".corrupt").exists()


class TestServiceRecovery:
    def config(self, base, **overrides):
        settings = dict(
            port=0,
            workers=1,
            job_timeout=60.0,
            store_dir=base / "store",
            state_dir=base / "state",
            journal_fsync=False,
        )
        settings.update(overrides)
        return ServiceConfig(**settings)

    def test_done_jobs_recover_from_store_without_recompute(self, tmp_path):
        config = self.config(tmp_path)
        service = ReproService(config).start()
        try:
            body, status = service.submit(
                {"type": "experiment", "experiment_id": "fig9", "fast": True}
            )
            assert status == 202
            job_id = body["id"]
            end = time.time() + 120
            while time.time() < end:
                if service.jobs.get(job_id).state == "done":
                    break
                time.sleep(0.1)
            finished = service.jobs.get(job_id)
            assert finished.state == "done"
            payload = json.dumps(finished.payload, sort_keys=True)
        finally:
            service.stop(drain=True)

        resurrected = ReproService(config)
        try:
            assert resurrected.recovery["jobs"] == 1
            job = resurrected.jobs.get(job_id)
            assert job is not None and job.state == "done"
            # Zero recomputation: the payload came from the store.
            assert json.dumps(job.payload, sort_keys=True) == payload
            assert resurrected.jobs.stats()["completed"] == 1
            samples = resurrected.metric_samples()
            assert samples["journal_recovered_jobs_total"]["value"] == 1
            assert samples["storage_exhausted"]["value"] == 0
        finally:
            resurrected.stop(drain=False)

    def test_quota_breach_sheds_503_and_keeps_reads(self, tmp_path):
        from repro.service.client import ServiceClient, ServiceError

        config = self.config(tmp_path, state_quota_bytes=1)
        service = ReproService(config).start()
        client = ServiceClient(service.url)
        try:
            with pytest.raises(ServiceError) as err:
                client.submit(
                    {"type": "experiment", "experiment_id": "fig9",
                     "fast": True}
                )
            assert err.value.status == 503
            # Degradation is typed and visible, reads keep working.
            health = client.healthz()
            assert health["status"] == "degraded"
            assert health["storage_exhausted"] is True
            metrics = client.metrics()["metrics"]
            assert metrics["storage_exhausted"]["value"] == 1
            assert metrics["journal_append_failures_total"]["value"] >= 1
            assert service.jobs.stats()["shed"] == 1
        finally:
            service.stop(drain=False)
