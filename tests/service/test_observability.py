"""Service observability: versioned metrics payload, prom exposition,
job/v1-tagged job views — with the legacy flat keys gone for good."""

import pytest

from repro.service.client import ServiceClient
from repro.service.jobs import JOB_SCHEMA
from repro.service.server import ReproService, ServiceConfig


@pytest.fixture(scope="module")
def service(tmp_path_factory):
    config = ServiceConfig(
        port=0,
        workers=1,
        job_timeout=120.0,
        retry_backoff=0.05,
        store_dir=tmp_path_factory.mktemp("result-store"),
    )
    service = ReproService(config).start()
    yield service
    service.stop(drain=False)


@pytest.fixture(scope="module")
def client(service):
    return ServiceClient(service.url)


@pytest.fixture(scope="module")
def finished_job(client):
    job = client.submit_cell(
        "go", input_name="test", kind="baseline", size_bytes=4 * 1024
    )
    return client.wait(job["id"], timeout=120)


class TestMetricsV1:
    def test_payload_is_versioned(self, client, finished_job):
        metrics = client.metrics()
        assert metrics["schema"] == "metrics/v1"
        structured = metrics["metrics"]
        assert structured["jobs_submitted_total"]["type"] == "counter"
        assert structured["jobs_submitted_total"]["value"] >= 1
        assert structured["jobs_completed_total"]["value"] >= 1
        assert structured["server_requests_total"]["type"] == "counter"
        assert structured["result_store_size_bytes"]["type"] == "gauge"
        assert structured["result_store_size_bytes"]["value"] > 0
        histogram = structured["server_request_seconds"]
        assert histogram["type"] == "histogram"
        assert histogram["count"] >= 1
        assert histogram["buckets"][-1]["le"] == "+Inf"

    def test_legacy_flat_keys_are_retired(self, client, finished_job):
        """The pre-metrics/v1 flat spellings were aliased for exactly
        one release; the payload now carries only the envelope and the
        structured entries."""
        metrics = client.metrics()
        assert sorted(metrics) == ["metrics", "schema", "version"]
        for legacy in (
            "jobs_submitted",
            "jobs_completed",
            "jobs_failed",
            "result_store_hits",
            "queue_depth",
            "uptime_seconds",
        ):
            assert legacy not in metrics

    def test_cluster_metrics_are_registered(self, client, finished_job):
        structured = client.metrics()["metrics"]
        assert structured["cluster_workers"]["type"] == "gauge"
        assert structured["cluster_leases_issued_total"]["type"] == "counter"
        assert structured["cluster_pending_cells"]["value"] == 0

    def test_prometheus_exposition(self, client, finished_job):
        body = client._request("GET", "/v1/metrics?format=prom").decode()
        lines = body.splitlines()
        assert "# TYPE repro_jobs_submitted_total counter" in lines
        assert "# TYPE repro_jobs_queued gauge" in lines
        assert "# TYPE repro_server_request_seconds histogram" in lines
        assert any(
            line.startswith('repro_server_request_seconds_bucket{le="')
            for line in lines
        )
        assert any(
            line.startswith("repro_server_request_seconds_count ")
            for line in lines
        )
        assert body.endswith("\n")

    def test_json_remains_the_default(self, client):
        assert client.metrics()["schema"] == "metrics/v1"


class TestJobSchema:
    def test_job_views_are_tagged(self, client, finished_job):
        assert finished_job["schema"] == JOB_SCHEMA == "job/v1"
        fetched = client.status(finished_job["id"])
        assert fetched["schema"] == "job/v1"

    def test_jobs_listing_is_tagged(self, client, finished_job):
        listing = client.jobs()
        assert len(listing["jobs"]) >= 1
        assert all(job["schema"] == "job/v1" for job in listing["jobs"])
