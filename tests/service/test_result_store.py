"""Tests for the persistent result store and its TinyLFU admission."""

import json

import pytest

from repro.service.result_store import FrequencySketch, ResultStore


@pytest.fixture()
def store_dir(tmp_path):
    return tmp_path / "results"


def _payload(tag: str) -> bytes:
    return (json.dumps({"tag": tag}) + "\n").encode()


class TestFrequencySketch:
    def test_counts_touches(self):
        sketch = FrequencySketch(counters=16, window=1000)
        for _ in range(5):
            sketch.touch("aaaa000000000000")
        sketch.touch("bbbb000000000000")
        assert sketch.estimate("aaaa000000000000") >= 5
        assert sketch.estimate("cccc000000000000") == 0

    def test_window_rotation_ages_counts(self):
        sketch = FrequencySketch(counters=16, window=10)
        for _ in range(10):
            sketch.touch("aaaa000000000000")  # fills window 1, rotates
        peak = sketch.estimate("aaaa000000000000")
        for _ in range(10):
            sketch.touch("bbbb000000000000")  # rotates again: a is gone
        assert sketch.estimate("aaaa000000000000") < peak

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            FrequencySketch(window=0)


class TestResultStoreBasics:
    def test_miss_then_hit(self, store_dir):
        store = ResultStore(store_dir, capacity=4)
        assert store.get("k1") is None
        assert store.put("k1", _payload("one"))
        assert store.get("k1") == _payload("one")
        assert store.stats()["hits"] == 1
        assert store.stats()["misses"] == 1

    def test_payload_bytes_are_exact(self, store_dir):
        store = ResultStore(store_dir, capacity=4)
        raw = _payload("exact")
        store.put("k1", raw)
        # On disk the payload sits inside an integrity envelope; the
        # unwrapped bytes (and every get()) are exactly what was put.
        from repro.common.integrity import unwrap

        assert unwrap((store_dir / "k1.json").read_bytes()) == raw
        assert store.get("k1") == raw

    def test_overwrite_same_key_admitted(self, store_dir):
        store = ResultStore(store_dir, capacity=1)
        assert store.put("k1", _payload("a"))
        assert store.put("k1", _payload("b"))
        assert store.get("k1") == _payload("b")
        assert len(store) == 1

    def test_persistence_across_instances(self, store_dir):
        first = ResultStore(store_dir, capacity=4)
        first.put("k1", _payload("persisted"))
        second = ResultStore(store_dir, capacity=4)
        assert second.get("k1") == _payload("persisted")
        assert len(second) == 1

    def test_clear(self, store_dir):
        store = ResultStore(store_dir, capacity=4)
        store.put("k1", _payload("a"))
        store.put("k2", _payload("b"))
        assert store.clear() == 2
        assert len(store) == 0
        assert store.get("k1") is None

    def test_rejects_bad_capacity(self, store_dir):
        with pytest.raises(ValueError):
            ResultStore(store_dir, capacity=0)


class TestAdmission:
    def test_under_capacity_everything_admitted(self, store_dir):
        store = ResultStore(store_dir, capacity=3)
        for index in range(3):
            assert store.put(f"k{index}", _payload(str(index)))
        assert store.stats()["admission_rejects"] == 0

    def test_cold_candidate_rejected_at_capacity(self, store_dir):
        store = ResultStore(store_dir, capacity=2)
        store.put("hot1", _payload("a"))
        store.put("hot2", _payload("b"))
        for _ in range(5):  # heat both residents
            store.get("hot1")
            store.get("hot2")
        # A first-time candidate (frequency 1) must not displace them.
        assert not store.put("cold", _payload("c"))
        assert store.stats()["admission_rejects"] == 1
        assert store.get("hot1") is not None
        assert not (store_dir / "cold.json").exists()

    def test_requested_often_enough_wins_admission(self, store_dir):
        """The acceptance path: repeated requests for a rejected key
        build sketch frequency until it displaces the coldest entry."""
        store = ResultStore(store_dir, capacity=2)
        store.put("a", _payload("a"))
        store.put("b", _payload("b"))
        for _ in range(4):
            store.get("b")  # b is hot; a stays at frequency 1
        for _ in range(5):
            store.get("wanted")  # misses, but builds frequency
        assert store.put("wanted", _payload("w"))
        assert store.stats()["evictions"] == 1
        # The cold entry (a) was the victim; the hot one survived.
        assert store.get("b") is not None
        assert store.get("a") is None

    def test_rejected_result_not_lost_semantics(self, store_dir):
        """A rejected put returns False so the caller can keep serving
        the payload from the job record."""
        store = ResultStore(store_dir, capacity=1)
        store.put("resident", _payload("r"))
        for _ in range(3):
            store.get("resident")
        admitted = store.put("oneoff", _payload("o"))
        assert admitted is False
        assert store.get("resident") == _payload("r")


class TestAtomicity:
    def test_no_temp_files_left_behind(self, store_dir):
        store = ResultStore(store_dir, capacity=4)
        store.put("k1", _payload("a"))
        store.put("k2", _payload("b"))
        assert list(store_dir.glob("*.tmp")) == []

    def test_write_failure_cleans_up(self, store_dir, monkeypatch):
        store = ResultStore(store_dir, capacity=4)

        def boom(src, dst):
            raise OSError("disk full")

        monkeypatch.setattr("repro.service.result_store.os.replace", boom)
        with pytest.raises(OSError):
            store.put("k1", _payload("a"))
        monkeypatch.undo()
        assert list(store_dir.glob("*.tmp")) == []
        assert store.get("k1") is None

    def test_manual_delete_heals_index(self, store_dir):
        store = ResultStore(store_dir, capacity=4)
        store.put("k1", _payload("a"))
        (store_dir / "k1.json").unlink()
        assert store.get("k1") is None
        assert len(store) == 0


class TestPutLockDiscipline:
    """put() publishes the index entry only after the bytes are on
    disk, and never holds the store lock across the file write."""

    def test_index_entry_appears_with_the_file(self, store_dir):
        store = ResultStore(store_dir, capacity=4)
        assert store.put("k", _payload("k"))
        assert store.contains("k")
        assert (store_dir / "k.json").exists()

    def test_failed_write_leaves_no_index_entry(self, store_dir, monkeypatch):
        store = ResultStore(store_dir, capacity=4)

        def boom(key, payload):
            raise OSError("disk gone")

        monkeypatch.setattr(store, "_write", boom)
        with pytest.raises(OSError):
            store.put("k", _payload("k"))
        assert not store.contains("k")
        assert store.stats()["stores"] == 0

    def test_eviction_decision_survives_concurrent_reads(self, store_dir):
        # The victim leaves the index before its file is unlinked, so
        # a concurrent get() of the victim key reports a clean miss
        # (heal path) rather than serving a half-deleted entry.
        store = ResultStore(store_dir, capacity=1)
        store.put("cold", _payload("cold"))
        for _ in range(5):
            store.get("hot")  # drive hot's sketch estimate up
        assert store.put("hot", _payload("hot"))
        assert not store.contains("cold")
        assert store.get("cold") is None
        assert store.get("hot") is not None


class TestVerifyLockDiscipline:
    """verify() snapshots the key set and reconciles per entry instead
    of holding the lock across every envelope read."""

    def test_verify_counts_and_heals(self, store_dir):
        store = ResultStore(store_dir, capacity=8)
        store.put("good", _payload("good"))
        store.put("bad", _payload("bad"))
        bad_path = store_dir / "bad.json"
        bad_path.write_bytes(b"corrupt garbage")
        report = store.verify()
        assert report["checked"] == 2
        assert report["ok"] == 1
        assert report["quarantined"] == 1
        assert not store.contains("bad")
        assert store.contains("good")

    def test_verify_sweeps_tmp_droppings(self, store_dir):
        store = ResultStore(store_dir, capacity=8)
        store.put("k", _payload("k"))
        (store_dir / "zombie.tmp").write_bytes(b"half a write")
        report = store.verify()
        assert report["tmp_removed"] == 1
        assert list(store_dir.glob("*.tmp")) == []

    def test_verify_tolerates_entry_vanishing_mid_scan(self, store_dir):
        store = ResultStore(store_dir, capacity=8)
        store.put("gone", _payload("gone"))
        (store_dir / "gone.json").unlink()
        report = store.verify()
        assert report["checked"] == 1
        assert report["ok"] == 0
        assert not store.contains("gone")
