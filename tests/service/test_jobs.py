"""Tests for job records and the job queue lifecycle."""

from repro.service import jobs as jobstates
from repro.service.jobs import JobQueue


def _spec(tag="x"):
    return {"type": "cell", "workload": tag}


class TestSubmission:
    def test_submit_enqueues(self):
        queue = JobQueue()
        job, deduplicated = queue.submit(_spec(), "key1")
        assert not deduplicated
        assert job.state == jobstates.QUEUED
        assert queue.queue_depth() == 1
        assert queue.get(job.id) is job

    def test_ids_are_unique_and_ordered(self):
        queue = JobQueue()
        a, _ = queue.submit(_spec("a"), "ka")
        b, _ = queue.submit(_spec("b"), "kb")
        assert a.id != b.id
        assert [j.id for j in queue.jobs()] == [a.id, b.id]

    def test_inflight_deduplication(self):
        queue = JobQueue()
        first, _ = queue.submit(_spec(), "samekey")
        second, deduplicated = queue.submit(_spec(), "samekey")
        assert deduplicated
        assert second is first
        assert queue.queue_depth() == 1
        assert queue.stats()["submitted"] == 2

    def test_no_dedup_against_terminal_jobs(self):
        queue = JobQueue()
        first, _ = queue.submit(_spec(), "samekey")
        claimed = queue.next_job()
        queue.finish(claimed, jobstates.FAILED, error="boom")
        second, deduplicated = queue.submit(_spec(), "samekey")
        assert not deduplicated
        assert second is not first

    def test_add_cached_never_queues(self):
        queue = JobQueue()
        job = queue.add_cached(_spec(), "key", {"rows": []})
        assert job.state == jobstates.DONE
        assert job.cached
        assert job.stored
        assert queue.queue_depth() == 0
        assert queue.stats()["completed"] == 0  # never simulated


class TestLifecycle:
    def test_claim_and_finish(self):
        queue = JobQueue()
        job, _ = queue.submit(_spec(), "k")
        claimed = queue.next_job()
        assert claimed is job
        assert claimed.state == jobstates.RUNNING
        queue.finish(claimed, jobstates.DONE, payload={"ok": 1}, stored=True)
        assert job.state == jobstates.DONE
        assert queue.stats()["completed"] == 1

    def test_next_job_times_out_empty(self):
        assert JobQueue().next_job(timeout=0.01) is None

    def test_cancel_queued_resolves_on_claim(self):
        queue = JobQueue()
        job, _ = queue.submit(_spec(), "k")
        assert queue.cancel(job.id) is job
        assert queue.next_job() is None  # resolved, not claimed
        assert job.state == jobstates.CANCELLED
        assert queue.stats()["cancelled"] == 1

    def test_cancel_unknown_returns_none(self):
        assert JobQueue().cancel("job-nope") is None

    def test_cancel_terminal_is_noop(self):
        queue = JobQueue()
        job, _ = queue.submit(_spec(), "k")
        claimed = queue.next_job()
        queue.finish(claimed, jobstates.DONE, payload={})
        queue.cancel(job.id)
        assert job.state == jobstates.DONE
        assert not job.cancel_event.is_set()


class TestViews:
    def test_as_dict_shapes(self):
        queue = JobQueue()
        job, _ = queue.submit(_spec(), "k")
        view = job.as_dict()
        assert view["state"] == "queued"
        assert view["result_key"] == "k"
        assert "result" not in view
        claimed = queue.next_job()
        claimed.progress = (3, 24)
        queue.finish(claimed, jobstates.DONE, payload={"rows": []}, stored=False)
        view = job.as_dict()
        assert view["progress"] == {"done": 3, "total": 24}
        assert view["result"] == {"rows": []}
        assert view["stored"] is False
        assert "result" not in job.as_dict(include_result=False)

    def test_registry_trims_terminal_jobs_only(self):
        queue = JobQueue(max_jobs=2)
        first, _ = queue.submit(_spec("a"), "ka")
        claimed = queue.next_job()
        queue.finish(claimed, jobstates.DONE, payload={})
        queue.submit(_spec("b"), "kb")
        queue.submit(_spec("c"), "kc")
        ids = [j.id for j in queue.jobs()]
        assert first.id not in ids  # oldest terminal record dropped
        assert len(ids) == 2


class TestNoteMutators:
    """The queue-mediated job mutators the worker pool uses instead of
    writing job records directly (shared with the HTTP threads)."""

    def test_note_attempt_updates_record(self):
        queue = JobQueue()
        job, _ = queue.submit(_spec(), "key-a")
        queue.note_attempt(job, 3)
        assert job.attempts == 3

    def test_note_progress_updates_record(self):
        queue = JobQueue()
        job, _ = queue.submit(_spec(), "key-b")
        queue.note_progress(job, 2, 8)
        assert job.progress == (2, 8)

    def test_mutators_are_visible_in_job_view(self):
        queue = JobQueue()
        job, _ = queue.submit(_spec(), "key-c")
        queue.note_attempt(job, 1)
        queue.note_progress(job, 4, 4)
        view = job.as_dict()
        assert view["attempts"] == 1
        assert view["progress"] == {"done": 4, "total": 4}
