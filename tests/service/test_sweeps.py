"""End-to-end ``/v1/sweeps``: fan-out, assembly, byte identity.

The acceptance property: a sweep served through ``POST /v1/sweeps``
assembles the exact bytes a local :func:`repro.sweeps.runner.run_sweep`
produces for the same spec, and the assembled payload is memoised in
the result store under the sweep's result key.
"""

from __future__ import annotations

import pytest

from repro.experiments.render import dumps_canonical
from repro.service.client import ServiceClient, ServiceError
from repro.service.server import ReproService, ServiceConfig
from repro.sweeps.catalog import get_sweep
from repro.sweeps.runner import run_sweep


@pytest.fixture(scope="module")
def service(tmp_path_factory):
    config = ServiceConfig(
        port=0,
        workers=2,
        job_timeout=120.0,
        retry_backoff=0.05,
        store_dir=tmp_path_factory.mktemp("sweep-store"),
    )
    service = ReproService(config).start()
    yield service
    service.stop(drain=False)


@pytest.fixture(scope="module")
def client(service):
    return ServiceClient(service.url)


class TestSweepEndpoints:
    def test_malformed_spec_400_names_contract(self, client):
        with pytest.raises(ServiceError) as err:
            client.submit_sweep({"schema": "sweep/v2"})
        assert err.value.status == 400
        assert "sweep/v1" in str(err.value)

    def test_unknown_sweep_404(self, client):
        with pytest.raises(ServiceError) as err:
            client.sweep("0" * 24)
        assert err.value.status == 404

    def test_served_bytes_identical_to_local_run(self, service, client):
        spec = get_sweep("l1_size_study", fast=True)
        local = dumps_canonical(run_sweep(spec))

        view = client.submit_sweep(spec)
        assert view["schema"] == "sweep.view/1"
        assert view["state"] in ("running", "done")
        assert view["points"] == 12
        assert view["distinct_cells"] == 12

        done = client.wait_sweep(view["sweep_id"], timeout=180)
        assert done["state"] == "done"
        served = dumps_canonical(done["result"])
        assert served == local

        # The assembled payload is memoised under the sweep result key.
        assert client.result_bytes(done["result_key"]).decode() == local

        # Idempotent re-post: answered 200 from the tracked record, no
        # new submission counted.
        before = client.metrics()["metrics"]["sweeps_submitted_total"]["value"]
        again = client.submit_sweep(spec)
        assert again["sweep_id"] == view["sweep_id"]
        after = client.metrics()["metrics"]["sweeps_submitted_total"]["value"]
        assert after == before

    def test_sweep_cells_reuse_the_result_store(self, client):
        # Same cells as l1_size_study fast under a different sweep name:
        # every cell is answered from the store or deduplicated, so the
        # reuse counter moves and the sweep finishes immediately.
        spec = dict(get_sweep("l1_size_study", fast=True))
        spec = {key: value for key, value in spec.items()}
        spec["name"] = "l1-size-study-copy"
        before = client.metrics()["metrics"]
        view = client.submit_sweep(spec)
        done = client.wait_sweep(view["sweep_id"], timeout=60)
        after = client.metrics()["metrics"]
        reused = after.get("sweep_cells_reused_total", {"value": 0})["value"]
        reused_before = before.get(
            "sweep_cells_reused_total", {"value": 0}
        )["value"]
        assert reused - reused_before == 12
        # Same cell results, different sweep identity.
        assert done["result"]["sweep"]["name"] == "l1-size-study-copy"

    def test_experiment_wrapper_sweep_round_trip(self, client):
        spec = get_sweep("fig9", fast=True)
        view = client.submit_sweep(spec)
        done = client.wait_sweep(view["sweep_id"], timeout=120)
        local = dumps_canonical(run_sweep(spec))
        assert dumps_canonical(done["result"]) == local
        assert done["result"]["experiment_id"] == "fig9"

    def test_listing_and_metrics(self, client):
        listing = client.sweeps()
        assert isinstance(listing["sweeps"], list)
        assert len(listing["sweeps"]) >= 3
        assert all("result" not in view for view in listing["sweeps"])
        metrics = client.metrics()["metrics"]
        for name in (
            "sweeps_submitted_total",
            "sweeps_completed_total",
            "sweep_cells_expanded_total",
            "sweeps_tracked",
        ):
            assert name in metrics
        assert metrics["sweeps_tracked"]["value"] == len(listing["sweeps"])

    def test_repost_after_restart_recovers_from_store(
        self, service, client, tmp_path_factory
    ):
        # A fresh board (new service sharing the store directory) has
        # no tracked record, but the assembled payload is resident:
        # the re-POST answers 200 done without queueing any job.
        spec = get_sweep("l1_size_study", fast=True)
        local = dumps_canonical(run_sweep(spec))
        config = ServiceConfig(
            port=0,
            workers=1,
            store_dir=service.config.store_dir,
        )
        fresh = ReproService(config).start()
        try:
            fresh_client = ServiceClient(fresh.url)
            view = fresh_client.submit_sweep(spec)
            assert view["state"] == "done"
            assert view["jobs"] == {}
            done = fresh_client.sweep(view["sweep_id"])
            assert dumps_canonical(done["result"]) == local
        finally:
            fresh.stop(drain=False)

    def test_wait_sweep_timeout_is_a_service_error(self, client):
        with pytest.raises(ServiceError):
            # Unknown id: the first poll raises 404 as ServiceError.
            client.wait_sweep("f" * 24, timeout=0.5, poll=0.1)
