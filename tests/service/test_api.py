"""Tests for job-spec normalisation, result keys and payloads."""

import json

import pytest

from repro.common.errors import ConfigurationError, WorkloadError
from repro.service.api import (
    SpecError,
    cell_payload,
    execute_spec,
    normalise_spec,
    payload_bytes,
    result_key,
)


class TestNormaliseSpec:
    def test_experiment_spec_minimal(self):
        spec = normalise_spec({"type": "experiment", "experiment_id": "fig10"})
        assert spec == {
            "type": "experiment",
            "experiment_id": "fig10",
            "fast": False,
        }

    def test_cell_spec_fills_defaults(self):
        spec = normalise_spec({"type": "cell", "workload": "go"})
        assert spec["input_name"] == "ref"
        assert spec["kind"] == "baseline"
        assert spec["size_bytes"] == 16 * 1024
        assert spec["line_bytes"] == 32

    def test_normalisation_is_canonical(self):
        """Field order and spelled-out defaults must not change the
        canonical form (and hence the result key)."""
        a = normalise_spec({"type": "cell", "workload": "go", "ways": 1})
        b = normalise_spec({"ways": 1, "workload": "go", "type": "cell"})
        c = normalise_spec({"type": "cell", "workload": "go"})
        assert a == b == c
        assert result_key(a) == result_key(c)

    def test_rejects_non_object(self):
        with pytest.raises(SpecError):
            normalise_spec(["not", "a", "dict"])

    def test_rejects_unknown_type(self):
        with pytest.raises(SpecError):
            normalise_spec({"type": "mystery"})

    def test_rejects_unknown_experiment(self):
        with pytest.raises(ConfigurationError):
            normalise_spec({"type": "experiment", "experiment_id": "fig99"})

    def test_rejects_unknown_workload(self):
        with pytest.raises(WorkloadError):
            normalise_spec({"type": "cell", "workload": "quake"})

    def test_rejects_unknown_cell_fields(self):
        with pytest.raises(SpecError):
            normalise_spec({"type": "cell", "workload": "go", "bogus": 1})

    def test_rejects_wrong_field_types(self):
        with pytest.raises(SpecError):
            normalise_spec(
                {"type": "cell", "workload": "go", "size_bytes": "16k"}
            )
        with pytest.raises(SpecError):
            normalise_spec(
                {"type": "cell", "workload": "go", "size_bytes": True}
            )

    def test_rejects_unknown_cell_kind(self):
        with pytest.raises(SpecError):
            normalise_spec({"type": "cell", "workload": "go", "kind": "magic"})


class TestResultKey:
    def test_stable_for_equal_specs(self):
        spec = normalise_spec({"type": "experiment", "experiment_id": "fig10"})
        assert result_key(spec) == result_key(dict(spec))

    def test_differs_across_specs(self):
        keys = {
            result_key(
                normalise_spec(
                    {"type": "experiment", "experiment_id": "fig10"}
                )
            ),
            result_key(
                normalise_spec(
                    {
                        "type": "experiment",
                        "experiment_id": "fig10",
                        "fast": True,
                    }
                )
            ),
            result_key(normalise_spec({"type": "cell", "workload": "go"})),
            result_key(normalise_spec({"type": "cell", "workload": "gcc"})),
        }
        assert len(keys) == 4

    def test_version_is_part_of_the_key(self, monkeypatch):
        spec = normalise_spec({"type": "cell", "workload": "go"})
        before = result_key(spec)
        monkeypatch.setattr("repro.__version__", "999.0.0")
        assert result_key(spec) != before


class TestExecuteSpec:
    def test_cell_execution_reports_progress(self):
        spec = normalise_spec(
            {
                "type": "cell",
                "workload": "go",
                "input_name": "test",
                "size_bytes": 8 * 1024,
            }
        )
        seen = []
        payload = execute_spec(spec, lambda done, total: seen.append((done, total)))
        assert seen == [(0, 1), (1, 1)]
        assert payload["schema"] == "repro.cell/1"
        assert payload["cell"]["workload"] == "go"
        assert payload["stats"]["accesses"] > 0

    def test_experiment_execution_reports_cell_progress(self):
        spec = normalise_spec(
            {"type": "experiment", "experiment_id": "fig10", "fast": True}
        )
        seen = []
        payload = execute_spec(spec, lambda done, total: seen.append((done, total)))
        assert payload["schema"] == "repro.experiment/1"
        assert payload["experiment_id"] == "fig10"
        assert len(payload["rows"]) == 6
        # fig10 --fast decomposes into 6 workloads x (1 baseline + 3
        # FVC sizes) = 24 cells, reported in order.
        assert seen[0] == (1, 24)
        assert seen[-1] == (24, 24)

    def test_payload_bytes_round_trip(self):
        spec = normalise_spec(
            {"type": "cell", "workload": "go", "input_name": "test"}
        )
        payload = execute_spec(spec)
        raw = payload_bytes(payload)
        assert raw.endswith(b"\n")
        assert json.loads(raw) == payload


class TestCellPayload:
    def test_matches_run_cell(self, store):
        from repro.engine.cells import SimCell, run_cell

        cell = SimCell(workload="go", input_name="test")
        result = run_cell(cell, store)
        payload = cell_payload(result)
        assert payload["cell"]["input_name"] == "test"
        assert payload["stats"] == result.stats
        assert payload["extras"] == result.extras
