"""Client-side degradation: the circuit breaker's state machine on a
deterministic clock, the seeded retry policy, and both wired into
:class:`ServiceClient` without any real network."""

import threading

import pytest

from repro.faults import install, reset
from repro.faults.plan import FaultPlan
from repro.service.client import ServiceClient, ServiceError
from repro.service.resilience import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    CircuitBreaker,
    CircuitOpenError,
    RetryPolicy,
)


class Clock:
    """A hand-cranked monotonic clock."""

    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestCircuitBreaker:
    def test_opens_after_consecutive_failures(self):
        clock = Clock()
        breaker = CircuitBreaker(
            failure_threshold=3, reset_timeout=30.0, clock=clock
        )
        for _ in range(2):
            breaker.allow()
            breaker.record_failure()
        assert breaker.state == CLOSED
        breaker.allow()
        breaker.record_failure()
        assert breaker.state == OPEN
        with pytest.raises(CircuitOpenError) as excinfo:
            breaker.allow()
        assert excinfo.value.remaining == pytest.approx(30.0)
        assert breaker.fast_failures == 1

    def test_success_resets_the_failure_count(self):
        breaker = CircuitBreaker(failure_threshold=2, clock=Clock())
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CLOSED

    def test_half_open_probe_closes_on_success(self):
        clock = Clock()
        breaker = CircuitBreaker(
            failure_threshold=1, reset_timeout=10.0, clock=clock
        )
        breaker.record_failure()
        assert breaker.state == OPEN
        clock.advance(10.0)
        assert breaker.state == HALF_OPEN
        breaker.allow()  # the probe goes through
        breaker.record_success()
        assert breaker.state == CLOSED

    def test_half_open_probe_reopens_on_failure(self):
        clock = Clock()
        breaker = CircuitBreaker(
            failure_threshold=1, reset_timeout=10.0, clock=clock
        )
        breaker.record_failure()
        clock.advance(10.0)
        assert breaker.state == HALF_OPEN
        breaker.record_failure()
        assert breaker.state == OPEN
        clock.advance(5.0)
        with pytest.raises(CircuitOpenError) as excinfo:
            breaker.allow()
        assert excinfo.value.remaining == pytest.approx(5.0)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(reset_timeout=-1.0)


class TestRetryPolicy:
    def test_delays_are_seeded_and_reproducible(self):
        first = [RetryPolicy(seed=5).delay_for(i) for i in range(4)]
        second = [RetryPolicy(seed=5).delay_for(i) for i in range(4)]
        assert first == second
        assert [RetryPolicy(seed=6).delay_for(i) for i in range(4)] != first

    def test_exponential_within_the_jitter_band(self):
        policy = RetryPolicy(backoff=0.2, max_backoff=5.0, jitter=0.5)
        for attempt in range(6):
            base = min(0.2 * 2 ** attempt, 5.0)
            assert base <= policy.delay_for(attempt) <= base * 1.5

    def test_retry_after_floors_the_delay(self):
        policy = RetryPolicy(backoff=0.1, jitter=0.0)
        assert policy.delay_for(0, retry_after=7.0) == 7.0

    def test_negative_retries_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(retries=-1)


class TestClientIntegration:
    """The retry/breaker wiring inside ServiceClient, driven through a
    stubbed transport (``_request_once``) so no server is needed."""

    @pytest.fixture(autouse=True)
    def _clean_plan(self):
        reset()
        yield
        reset()

    def test_transient_failures_retried_until_success(self):
        sleeps = []
        client = ServiceClient(
            "http://stub.invalid",
            retry=RetryPolicy(retries=3, backoff=0.1, jitter=0.0),
            sleep=sleeps.append,
        )
        outcomes = [
            ServiceError("shedding", status=503, retry_after=2.0),
            ServiceError("unreachable", status=None),
            b'{"ok": true}',
        ]

        def stub(method, path, body=None):
            outcome = outcomes.pop(0)
            if isinstance(outcome, Exception):
                raise outcome
            return outcome

        client._request_once = stub
        assert client._json("GET", "/v1/healthz") == {"ok": True}
        assert client.retries_attempted == 2
        # The server's Retry-After hint floored the first delay; the
        # second backed off exponentially from the policy base.
        assert sleeps[0] == 2.0
        assert sleeps[1] == pytest.approx(0.2)

    def test_non_transient_errors_never_retried(self):
        client = ServiceClient(
            "http://stub.invalid",
            retry=RetryPolicy(retries=5),
            sleep=lambda seconds: None,
        )

        def stub(method, path, body=None):
            raise ServiceError("bad request", status=400)

        client._request_once = stub
        with pytest.raises(ServiceError):
            client._json("GET", "/x")
        assert client.retries_attempted == 0

    def test_breaker_opens_then_recovers(self):
        clock = Clock()
        breaker = CircuitBreaker(
            failure_threshold=2, reset_timeout=60.0, clock=clock
        )
        client = ServiceClient("http://stub.invalid", breaker=breaker)

        def down(method, path, body=None):
            raise ServiceError("unreachable")

        client._request_once = down
        for _ in range(2):
            with pytest.raises(ServiceError):
                client.status("j1")
        # Open: the next call fails fast without touching the stub.
        with pytest.raises(CircuitOpenError):
            client.status("j1")
        assert breaker.fast_failures == 1
        # After the reset timeout, the half-open probe succeeds and the
        # circuit closes again.
        clock.advance(60.0)
        client._request_once = lambda m, p, body=None: b'{"state": "done"}'
        assert client.status("j1") == {"state": "done"}
        assert breaker.state == CLOSED

    def test_injected_client_fault_is_transient(self):
        install(FaultPlan.parse("client.request:io_error@1"))
        client = ServiceClient("http://127.0.0.1:1")  # never dialled
        with pytest.raises(ServiceError) as excinfo:
            client.healthz()
        assert excinfo.value.transient
        assert "cannot reach" in str(excinfo.value)


class TestRetryCounterThreadSafety:
    def test_concurrent_retries_never_lose_increments(self):
        """The retry counter is shared between the cluster worker's
        heartbeat thread and its lease loop; increments go through the
        client's stats lock, so none are lost under contention."""
        client = ServiceClient(
            "http://stub.invalid",
            retry=RetryPolicy(retries=1, backoff=0.0, jitter=0.0),
            sleep=lambda seconds: None,
        )
        local = threading.local()

        def stub(method, path, body=None):
            # Strict per-thread alternation: each request fails once
            # (503) and then succeeds, independent of interleaving.
            if not getattr(local, "failed", False):
                local.failed = True
                raise ServiceError("flaky", status=503)
            local.failed = False
            return b"{}"

        client._request_once = stub
        workers = [
            threading.Thread(
                target=lambda: [client._json("GET", "/v1/healthz") for _ in range(50)]
            )
            for _ in range(4)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        # Every request failed exactly once then succeeded: one retry
        # per request, none raced away.
        assert client.retries_attempted == 4 * 50
