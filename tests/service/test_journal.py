"""The write-ahead journal: envelope framing, torn-tail tolerance,
snapshot + compaction equivalence, disk-quota degradation."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import StorageExhausted
from repro.common.integrity import MAGIC
from repro.service.journal import (
    LOG_NAME,
    SNAPSHOT_NAME,
    Journal,
    _parse_log,
    recover,
)


def make_journal(path, **kwargs) -> Journal:
    kwargs.setdefault("fsync", False)
    return Journal(path, **kwargs)


def empty_state(jobs=(), serial=0, epoch=0.0):
    return {
        "queue": {
            "jobs": list(jobs),
            "serial": serial,
            "counters": {},
        },
        "sched": {
            "worker_serial": 0,
            "lease_serial": 0,
            "epoch": epoch,
            "counters": {},
        },
    }


class TestAppendReplay:
    def test_roundtrip(self, tmp_path):
        journal = make_journal(tmp_path)
        journal.append(
            "job.submit", id="job-00001-aa", spec={"type": "cell"},
            result_key="k1", lane="local", created=1.0,
        )
        journal.append("job.claim", id="job-00001-aa")
        journal.append("job.finish", id="job-00001-aa", state="done")
        journal.close()

        state, tail, torn = make_journal(tmp_path).replay()
        assert state is None and not torn
        assert [record["k"] for record in tail] == [
            "job.submit", "job.claim", "job.finish",
        ]
        assert [record["seq"] for record in tail] == [1, 2, 3]

    def test_sequence_survives_reopen(self, tmp_path):
        journal = make_journal(tmp_path)
        journal.append("job.retry")
        journal.close()
        reopened = make_journal(tmp_path)
        reopened.replay()
        assert reopened.append("job.retry") == 2

    def test_none_fields_are_dropped(self, tmp_path):
        journal = make_journal(tmp_path)
        journal.append("job.finish", id="j", state="done", error=None)
        _, tail, _ = make_journal(tmp_path).replay()
        assert "error" not in tail[0]

    def test_records_are_individually_enveloped(self, tmp_path):
        journal = make_journal(tmp_path)
        journal.append("job.retry")
        journal.append("job.retry")
        blob = (tmp_path / LOG_NAME).read_bytes()
        assert blob.startswith(MAGIC)
        assert blob.count(MAGIC) == 2


class TestTornTail:
    def test_torn_tail_stops_replay_at_last_good_record(self, tmp_path):
        journal = make_journal(tmp_path)
        journal.append("job.retry")
        journal.append("job.cancel", id="j")
        journal.close()
        with open(tmp_path / LOG_NAME, "ab") as handle:
            handle.write(MAGIC + b"half-written")

        _, tail, torn = make_journal(tmp_path).replay()
        assert torn
        assert [record["k"] for record in tail] == ["job.retry", "job.cancel"]

    def test_corrupt_record_is_a_torn_tail(self, tmp_path):
        journal = make_journal(tmp_path)
        journal.append("job.retry")
        journal.append("job.cancel", id="j")
        journal.close()
        log = tmp_path / LOG_NAME
        blob = bytearray(log.read_bytes())
        blob[-2] ^= 0x40  # flip a payload bit inside the last record
        log.write_bytes(bytes(blob))

        _, tail, torn = make_journal(tmp_path).replay()
        assert torn
        assert [record["k"] for record in tail] == ["job.retry"]

    def test_sweep_quarantines_and_truncates(self, tmp_path):
        journal = make_journal(tmp_path)
        journal.append("job.retry")
        journal.close()
        with open(tmp_path / LOG_NAME, "ab") as handle:
            handle.write(b"not an envelope at all")

        swept = make_journal(tmp_path)
        report = swept.sweep()
        assert report["records_ok"] == 1
        assert report["torn_bytes"] == 22
        assert report["quarantined"] == 1
        assert (tmp_path / (LOG_NAME + ".corrupt")).exists()
        # The truncated log replays clean, and appending resumes.
        _, tail, torn = swept.replay()
        assert not torn and len(tail) == 1
        assert swept.append("job.retry") == 2

    def test_corrupt_snapshot_is_quarantined(self, tmp_path):
        journal = make_journal(tmp_path)
        journal.append("job.retry")
        assert journal.snapshot(empty_state)
        snapshot = tmp_path / SNAPSHOT_NAME
        snapshot.write_bytes(b"garbage")

        state, tail, torn = make_journal(tmp_path).replay()
        assert state is None and not torn
        assert snapshot.with_name(SNAPSHOT_NAME + ".corrupt").exists()
        # With the snapshot gone its covers mark is gone too — but the
        # log was compacted behind it, so the tail is simply empty.
        assert tail == []

    def test_parse_log_empty(self):
        assert _parse_log(b"") == ([], 0, False)


class TestSnapshotCompaction:
    def test_compaction_drops_covered_records(self, tmp_path):
        journal = make_journal(tmp_path)
        for _ in range(50):
            journal.append("job.retry")
        size_before = (tmp_path / LOG_NAME).stat().st_size
        assert journal.snapshot(empty_state)
        assert (tmp_path / LOG_NAME).stat().st_size < size_before
        journal.append("job.retry")
        _, tail, _ = make_journal(tmp_path).replay()
        assert [record["seq"] for record in tail] == [51]

    def test_snapshot_due(self, tmp_path):
        journal = make_journal(tmp_path, snapshot_every=3)
        assert not journal.snapshot_due()
        for _ in range(3):
            journal.append("job.retry")
        assert journal.snapshot_due()
        journal.snapshot(empty_state)
        assert not journal.snapshot_due()

    def test_soak_state_dir_stays_bounded(self, tmp_path):
        # 500 jobs' worth of lifecycle records with periodic snapshot +
        # compaction: the state dir must stay bounded (a few records'
        # tail + one snapshot), not grow linearly with history.
        journal = make_journal(tmp_path, snapshot_every=64)
        for index in range(500):
            journal.append(
                "job.submit", id=f"job-{index:05d}-ab", spec={},
                result_key=f"k{index}", lane="local", created=float(index),
            )
            journal.append("job.claim", id=f"job-{index:05d}-ab")
            journal.append(
                "job.finish", id=f"job-{index:05d}-ab", state="done",
            )
            if journal.snapshot_due():
                journal.snapshot(empty_state)
        journal.snapshot(empty_state)
        stats = journal.stats()
        assert stats["seq"] == 1500
        assert stats["tail_records"] == 0
        assert stats["size_bytes"] < 64 * 1024
        assert stats["compactions"] >= 20


class TestQuota:
    def test_quota_breach_raises_typed_and_flags(self, tmp_path):
        journal = make_journal(tmp_path, quota_bytes=200)
        journal.append("job.retry")
        assert not journal.exhausted
        with pytest.raises(StorageExhausted):
            for _ in range(100):
                journal.append("job.retry")
        assert journal.exhausted
        assert journal.stats()["append_failures"] == 1

    def test_append_safe_never_raises(self, tmp_path):
        journal = make_journal(tmp_path, quota_bytes=1)
        assert journal.append_safe("job.retry") is None
        assert journal.exhausted

    def test_exhaustion_self_heals_after_compaction(self, tmp_path):
        journal = make_journal(tmp_path, quota_bytes=1500)
        with pytest.raises(StorageExhausted):
            for _ in range(100):
                journal.append("job.retry")
        assert journal.exhausted
        # Snapshot + compaction frees the covered records; the flag
        # clears and appends succeed again.
        assert journal.snapshot(empty_state)
        assert not journal.exhausted
        assert journal.append("job.retry") > 0

    def test_accepted_work_keeps_journalling_after_breach(self, tmp_path):
        journal = make_journal(tmp_path, quota_bytes=400)
        accepted = 0
        for _ in range(20):
            if journal.append_safe("job.retry") is not None:
                accepted += 1
        assert 0 < accepted < 20
        _, tail, _ = make_journal(tmp_path).replay()
        assert len(tail) == accepted


_KINDS = st.sampled_from(
    ["job.submit", "job.claim", "job.attempt", "job.finish", "job.cancel"]
)


class TestSnapshotTailEquivalence:
    @settings(max_examples=25, deadline=None)
    @given(
        kinds=st.lists(_KINDS, min_size=1, max_size=40),
        cut=st.integers(min_value=0, max_value=40),
    )
    def test_snapshot_plus_tail_equals_full_replay(
        self, tmp_path_factory, kinds, cut
    ):
        """Recovering from snapshot+tail must equal replaying the full
        journal, wherever the snapshot lands in the record stream."""
        cut = min(cut, len(kinds))

        def drive(journal, snapshot_at):
            jobs = {}
            order = []
            for index, kind in enumerate(kinds):
                job_id = f"job-{(index % 5) + 1:05d}-xx"
                if kind == "job.submit":
                    if job_id not in jobs:
                        jobs[job_id] = {
                            "id": job_id, "spec": {}, "result_key": job_id,
                            "lane": "local", "state": "queued",
                            "attempts": 0, "created": float(index),
                        }
                        order.append(job_id)
                        journal.append(
                            "job.submit", id=job_id, spec={},
                            result_key=job_id, lane="local",
                            created=float(index),
                        )
                elif job_id in jobs:
                    job = jobs[job_id]
                    if kind == "job.claim":
                        if job["state"] == "queued":
                            job["state"] = "running"
                        journal.append("job.claim", id=job_id)
                    elif kind == "job.attempt":
                        job["attempts"] = max(job["attempts"], 1)
                        journal.append("job.attempt", id=job_id, n=1)
                    elif kind == "job.finish":
                        if job["state"] in ("queued", "running"):
                            job["state"] = "done"
                        journal.append(
                            "job.finish", id=job_id, state="done",
                        )
                    elif kind == "job.cancel":
                        if job["state"] in ("queued", "running"):
                            job["cancel"] = True
                        journal.append("job.cancel", id=job_id)
                if index + 1 == snapshot_at:
                    state = {
                        "queue": {
                            "jobs": [json.loads(json.dumps(jobs[j]))
                                     for j in order],
                            "serial": 5,
                            "counters": {},
                        },
                        "sched": {
                            "worker_serial": 0, "lease_serial": 0,
                            "epoch": 0.0, "counters": {},
                        },
                    }
                    assert journal.snapshot(lambda: state)

        def fingerprint(directory):
            recovered = recover(make_journal(directory))
            return [
                (job.id, job.state, job.attempts, job.cancel_requested)
                for job in recovered.jobs
            ]

        with_snapshot = tmp_path_factory.mktemp("snap")
        without = tmp_path_factory.mktemp("full")
        drive(make_journal(with_snapshot), snapshot_at=cut)
        drive(make_journal(without), snapshot_at=-1)
        assert fingerprint(with_snapshot) == fingerprint(without)
