"""Shared fixtures.

Workload traces are expensive, so the suite generates each (workload,
input) trace at most once per session through a shared store fixture.
Everything here uses the small ``test`` inputs; full-scale runs belong
to the benchmark suite.
"""

from __future__ import annotations

import os

import pytest

from repro.workloads.store import TraceStore


@pytest.fixture(scope="session", autouse=True)
def _no_ambient_fault_plan():
    """Keep fault injection opt-in per test: a REPRO_FAULTS plan left in
    the environment must not leak into every store/engine test.  Chaos
    tests install their own plans explicitly."""
    plan = os.environ.pop("REPRO_FAULTS", None)
    from repro.faults import reset

    reset()
    try:
        yield
    finally:
        if plan is not None:
            os.environ["REPRO_FAULTS"] = plan
        reset()


@pytest.fixture(scope="session", autouse=True)
def _no_ambient_obs():
    """Keep observability opt-in per test: REPRO_OBS / REPRO_OBS_TRACE
    left in the environment must not arm metrics or tracing for every
    test.  Obs tests enable them explicitly."""
    saved = {
        name: os.environ.pop(name, None)
        for name in ("REPRO_OBS", "REPRO_OBS_TRACE")
    }
    from repro.obs import tracing

    tracing.reset()
    try:
        yield
    finally:
        for name, value in saved.items():
            if value is not None:
                os.environ[name] = value
        tracing.reset()


@pytest.fixture(scope="session", autouse=True)
def _isolated_trace_cache(tmp_path_factory):
    """Keep the suite hermetic: unless the environment already pins the
    trace cache, point it at a per-session temporary directory so tests
    never read or write the developer's ``~/.cache``."""
    if "REPRO_TRACE_CACHE" in os.environ or "REPRO_TRACE_CACHE_DIR" in os.environ:
        yield
        return
    directory = tmp_path_factory.mktemp("trace-cache")
    os.environ["REPRO_TRACE_CACHE_DIR"] = str(directory)
    try:
        yield
    finally:
        os.environ.pop("REPRO_TRACE_CACHE_DIR", None)


@pytest.fixture(scope="session")
def store() -> TraceStore:
    """Session-wide trace store over the small test inputs."""
    return TraceStore(max_traces=16)


@pytest.fixture(scope="session")
def gcc_trace(store):
    """The gcc analog's test-input trace (medium, FVL-rich)."""
    return store.get("gcc", "test")


@pytest.fixture(scope="session")
def m88ksim_trace(store):
    """The m88ksim analog's test-input trace (conflict-rich)."""
    return store.get("m88ksim", "test")


@pytest.fixture(scope="session")
def li_trace(store):
    """The li analog's test-input trace (mutation-heavy)."""
    return store.get("li", "test")
