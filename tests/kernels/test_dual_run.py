"""The dual-run regression gate.

The backend switch may change time, never numbers: every fig*/table*
experiment's canonical JSON payload must be byte-identical between
``REPRO_BACKEND=python`` and ``REPRO_BACKEND=numpy``, under worker
fan-out (``jobs=4``), under the runtime sanitizer, and when the trace
arrives through the columnar file format instead of in-memory tuples.
"""

from __future__ import annotations

import pytest

from repro.analysis import sanitize
from repro.api import run_experiment
from repro.experiments.registry import EXPERIMENTS
from repro.experiments.render import dumps_canonical
from repro.kernels import backend

pytestmark = pytest.mark.skipif(
    not backend.numpy_available(), reason="dual-run gate needs numpy"
)

#: Every paper figure and table experiment (the gated payload surface).
GATED = sorted(
    experiment_id
    for experiment_id in EXPERIMENTS
    if experiment_id.startswith(("fig", "table"))
)


def _canonical(monkeypatch, experiment_id, backend_name, jobs=1):
    monkeypatch.setenv(backend.ENV_VAR, backend_name)
    return dumps_canonical(run_experiment(experiment_id, fast=True, jobs=jobs))


def test_gate_covers_every_figure_and_table():
    assert len(GATED) == 16


@pytest.mark.slow
@pytest.mark.parametrize("experiment_id", GATED)
def test_payload_identical_across_backends(experiment_id, monkeypatch):
    python_payload = _canonical(monkeypatch, experiment_id, "python")
    numpy_payload = _canonical(monkeypatch, experiment_id, "numpy")
    assert python_payload == numpy_payload


@pytest.mark.slow
def test_payload_identical_under_worker_fanout(monkeypatch):
    # Workers inherit REPRO_BACKEND through the environment; four numpy
    # workers must reproduce the sequential pure-Python bytes.
    sequential = _canonical(monkeypatch, "fig13", "python")
    fanned_out = _canonical(monkeypatch, "fig13", "numpy", jobs=4)
    assert sequential == fanned_out


@pytest.mark.slow
def test_payload_identical_under_sanitizer(monkeypatch):
    # REPRO_SANITIZE forces the oracle even under REPRO_BACKEND=numpy;
    # the payload must not move.
    plain = _canonical(monkeypatch, "fig13", "numpy")
    monkeypatch.setenv(sanitize.ENV_VAR, "1")
    sanitized = _canonical(monkeypatch, "fig13", "numpy")
    assert plain == sanitized


class _SingleTraceStore:
    def __init__(self, trace):
        self._trace = trace

    def get(self, workload, input_name="ref"):
        assert (workload, input_name) == (
            self._trace.workload,
            self._trace.input_name,
        )
        return self._trace


def test_columnar_trace_yields_identical_cell_results(
    tmp_path, store, monkeypatch
):
    # Strongest cross-format claim: the oracle over the original tuple
    # trace vs the kernels over a trace round-tripped through the
    # columnar file format, compared field by field.
    from repro.engine.cells import SimCell, run_cell
    from repro.trace.io import read_trace_any, write_trace_columnar

    trace = store.get("gcc", "test")
    path = tmp_path / "gcc.trcb"
    write_trace_columnar(trace, path)
    loaded = read_trace_any(path)
    assert loaded == trace

    cell = SimCell(
        workload="gcc", input_name="test", kind="fvc",
        size_bytes=8 * 1024, fvc_entries=256, top_values=7,
    )
    monkeypatch.setenv(backend.ENV_VAR, "python")
    oracle = run_cell(cell, _SingleTraceStore(trace))
    monkeypatch.setenv(backend.ENV_VAR, "numpy")
    kernel = run_cell(cell, _SingleTraceStore(loaded))
    assert oracle.stats == kernel.stats
    assert oracle.extras == kernel.extras
