"""``REPRO_BACKEND`` resolution and the dispatch gates.

The pure-Python functional tests run with numpy *blocked* (the module
made unimportable for the duration), proving the toolchain stands alone
without the optional ``fast`` extra — the same configuration the CI
test matrix exercises, where numpy is never installed.
"""

from __future__ import annotations

import sys

import pytest

from repro.analysis import sanitize
from repro.cache.geometry import CacheGeometry
from repro.common.errors import ConfigurationError
from repro.kernels import backend, dispatch
from repro.trace.trace import Trace


@pytest.fixture
def no_numpy(monkeypatch):
    """A process in which ``import numpy`` raises ImportError."""
    monkeypatch.setitem(sys.modules, "numpy", None)
    monkeypatch.setattr(backend, "_numpy_probe", None)


@pytest.fixture
def _clean_env(monkeypatch):
    monkeypatch.delenv(backend.ENV_VAR, raising=False)
    monkeypatch.delenv(sanitize.ENV_VAR, raising=False)


class TestResolution:
    def test_auto_is_the_default(self, _clean_env):
        expected = "numpy" if backend.numpy_available() else "python"
        assert backend.resolve_backend() == expected
        assert backend.active_backend() == expected

    def test_explicit_python_always_works(self):
        assert backend.resolve_backend("python") == "python"

    def test_case_and_whitespace_are_forgiven(self):
        assert backend.resolve_backend(" PYTHON ") == "python"

    def test_unknown_name_raises(self):
        with pytest.raises(ConfigurationError):
            backend.resolve_backend("cython")

    def test_auto_without_numpy_is_python(self, no_numpy):
        assert not backend.numpy_available()
        assert backend.resolve_backend("auto") == "python"

    def test_numpy_without_numpy_is_an_error(self, no_numpy):
        # A requested backend must never silently fall back.
        with pytest.raises(ConfigurationError):
            backend.resolve_backend("numpy")

    def test_env_var_is_read_per_call(self, monkeypatch):
        monkeypatch.setenv(backend.ENV_VAR, "python")
        assert backend.active_backend() == "python"
        assert not backend.backend_is_numpy()
        monkeypatch.setenv(backend.ENV_VAR, "no-such-backend")
        with pytest.raises(ConfigurationError):
            backend.active_backend()


class TestDispatchGates:
    def test_python_backend_disables_kernels(self, _clean_env, monkeypatch):
        monkeypatch.setenv(backend.ENV_VAR, "python")
        assert not dispatch.kernels_active()

    def test_sanitizer_disables_kernels(self, _clean_env, monkeypatch):
        monkeypatch.setenv(sanitize.ENV_VAR, "1")
        assert not dispatch.kernels_active()

    @pytest.mark.skipif(
        not backend.numpy_available(), reason="vectorized backend needs numpy"
    )
    def test_numpy_backend_enables_kernels(self, _clean_env, monkeypatch):
        monkeypatch.setenv(backend.ENV_VAR, "numpy")
        assert dispatch.kernels_active()

    def test_try_helpers_decline_when_gated(self, _clean_env, monkeypatch):
        monkeypatch.setenv(backend.ENV_VAR, "python")
        trace = Trace([(0, 16, 1)], workload="syn")
        geometry = CacheGeometry(4096, 16)
        assert dispatch.try_baseline_stats(trace, geometry) is None
        assert dispatch.try_hierarchy_replay(object(), trace) is False


class TestPurePythonFunctional:
    """The toolchain must be whole without numpy installed."""

    def test_cells_run_without_numpy(self, no_numpy, _clean_env, store):
        from repro.engine.cells import SimCell, run_cell

        assert backend.active_backend() == "python"
        trace = store.get("go", "test")
        baseline = SimCell(
            workload="go", input_name="test", kind="baseline",
            size_bytes=4 * 1024,
        )
        fvc = SimCell(
            workload="go", input_name="test", kind="fvc",
            size_bytes=4 * 1024, fvc_entries=128, top_values=3,
        )
        results = [run_cell(baseline, store), run_cell(fvc, store)]
        for result in results:
            assert result.stats["accesses"] == len(trace)
        assert results[1].extras["fvc_hits"] >= 0

    def test_columnar_io_round_trips_without_numpy(self, no_numpy, tmp_path):
        from repro.trace.io import read_trace_any, write_trace_columnar

        trace = Trace(
            [(0, 16, 1), (1, 0xFFFFFFF0, 0xFFFFFFFF), (0, 32, 7)],
            workload="syn",
            input_name="test",
        )
        path = tmp_path / "t.trcb"
        write_trace_columnar(trace, path)
        assert read_trace_any(path) == trace
