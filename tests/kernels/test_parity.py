"""Kernel-vs-oracle parity: the exactness contract of repro.kernels.

Every kernel must reproduce its pure-Python oracle's statistics to the
last counter on any trace it accepts, and must decline (``None`` /
``False``) on anything outside its proven envelope so the caller falls
back to the oracle.
"""

from __future__ import annotations

import pytest

from repro.cache.direct import DirectMappedCache
from repro.cache.geometry import CacheGeometry
from repro.cache.hierarchy import TwoLevelSystem
from repro.cache.setassoc import SetAssociativeCache
from repro.experiments.common import encoder_for
from repro.fvc.encoding import FrequentValueEncoder
from repro.fvc.system import FvcSystem
from repro.kernels import backend
from repro.kernels.dmc import dmc_stats
from repro.kernels.fvc import fvc_cell_replay
from repro.kernels.hierarchy import hierarchy_replay
from repro.kernels.setassoc import setassoc_stats
from repro.profiling.access import profile_accessed_values
from repro.trace.trace import Trace

pytestmark = pytest.mark.skipif(
    not backend.numpy_available(), reason="vectorized backend needs numpy"
)


def _fvc_oracle(trace, geometry, entries, encoder):
    system = FvcSystem(geometry, entries, encoder)
    system.simulate_batch(trace.records)
    extras = {
        "main_hits": system.main_hits,
        "fvc_hits": system.fvc_hits,
        "fvc_read_hits": system.fvc_read_hits,
        "fvc_write_hits": system.fvc_write_hits,
    }
    return system.stats.as_dict(), extras


class TestBaselineParity:
    @pytest.mark.parametrize(
        "size_kb, line_bytes", [(4, 16), (16, 32), (64, 64)]
    )
    def test_dmc(self, gcc_trace, size_kb, line_bytes):
        geometry = CacheGeometry(size_kb * 1024, line_bytes, ways=1)
        stats = dmc_stats(gcc_trace, geometry)
        assert stats is not None
        oracle = DirectMappedCache(geometry).simulate_batch(gcc_trace.records)
        assert stats.as_dict() == oracle.as_dict()

    @pytest.mark.parametrize("ways", [2, 4])
    def test_setassoc(self, gcc_trace, ways):
        geometry = CacheGeometry(16 * 1024, 32, ways=ways)
        stats = setassoc_stats(gcc_trace, geometry)
        assert stats is not None
        oracle = SetAssociativeCache(geometry).simulate_batch(
            gcc_trace.records
        )
        assert stats.as_dict() == oracle.as_dict()


class TestFvcParity:
    def test_small_geometry(self, gcc_trace):
        geometry = CacheGeometry(4 * 1024, 16, ways=1)
        encoder = encoder_for(gcc_trace, 3)
        replayed = fvc_cell_replay(gcc_trace, geometry, 128, encoder)
        assert replayed is not None
        stats, extras = replayed
        oracle_stats, oracle_extras = _fvc_oracle(
            gcc_trace, geometry, 128, encoder
        )
        assert stats.as_dict() == oracle_stats
        assert extras == oracle_extras

    def test_pending_install_flushed_at_end_of_trace(self, store):
        # Regression: the kernel resolves installs lazily at the
        # victim's next touch, but the oracle installs eagerly — a
        # displacement of a dirty FVC entry near the end of the trace
        # must still be flushed even though the victim is never touched
        # again.  compress/test at this geometry ends with 76 such
        # displacements; before the end-of-group resolve the kernel
        # undercounted writebacks by exactly that many entries.
        trace = store.get("compress", "test")
        geometry = CacheGeometry(16 * 1024, 32, ways=1)
        encoder = encoder_for(trace, 7)
        replayed = fvc_cell_replay(trace, geometry, 512, encoder)
        assert replayed is not None
        stats, extras = replayed
        oracle_stats, oracle_extras = _fvc_oracle(
            trace, geometry, 512, encoder
        )
        assert stats.as_dict() == oracle_stats
        assert extras == oracle_extras


class TestHierarchyParity:
    def test_fresh_system_fast_forward(self, gcc_trace):
        l1 = CacheGeometry(8 * 1024, 32, ways=1)
        l2 = CacheGeometry(64 * 1024, 32, ways=4)
        fast = TwoLevelSystem(l1, l2)
        assert hierarchy_replay(fast, gcc_trace)
        oracle = TwoLevelSystem(l1, l2)
        oracle.simulate(gcc_trace.records)
        assert fast.stats.as_dict() == oracle.stats.as_dict()
        assert fast.l2_stats.as_dict() == oracle.l2_stats.as_dict()

    def test_declines_warm_system(self, gcc_trace):
        system = TwoLevelSystem(
            CacheGeometry(8 * 1024, 32, ways=1),
            CacheGeometry(64 * 1024, 32, ways=4),
        )
        system.simulate(gcc_trace.records[:64])
        assert hierarchy_replay(system, gcc_trace) is False

    def test_declines_setassoc_l1(self, gcc_trace):
        system = TwoLevelSystem(
            CacheGeometry(8 * 1024, 32, ways=2),
            CacheGeometry(64 * 1024, 32, ways=4),
        )
        assert hierarchy_replay(system, gcc_trace) is False


class TestDeclines:
    def test_value_inconsistent_trace(self):
        # A load observing a value other than the word's last store is
        # outside the FVC kernel's envelope (its FVC-hit reasoning
        # depends on value consistency).
        trace = Trace([(1, 0, 5), (0, 0, 7)], workload="syn")
        geometry = CacheGeometry(4096, 16, ways=1)
        encoder = FrequentValueEncoder((0, 1, 2), 2)
        assert fvc_cell_replay(trace, geometry, 64, encoder) is None

    def test_out_of_range_value(self):
        trace = Trace([(0, 0, 2**33)], workload="syn")
        geometry = CacheGeometry(4096, 16, ways=1)
        encoder = FrequentValueEncoder((0, 1, 2), 2)
        assert fvc_cell_replay(trace, geometry, 64, encoder) is None

    def test_non_power_of_two_fvc(self, gcc_trace):
        geometry = CacheGeometry(4096, 16, ways=1)
        encoder = encoder_for(gcc_trace, 3)
        assert fvc_cell_replay(gcc_trace, geometry, 96, encoder) is None


class TestProfileParity:
    def test_ranked_value_counts_match_oracle(self, gcc_trace):
        from repro.kernels.columnar import ranked_value_counts

        total, distinct, ranked = ranked_value_counts(gcc_trace, depth=32)
        oracle = profile_accessed_values(gcc_trace)
        assert total == oracle.total_accesses
        assert distinct == oracle.distinct_values
        assert tuple(ranked) == oracle.ranked
