"""The built-in sweep catalog against the experiment registry.

Every ``fig*``/``table*`` experiment must be expressed as a catalogued
sweep (what SWEEP001 lints statically, asserted here semantically),
cell sweeps must plan exactly what their experiments plan, and wrapper
sweeps must declare exactly the experiment's table columns.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.experiments.registry import EXPERIMENTS, get_experiment
from repro.sweeps.catalog import (
    WRAPPER_FIELDS,
    catalog_report_fields,
    get_sweep,
    sweep_names,
)
from repro.sweeps.expand import expand_cells
from repro.sweeps.spec import SweepSpecError, is_experiment_sweep

GATED = sorted(
    experiment_id
    for experiment_id in EXPERIMENTS
    if experiment_id.startswith(("fig", "table"))
)
CELL_SWEEPS = ("fig10", "fig12", "fig13", "fig14")
GOLDEN_DIR = Path(__file__).parent.parent / "experiments" / "golden"


class TestCoverage:
    def test_every_gated_experiment_is_catalogued(self):
        names = sweep_names()
        for experiment_id in GATED:
            assert experiment_id in names

    def test_report_fields_always_non_empty(self):
        for name, fields in catalog_report_fields().items():
            assert fields, f"sweep {name!r} declares no fields"

    def test_unknown_name_rejected_with_catalog(self):
        with pytest.raises(SweepSpecError, match="l1_size_study"):
            get_sweep("fig99")

    def test_specs_are_normalised_and_json_clean(self):
        for name in sweep_names():
            for fast in (False, True):
                spec = get_sweep(name, fast=fast)
                assert spec["schema"] == "sweep/v1"
                assert spec["name"] == name
                # Canonical specs survive a JSON round trip unchanged.
                assert json.loads(json.dumps(spec)) == spec


class TestCellSweepsMatchExperiments:
    @pytest.mark.parametrize("experiment_id", CELL_SWEEPS)
    @pytest.mark.parametrize("fast", (True, False))
    def test_expansion_equals_experiment_plan(self, experiment_id, fast):
        spec = get_sweep(experiment_id, fast=fast)
        planned = get_experiment(experiment_id).plan_cells(fast=fast)
        assert expand_cells(spec) == planned

    def test_experiment_sweep_backing_accessor(self):
        experiment = get_experiment("fig10")
        assert experiment.sweep_backing(fast=True) == get_sweep(
            "fig10", fast=True
        )


class TestWrapperSweeps:
    def test_wrappers_cover_exactly_the_non_cell_experiments(self):
        assert sorted(WRAPPER_FIELDS) == sorted(
            set(GATED) - set(CELL_SWEEPS)
        )

    @pytest.mark.parametrize("experiment_id", sorted(WRAPPER_FIELDS))
    def test_fields_match_the_golden_table_headers(self, experiment_id):
        golden = json.loads(
            (GOLDEN_DIR / f"{experiment_id}.json").read_text(
                encoding="utf-8"
            )
        )
        assert WRAPPER_FIELDS[experiment_id] == golden["headers"]

    @pytest.mark.parametrize("experiment_id", sorted(WRAPPER_FIELDS))
    def test_wrapper_arm_shape(self, experiment_id):
        for fast in (False, True):
            spec = get_sweep(experiment_id, fast=fast)
            assert is_experiment_sweep(spec)
            arm = spec["arms"][0]
            assert arm["experiment_id"] == experiment_id
            assert arm["fast"] is fast
            assert spec["axes"] == {}
