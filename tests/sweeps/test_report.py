"""Aggregation and rendering over synthetic snapshots.

Snapshots are fabricated with exactly-known counters so every
aggregate (mean, median, ci95, min, max) and the derived
``reduction_percent`` can be asserted arithmetically.
"""

from __future__ import annotations

import math
import statistics

import pytest

from repro.sweeps.expand import expand
from repro.sweeps.report import (
    AGGREGATES,
    REPORT_FIELDS,
    build_report,
    render_csv,
    render_html,
)
from repro.sweeps.spec import AGGREGATE_NAMES, normalise_sweep


def snapshot(misses, accesses=1000, fills=None, writeback_words=0):
    """A baseline-shaped (stats, extras) snapshot with a known rate."""
    stats = {
        "read_hits": accesses - misses,
        "read_misses": misses,
        "write_hits": 0,
        "write_misses": 0,
        "fills": fills if fills is not None else misses,
        "writebacks": 0,
        "fill_words": 8 * misses,
        "writeback_words": writeback_words,
    }
    return (stats, {})


def seeded_spec(inputs, fields, aggregates):
    return normalise_sweep(
        {
            "schema": "sweep/v1",
            "name": "seeded",
            "axes": {
                "workload": ["go"],
                "input": list(inputs),
                "size_bytes": [1024],
            },
            "arms": [
                {
                    "name": "base",
                    "kind": "baseline",
                    "cell": {"line_bytes": 32},
                },
                {
                    "name": "fvc",
                    "kind": "fvc",
                    "cell": {
                        "line_bytes": 32,
                        "fvc_entries": 512,
                        "top_values": 7,
                    },
                },
            ],
            "report": {"fields": list(fields), "aggregates": list(aggregates)},
        }
    )


class TestAggregates:
    def test_catalog_matches_spec_grammar(self):
        assert sorted(AGGREGATES) == sorted(AGGREGATE_NAMES)

    def test_ci95_single_value_degenerates_to_zero(self):
        assert AGGREGATES["ci95"]([42.0]) == 0.0

    def test_ci95_matches_normal_half_width(self):
        values = [1.0, 2.0, 3.0, 4.0]
        expected = 1.96 * statistics.stdev(values) / math.sqrt(4)
        assert AGGREGATES["ci95"](values) == pytest.approx(expected)

    def test_mean_median_min_max(self):
        values = [1.0, 2.0, 9.0]
        assert AGGREGATES["mean"](values) == pytest.approx(4.0)
        assert AGGREGATES["median"](values) == 2.0
        assert AGGREGATES["min"](values) == 1.0
        assert AGGREGATES["max"](values) == 9.0


class TestBuildReport:
    def test_aggregation_across_input_replicates(self):
        spec = seeded_spec(
            ["test", "train", "ref"],
            ["miss_rate_percent"],
            ["mean", "ci95", "min", "max"],
        )
        points = expand(spec)
        # Per replicate: baseline misses 100/200/300 (10%/20%/30%),
        # fvc misses 50/100/150 (5%/10%/15%).
        by_arm = {"base": [100, 200, 300], "fvc": [50, 100, 150]}
        counters = {"base": 0, "fvc": 0}
        snapshots = []
        for point in points:
            misses = by_arm[point.arm][counters[point.arm]]
            counters[point.arm] += 1
            snapshots.append(snapshot(misses))
        headers, rows = build_report(spec, points, snapshots)
        assert headers == [
            "arm",
            "workload",
            "size_bytes",
            "n",
            "miss_rate_percent_mean",
            "miss_rate_percent_ci95",
            "miss_rate_percent_min",
            "miss_rate_percent_max",
        ]
        assert len(rows) == 2  # one per arm; replicates collapsed
        base, fvc = rows
        assert base["arm"] == "base"
        assert base["n"] == 3
        assert base["miss_rate_percent_mean"] == pytest.approx(20.0)
        assert base["miss_rate_percent_min"] == pytest.approx(10.0)
        assert base["miss_rate_percent_max"] == pytest.approx(30.0)
        expected_ci = round(1.96 * statistics.stdev([10, 20, 30]) / math.sqrt(3), 6)
        assert base["miss_rate_percent_ci95"] == pytest.approx(expected_ci)
        assert fvc["miss_rate_percent_mean"] == pytest.approx(10.0)

    def test_single_seed_degenerate_ci95(self):
        spec = seeded_spec(["test"], ["miss_rate_percent"], ["mean", "ci95"])
        points = expand(spec)
        headers, rows = build_report(
            spec, points, [snapshot(100) for _ in points]
        )
        for row in rows:
            assert row["n"] == 1
            assert row["miss_rate_percent_ci95"] == 0.0

    def test_reduction_percent_against_matching_baseline(self):
        spec = seeded_spec(
            ["test"], ["miss_rate_percent", "reduction_percent"], ["mean"]
        )
        points = expand(spec)
        snapshots = [
            snapshot(100) if point.arm == "base" else snapshot(25)
            for point in points
        ]
        _headers, rows = build_report(spec, points, snapshots)
        base, fvc = rows
        # Baselines have no reduction; the column renders empty.
        assert base["reduction_percent_mean"] == ""
        assert fvc["reduction_percent_mean"] == pytest.approx(75.0)

    def test_traffic_words_field(self):
        spec = seeded_spec(["test"], ["traffic_words"], ["mean"])
        points = expand(spec)
        snapshots = [
            snapshot(10, writeback_words=16) for _point in points
        ]
        _headers, rows = build_report(spec, points, snapshots)
        assert rows[0]["traffic_words_mean"] == pytest.approx(96.0)

    def test_classify_extras_fields(self):
        spec = normalise_sweep(
            {
                "schema": "sweep/v1",
                "name": "classes",
                "axes": {"workload": ["go"], "input": ["test"]},
                "arms": [
                    {
                        "name": "classify",
                        "kind": "classify",
                        "cell": {"size_bytes": 1024, "line_bytes": 32},
                    }
                ],
                "report": {
                    "fields": [
                        "miss_rate_percent",
                        "compulsory",
                        "capacity",
                        "conflict",
                    ],
                    "aggregates": ["mean"],
                },
            }
        )
        points = expand(spec)
        extras = {
            "accesses": 1000,
            "compulsory": 10,
            "capacity": 20,
            "conflict": 30,
        }
        _headers, rows = build_report(spec, points, [({}, extras)])
        row = rows[0]
        # miss_rate_percent does not apply to classify cells.
        assert row["miss_rate_percent_mean"] == ""
        assert row["compulsory_mean"] == 10.0
        assert row["capacity_mean"] == 20.0
        assert row["conflict_mean"] == 30.0

    def test_mismatched_snapshots_rejected(self):
        spec = seeded_spec(["test"], ["misses"], ["mean"])
        points = expand(spec)
        with pytest.raises(ValueError, match="snapshots"):
            build_report(spec, points, [])

    def test_every_declared_field_has_an_extractor(self):
        for name, extractor in REPORT_FIELDS.items():
            if name == "reduction_percent":
                assert extractor is None  # derived, not extracted
            else:
                assert callable(extractor)


class TestRendering:
    def _table(self):
        spec = seeded_spec(["test"], ["miss_rate_percent"], ["mean"])
        points = expand(spec)
        return build_report(spec, points, [snapshot(100) for _ in points])

    def test_csv_round_trip(self):
        import csv
        import io

        headers, rows = self._table()
        text = render_csv(headers, rows)
        parsed = list(csv.DictReader(io.StringIO(text)))
        assert len(parsed) == len(rows)
        assert parsed[0]["arm"] == "base"
        assert float(parsed[0]["miss_rate_percent_mean"]) == 10.0

    def test_html_escapes_and_includes_all_rows(self):
        headers, rows = self._table()
        page = render_html("study <&>", headers, rows)
        assert "study &lt;&amp;&gt;" in page
        assert page.count("<tr>") == 1 + len(rows)
