"""Expander determinism: canonical order, declaration-order
independence, cross-process stability."""

from __future__ import annotations

import json
import subprocess
import sys

import pytest

from repro.sweeps.expand import (
    axis_order,
    coord_columns,
    expand,
    expand_cells,
    relevant_axes,
    replicate_axis,
    unique_cells,
)
from repro.sweeps.spec import SweepSpecError, normalise_sweep


def two_arm_spec(axes=None):
    return normalise_sweep(
        {
            "schema": "sweep/v1",
            "name": "study",
            "axes": axes
            or {
                "size_bytes": [1024, 4096],
                "workload": ["go", "li"],
                "input": ["test"],
                "top_values": [7, 3],
            },
            "arms": [
                {
                    "name": "base",
                    "kind": "baseline",
                    "cell": {"line_bytes": 32},
                },
                {
                    "name": "fvc",
                    "kind": "fvc",
                    "cell": {"line_bytes": 32, "fvc_entries": 512},
                },
            ],
            "report": {
                "fields": ["miss_rate_percent"],
                "aggregates": ["mean"],
            },
        }
    )


class TestCanonicalOrder:
    def test_axis_order_is_priority_then_alphabetical(self):
        spec = two_arm_spec()
        assert axis_order(spec["axes"]) == [
            "workload",
            "input",
            "size_bytes",
            "top_values",
        ]

    def test_declaration_order_never_changes_expansion(self):
        forward = two_arm_spec()
        shuffled = two_arm_spec(
            axes={
                "top_values": [7, 3],
                "input": ["test"],
                "workload": ["go", "li"],
                "size_bytes": [1024, 4096],
            }
        )
        assert expand(forward) == expand(shuffled)
        assert expand_cells(forward) == expand_cells(shuffled)

    def test_axis_value_order_is_preserved(self):
        points = expand(two_arm_spec())
        fvc_tops = [
            point.coords["top_values"]
            for point in points
            if point.arm == "fvc"
        ]
        # Declared [7, 3]: never sorted into [3, 7].
        assert fvc_tops[:2] == [7, 3]

    def test_outer_axes_shared_arm_local_innermost(self):
        points = expand(two_arm_spec())
        # top_values binds only the fvc arm, so per outer combination
        # the baseline runs once, then the fvc arm iterates tops.
        assert [point.arm for point in points[:3]] == ["base", "fvc", "fvc"]
        assert points[0].coords.get("top_values") is None
        assert points[0].cell.workload == "go"
        assert points[0].cell.size_bytes == 1024

    def test_indices_are_sequential(self):
        points = expand(two_arm_spec())
        assert [point.index for point in points] == list(range(len(points)))

    def test_expansion_is_stable_across_processes(self):
        script = """
import json
from repro.sweeps.expand import expand
from repro.sweeps.spec import normalise_sweep

spec = json.loads({spec!r})
points = expand(normalise_sweep(spec))
print(json.dumps([
    [p.index, p.arm, p.kind, sorted(p.coords.items()),
     [p.cell.workload, p.cell.input_name, p.cell.kind, p.cell.size_bytes,
      p.cell.line_bytes, p.cell.ways, p.cell.fvc_entries,
      p.cell.top_values]]
    for p in points
]))
"""
        import os
        from pathlib import Path

        import repro

        env = dict(os.environ)
        src_dir = str(Path(repro.__file__).resolve().parent.parent)
        env["PYTHONPATH"] = os.pathsep.join(
            part for part in (src_dir, env.get("PYTHONPATH")) if part
        )
        spec = two_arm_spec()
        rendered = script.format(spec=json.dumps(spec))
        outputs = [
            subprocess.run(
                [sys.executable, "-c", rendered],
                capture_output=True,
                text=True,
                check=True,
                env=env,
            ).stdout
            for _ in range(2)
        ]
        assert outputs[0] == outputs[1]
        local = [
            [
                point.index,
                point.arm,
                point.kind,
                sorted(point.coords.items()),
                [
                    point.cell.workload,
                    point.cell.input_name,
                    point.cell.kind,
                    point.cell.size_bytes,
                    point.cell.line_bytes,
                    point.cell.ways,
                    point.cell.fvc_entries,
                    point.cell.top_values,
                ],
            ]
            for point in expand(spec)
        ]
        assert json.loads(outputs[0]) == json.loads(json.dumps(local))


class TestBindings:
    def test_implicit_axis_binds_matching_field(self):
        points = expand(two_arm_spec())
        for point in points:
            assert point.cell.size_bytes == point.coords["size_bytes"]
            assert point.cell.input_name == "test"

    def test_explicit_cell_entry_overrides_implicit_binding(self):
        spec = normalise_sweep(
            {
                "schema": "sweep/v1",
                "name": "override",
                "axes": {
                    "workload": ["go"],
                    "input": ["test"],
                    "ways": [1, 2, 4],
                },
                "arms": [
                    {"name": "assoc", "kind": "baseline", "cell": {}},
                    {
                        "name": "pinned",
                        "kind": "classify",
                        "cell": {"ways": 1},
                    },
                ],
                "report": {
                    "fields": ["conflict"],
                    "aggregates": ["mean"],
                },
            }
        )
        points = expand(spec)
        pinned = [point for point in points if point.arm == "pinned"]
        # The explicit ways=1 suppresses the axis: one classify point,
        # not three.
        assert len(pinned) == 1
        assert pinned[0].cell.ways == 1
        assert "ways" not in pinned[0].coords
        assert len([point for point in points if point.arm == "assoc"]) == 3

    def test_object_axis_components_resolve(self):
        spec = normalise_sweep(
            {
                "schema": "sweep/v1",
                "name": "coupled",
                "axes": {
                    "workload": ["go"],
                    "input": ["test"],
                    "pair": [
                        {"line_bytes": 8, "small": 4096, "double": 8192},
                        {"line_bytes": 16, "small": 8192, "double": 16384},
                    ],
                },
                "arms": [
                    {
                        "name": "double",
                        "kind": "baseline",
                        "cell": {
                            "size_bytes": "$pair.double",
                            "line_bytes": "$pair.line_bytes",
                        },
                    },
                    {
                        "name": "fvc",
                        "kind": "fvc",
                        "cell": {
                            "size_bytes": "$pair.small",
                            "line_bytes": "$pair.line_bytes",
                            "fvc_entries": 512,
                            "top_values": 7,
                        },
                    },
                ],
                "report": {
                    "fields": ["miss_rate_percent"],
                    "aggregates": ["mean"],
                },
            }
        )
        points = expand(spec)
        assert [
            (point.arm, point.cell.size_bytes, point.cell.line_bytes)
            for point in points
        ] == [
            ("double", 8192, 8),
            ("fvc", 4096, 8),
            ("double", 16384, 16),
            ("fvc", 8192, 16),
        ]

    def test_unused_axis_is_an_error(self):
        with pytest.raises(SweepSpecError, match="bind no arm"):
            expand(
                normalise_sweep(
                    {
                        "schema": "sweep/v1",
                        "name": "dangling",
                        "axes": {
                            "workload": ["go"],
                            "input": ["test"],
                            "phase": [1, 2],
                        },
                        "arms": [
                            {"name": "base", "kind": "baseline", "cell": {}}
                        ],
                        "report": {
                            "fields": ["misses"],
                            "aggregates": ["mean"],
                        },
                    }
                )
            )

    def test_experiment_sweep_has_no_expansion(self):
        spec = normalise_sweep(
            {
                "schema": "sweep/v1",
                "name": "wrapper",
                "axes": {},
                "arms": [
                    {
                        "name": "experiment",
                        "kind": "experiment",
                        "experiment_id": "fig9",
                    }
                ],
                "report": {"fields": ["structure"], "aggregates": ["mean"]},
            }
        )
        with pytest.raises(SweepSpecError, match="no cell expansion"):
            expand(spec)


class TestHelpers:
    def test_unique_cells_first_occurrence_order(self):
        spec = two_arm_spec()
        points = expand(spec)
        distinct = unique_cells(points)
        assert len(distinct) == len(points)  # this grid has no overlap
        assert distinct == [point.cell for point in points]

    def test_relevant_axes_projection(self):
        spec = two_arm_spec()
        base, fvc = spec["arms"]
        assert relevant_axes(spec, base) == [
            "workload",
            "input",
            "size_bytes",
        ]
        assert relevant_axes(spec, fvc) == [
            "workload",
            "input",
            "size_bytes",
            "top_values",
        ]

    def test_replicate_axis_needs_multiple_inputs(self):
        assert replicate_axis(two_arm_spec()) is None
        multi = two_arm_spec(
            axes={
                "workload": ["go"],
                "input": ["test", "train"],
                "size_bytes": [1024],
                "top_values": [7],
            }
        )
        assert replicate_axis(multi) == "input"

    def test_coord_columns_exclude_replicate_axis(self):
        multi = two_arm_spec(
            axes={
                "workload": ["go"],
                "input": ["test", "train"],
                "size_bytes": [1024],
                "top_values": [7],
            }
        )
        assert coord_columns(multi) == [
            ("workload", None),
            ("size_bytes", None),
            ("top_values", None),
        ]
