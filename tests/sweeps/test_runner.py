"""Local sweep execution: payload shape, jobs-identity, wrappers."""

from __future__ import annotations

import pytest

from repro.experiments.render import dumps_canonical
from repro.sweeps.catalog import get_sweep
from repro.sweeps.runner import describe_sweep, run_sweep
from repro.sweeps.spec import normalise_sweep, sweep_id, sweep_result_key


def tiny_spec():
    return normalise_sweep(
        {
            "schema": "sweep/v1",
            "name": "tiny",
            "axes": {
                "workload": ["go", "li"],
                "input": ["test"],
                "size_bytes": [1024, 4096],
            },
            "arms": [
                {
                    "name": "base",
                    "kind": "baseline",
                    "cell": {"line_bytes": 32},
                },
                {
                    "name": "fvc",
                    "kind": "fvc",
                    "cell": {
                        "line_bytes": 32,
                        "fvc_entries": 128,
                        "top_values": 7,
                    },
                },
            ],
            "report": {
                "fields": ["miss_rate_percent", "reduction_percent"],
                "aggregates": ["mean"],
            },
        }
    )


class TestRunSweep:
    def test_payload_shape_and_identity(self, store):
        spec = tiny_spec()
        payload = run_sweep(spec, store=store)
        assert payload["schema"] == "sweep.result/1"
        assert payload["sweep"] == spec
        assert payload["sweep_id"] == sweep_id(spec)
        assert payload["result_key"] == sweep_result_key(spec)
        assert payload["points"] == 8
        assert payload["distinct_cells"] == 8
        assert payload["headers"][0] == "arm"
        assert len(payload["rows"]) == 8  # single input: no collapsing
        # Reductions are computed against the same-coordinate baseline.
        fvc_rows = [row for row in payload["rows"] if row["arm"] == "fvc"]
        assert all(
            isinstance(row["reduction_percent_mean"], float)
            for row in fvc_rows
        )

    def test_jobs_value_never_changes_bytes(self, store):
        spec = tiny_spec()
        sequential = dumps_canonical(run_sweep(spec, store=store, jobs=1))
        fanned = dumps_canonical(run_sweep(spec, store=store, jobs=4))
        assert sequential == fanned

    def test_experiment_wrapper_payload(self, store):
        spec = get_sweep("fig9", fast=True)
        payload = run_sweep(spec, store=store)
        assert payload["schema"] == "sweep.result/1"
        assert payload["experiment_id"] == "fig9"
        assert payload["distinct_cells"] == 0
        assert payload["points"] == 1
        assert payload["headers"] == spec["report"]["fields"]
        assert payload["rows"]
        assert isinstance(payload["notes"], list)


class TestDescribeSweep:
    def test_cell_sweep_description(self):
        description = describe_sweep(tiny_spec())
        assert description["name"] == "tiny"
        assert description["points"] == 8
        assert description["distinct_cells"] == 8
        assert description["axes"] == {
            "input": 1,
            "size_bytes": 2,
            "workload": 2,
        }
        assert description["arms"] == ["base", "fvc"]

    def test_wrapper_description(self):
        description = describe_sweep(get_sweep("table1", fast=True))
        assert description["experiment_id"] == "table1"
        assert description["points"] == 1
        assert description["distinct_cells"] == 0


class TestL1SizeStudy:
    """The ISSUE's acceptance study: a genuinely multi-axis sweep."""

    @pytest.mark.slow
    def test_fast_study_runs_and_reports(self, store):
        payload = run_sweep(get_sweep("l1_size_study", fast=True), store=store)
        assert payload["points"] == 12
        assert payload["distinct_cells"] == 12
        headers = payload["headers"]
        for column in (
            "workload",
            "size_bytes",
            "top_values",
            "miss_rate_percent_mean",
            "reduction_percent_mean",
            "traffic_words_mean",
        ):
            assert column in headers
        # Larger caches must not miss more on the same workload/arm.
        rates = {
            (row["arm"], row["workload"], row["size_bytes"]): row[
                "miss_rate_percent_mean"
            ]
            for row in payload["rows"]
            if row["arm"] == "base"
        }
        for workload in ("m88ksim", "perl"):
            small = rates[("base", workload, 4096)]
            large = rates[("base", workload, 16384)]
            assert large <= small
