"""The ``sweep/v1`` grammar: validation, canonicalisation, identity."""

from __future__ import annotations

import pytest

from repro.common.errors import ConfigurationError
from repro.sweeps.spec import (
    SweepSpecError,
    load_sweep_file,
    normalise_sweep,
    sweep_id,
    sweep_result_key,
)


def minimal_spec(**overrides):
    spec = {
        "schema": "sweep/v1",
        "name": "study",
        "axes": {"workload": ["go", "gcc"], "input": ["test"]},
        "arms": [
            {
                "name": "base",
                "kind": "baseline",
                "cell": {"size_bytes": 16384, "line_bytes": 32},
            }
        ],
        "report": {"fields": ["miss_rate_percent"], "aggregates": ["mean"]},
    }
    spec.update(overrides)
    return spec


def rejects(spec, match):
    with pytest.raises(SweepSpecError, match=match) as err:
        normalise_sweep(spec)
    # Every validation error names the contract the caller violated.
    assert "sweep/v1" in str(err.value)
    return err.value


class TestValidation:
    def test_minimal_spec_normalises(self):
        spec = normalise_sweep(minimal_spec())
        assert spec["schema"] == "sweep/v1"
        assert spec["report"]["aggregates"] == ["mean"]

    def test_error_is_a_configuration_error(self):
        assert issubclass(SweepSpecError, ConfigurationError)

    def test_not_a_dict(self):
        rejects([], "JSON object")

    def test_wrong_schema(self):
        rejects(minimal_spec(schema="sweep/v2"), "schema must be")

    def test_unknown_top_level_key(self):
        rejects(minimal_spec(extra=1), "unknown top-level keys")

    def test_bad_name(self):
        rejects(minimal_spec(name=""), "name must be")
        rejects(minimal_spec(name="no spaces"), "name must be")

    def test_empty_axis(self):
        rejects(
            minimal_spec(axes={"workload": []}), "non-empty list of values"
        )

    def test_mixed_axis_values(self):
        rejects(
            minimal_spec(axes={"workload": ["go", {"a": 1}]}),
            "mixes scalar and object",
        )

    def test_object_axis_component_mismatch(self):
        rejects(
            minimal_spec(
                axes={"pair": [{"a": 1, "b": 2}, {"a": 1}]},
            ),
            "share one component set",
        )

    def test_empty_arms(self):
        rejects(minimal_spec(arms=[]), "non-empty list")

    def test_unknown_arm_kind(self):
        rejects(
            minimal_spec(arms=[{"name": "x", "kind": "mystery"}]),
            "kind must be one of",
        )

    def test_duplicate_arm_names(self):
        arm = {"name": "base", "kind": "baseline", "cell": {}}
        rejects(minimal_spec(arms=[arm, dict(arm)]), "unique")

    def test_unknown_cell_field(self):
        rejects(
            minimal_spec(
                arms=[
                    {
                        "name": "base",
                        "kind": "baseline",
                        "cell": {"associativity": 2},
                    }
                ]
            ),
            "unknown cell field",
        )

    def test_reference_to_unknown_axis(self):
        rejects(
            minimal_spec(
                arms=[
                    {
                        "name": "base",
                        "kind": "baseline",
                        "cell": {"size_bytes": "$nope"},
                    }
                ]
            ),
            "unknown axis",
        )

    def test_scalar_axis_component_reference(self):
        rejects(
            minimal_spec(
                arms=[
                    {
                        "name": "base",
                        "kind": "baseline",
                        "cell": {"size_bytes": "$workload.small"},
                    }
                ]
            ),
            "scalar axis",
        )

    def test_object_axis_needs_component(self):
        rejects(
            minimal_spec(
                axes={"workload": ["go"], "geo": [{"size_bytes": 1024}]},
                arms=[
                    {
                        "name": "base",
                        "kind": "baseline",
                        "cell": {
                            "size_bytes": "$geo",
                            "input_name": "test",
                        },
                    }
                ],
            ),
            "must pick a component",
        )

    def test_unknown_report_field_on_cell_sweep(self):
        rejects(
            minimal_spec(
                report={"fields": ["warp_factor"], "aggregates": ["mean"]}
            ),
            "unknown report fields",
        )

    def test_unknown_aggregate(self):
        rejects(
            minimal_spec(
                report={
                    "fields": ["miss_rate_percent"],
                    "aggregates": ["mode"],
                }
            ),
            "aggregates",
        )

    def test_experiment_sweep_single_arm_only(self):
        rejects(
            minimal_spec(
                axes={},
                arms=[
                    {
                        "name": "a",
                        "kind": "experiment",
                        "experiment_id": "fig9",
                    },
                    {
                        "name": "b",
                        "kind": "experiment",
                        "experiment_id": "fig9",
                    },
                ],
            ),
            "exactly one experiment arm",
        )

    def test_cell_sweep_needs_an_axis(self):
        rejects(minimal_spec(axes={}), "at least one axis")

    def test_experiment_arm_free_form_fields(self):
        # Wrapper sweeps report the experiment's own table columns,
        # which are not engine cell fields.
        spec = normalise_sweep(
            minimal_spec(
                axes={},
                arms=[
                    {
                        "name": "experiment",
                        "kind": "experiment",
                        "experiment_id": "fig9",
                        "fast": True,
                    }
                ],
                report={
                    "fields": ["structure", "access_ns"],
                    "aggregates": ["mean"],
                },
            )
        )
        assert spec["arms"][0]["fast"] is True


class TestIdentity:
    def test_normalisation_is_idempotent(self):
        once = normalise_sweep(minimal_spec())
        assert normalise_sweep(once) == once

    def test_sweep_id_independent_of_key_order(self):
        forward = minimal_spec()
        backward = {key: forward[key] for key in reversed(list(forward))}
        backward["axes"] = {
            key: forward["axes"][key]
            for key in reversed(list(forward["axes"]))
        }
        assert sweep_id(normalise_sweep(forward)) == sweep_id(
            normalise_sweep(backward)
        )

    def test_axis_value_order_is_semantic(self):
        one = normalise_sweep(minimal_spec())
        other = normalise_sweep(
            minimal_spec(axes={"workload": ["gcc", "go"], "input": ["test"]})
        )
        assert sweep_id(one) != sweep_id(other)

    def test_result_key_differs_from_sweep_id(self):
        spec = normalise_sweep(minimal_spec())
        assert sweep_result_key(spec) != sweep_id(spec)
        assert len(sweep_result_key(spec)) == 24
        assert len(sweep_id(spec)) == 24


class TestLoadFile:
    def test_round_trip(self, tmp_path):
        import json

        path = tmp_path / "study.json"
        path.write_text(json.dumps(minimal_spec()), encoding="utf-8")
        assert load_sweep_file(path) == normalise_sweep(minimal_spec())

    def test_missing_file_names_contract(self, tmp_path):
        with pytest.raises(SweepSpecError, match="sweep/v1"):
            load_sweep_file(tmp_path / "absent.json")

    def test_invalid_json_names_contract(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(SweepSpecError, match="not valid JSON"):
            load_sweep_file(path)
