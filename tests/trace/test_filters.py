"""Tests for trace filtering utilities."""

import pytest

from repro.trace.filters import (
    filter_address_range,
    filter_loads,
    filter_stores,
    sample_every,
    split_windows,
)
from repro.trace.trace import Trace


@pytest.fixture
def trace():
    return Trace(
        [(0, 0x10, 1), (1, 0x20, 2), (0, 0x30, 3), (1, 0x40, 4)],
        workload="demo",
    )


class TestFilters:
    def test_filter_loads(self, trace):
        loads = filter_loads(trace)
        assert all(op == 0 for op, _, _ in loads.records)
        assert len(loads) == 2
        assert loads.workload == "demo"

    def test_filter_stores(self, trace):
        assert len(filter_stores(trace)) == 2

    def test_filter_address_range(self, trace):
        ranged = filter_address_range(trace, 0x20, 0x40)
        assert [addr for _, addr, _ in ranged.records] == [0x20, 0x30]

    def test_bad_range_rejected(self, trace):
        with pytest.raises(ValueError):
            filter_address_range(trace, 0x40, 0x20)

    def test_sample_every(self, trace):
        assert len(sample_every(trace, 2)) == 2
        with pytest.raises(ValueError):
            sample_every(trace, 0)

    def test_split_windows(self, trace):
        windows = list(split_windows(trace, 3))
        assert [len(w) for w in windows] == [3, 1]
        assert windows[0].records == trace.records[:3]
        with pytest.raises(ValueError):
            list(split_windows(trace, 0))
