"""Tests for trace summary statistics."""

from repro.trace.stats import compute_stats
from repro.trace.trace import Trace


def _trace() -> Trace:
    # value 7 accessed 3 times, value 1 twice, value 9 once.
    return Trace(
        [
            (0, 0x10, 7),
            (1, 0x14, 7),
            (0, 0x18, 7),
            (0, 0x10, 1),
            (1, 0x20, 1),
            (0, 0x24, 9),
        ]
    )


class TestComputeStats:
    def test_counts(self):
        stats = compute_stats(_trace())
        assert stats.accesses == 6
        assert stats.loads == 4
        assert stats.stores == 2
        assert stats.footprint_words == 5
        assert stats.footprint_bytes == 20
        assert stats.distinct_values == 3

    def test_top_values_ranked(self):
        stats = compute_stats(_trace())
        assert stats.top_values[0] == (7, 3)
        assert stats.top_values[1] == (1, 2)

    def test_coverage(self):
        stats = compute_stats(_trace())
        assert stats.top_value_access_fraction(1) == 3 / 6
        assert stats.top_value_access_fraction(2) == 5 / 6

    def test_load_fraction(self):
        assert compute_stats(_trace()).load_fraction == 4 / 6

    def test_empty_trace(self):
        stats = compute_stats(Trace())
        assert stats.accesses == 0
        assert stats.top_value_access_fraction(5) == 0.0
        assert stats.load_fraction == 0.0

    def test_format_is_readable(self):
        text = compute_stats(_trace()).format()
        assert "accesses" in text
        assert "top accessed values" in text
