"""Tests for the compact (version 2) trace format."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import TraceFormatError
from repro.trace.io import (
    read_trace,
    read_trace_any,
    read_trace_header,
    write_trace,
    write_trace_compact,
)
from repro.trace.trace import Trace

_records = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=1),
        st.integers(min_value=0, max_value=0xFFFFFFFC).map(lambda a: a & ~3),
        st.integers(min_value=0, max_value=0xFFFFFFFF),
    ),
    max_size=300,
)


class TestCompactRoundtrip:
    def test_simple_roundtrip(self, tmp_path):
        trace = Trace(
            [(0, 16, 1), (1, 0xFFFFFFF0, 0xFFFFFFFF), (0, 16, 7)],
            workload="gcc",
            input_name="ref",
            instruction_count=42,
        )
        path = tmp_path / "t.trc2"
        write_trace_compact(trace, path)
        loaded = read_trace_any(path)
        assert loaded == trace
        assert loaded.workload == "gcc"
        assert loaded.instruction_count == 42

    @settings(max_examples=25, deadline=None)
    @given(records=_records)
    def test_roundtrip_property(self, tmp_path_factory, records):
        trace = Trace(records, workload="p")
        path = tmp_path_factory.mktemp("traces") / "t.trc2"
        write_trace_compact(trace, path)
        assert read_trace_any(path).records == records

    def test_read_any_dispatches_on_version(self, tmp_path):
        trace = Trace([(0, 16, 1)] * 10, workload="w")
        v1 = tmp_path / "v1.trc"
        v2 = tmp_path / "v2.trc"
        write_trace(trace, v1)
        write_trace_compact(trace, v2)
        assert read_trace_any(v1) == read_trace_any(v2) == trace

    def test_gzip_compact(self, tmp_path):
        trace = Trace([(0, 16, 1)] * 50)
        path = tmp_path / "t.trc2.gz"
        write_trace_compact(trace, path)
        assert read_trace_any(path) == trace


class TestCompactness:
    def test_smaller_than_v1_on_sequential_trace(self, tmp_path):
        # Sequential scan of small values: the sweet spot for deltas.
        trace = Trace(
            [(0, 0x1000 + index * 4, index % 8) for index in range(5000)]
        )
        v1 = tmp_path / "v1.trc"
        v2 = tmp_path / "v2.trc"
        write_trace(trace, v1)
        write_trace_compact(trace, v2)
        assert v2.stat().st_size * 2 < v1.stat().st_size

    def test_real_workload_trace_shrinks(self, tmp_path, store):
        trace = store.get("go", "test")
        v1 = tmp_path / "v1.trc"
        v2 = tmp_path / "v2.trc"
        write_trace(trace, v1)
        write_trace_compact(trace, v2)
        assert v2.stat().st_size < v1.stat().st_size


class TestStreamingWriter:
    def test_multi_chunk_stream_matches_in_memory(self, tmp_path, monkeypatch):
        # Stand-in for a multi-million-record trace: shrink the chunk
        # size so a small synthetic trace crosses many chunk
        # boundaries, then check the streamed file equals the in-memory
        # serialisation byte for byte.
        from repro.trace import io as trace_io

        monkeypatch.setattr(trace_io, "_CHUNK_BYTES", 64)
        trace = Trace(
            [
                (index & 1, (0x1000 + index * 4) & 0xFFFFFFFC, index % 97)
                for index in range(5000)
            ],
            workload="syn",
            input_name="test",
        )
        chunks = list(trace_io._compact_chunks(trace))
        assert len(chunks) > 10  # header chunk + many record chunks
        assert max(len(chunk) for chunk in chunks[1:]) < 64 + 16
        path = tmp_path / "t.trc2"
        write_trace_compact(trace, path)
        streamed = path.read_bytes()
        assert streamed == b"".join(chunks)
        assert streamed == trace_io.trace_to_compact_bytes(trace)
        assert read_trace_any(path) == trace

    def test_chunk_boundary_roundtrip(self, tmp_path):
        # Real chunk threshold: a trace big enough that the record
        # buffer flushes mid-stream at the production chunk size.
        from repro.trace.io import _CHUNK_RECORDS

        count = _CHUNK_RECORDS + _CHUNK_RECORDS // 2
        trace = Trace(
            [
                (0, (index * 4) & 0xFFFFFFFC, index & 0xFFFF)
                for index in range(count)
            ],
            workload="big",
        )
        path = tmp_path / "big.trc2"
        write_trace_compact(trace, path)
        loaded = read_trace_any(path)
        assert len(loaded) == count
        assert loaded == trace


class TestCompactErrors:
    def test_truncated_payload(self, tmp_path):
        trace = Trace([(0, 16, 1)] * 20)
        path = tmp_path / "t.trc2"
        write_trace_compact(trace, path)
        data = path.read_bytes()
        path.write_bytes(data[:-4])
        with pytest.raises(TraceFormatError):
            read_trace_any(path)

    def test_truncated_gzip_roundtrip(self, tmp_path):
        trace = Trace([(0, 16, 1)] * 200)
        path = tmp_path / "t.trc2.gz"
        write_trace_compact(trace, path)
        truncated = tmp_path / "cut.trc2.gz"
        truncated.write_bytes(path.read_bytes()[:-10])
        with pytest.raises((TraceFormatError, EOFError)):
            read_trace_any(truncated)

    def test_bad_magic(self, tmp_path):
        path = tmp_path / "t.trc2"
        path.write_bytes(b"NOPE" + b"\x00" * 40)
        with pytest.raises(TraceFormatError):
            read_trace_any(path)

    def test_v1_reader_rejects_v2(self, tmp_path):
        trace = Trace([(0, 16, 1)])
        path = tmp_path / "t.trc2"
        write_trace_compact(trace, path)
        with pytest.raises(TraceFormatError):
            read_trace(path)


class TestHeader:
    def test_header_of_both_versions(self, tmp_path):
        trace = Trace(
            [(0, 16, 1)] * 9,
            workload="gcc",
            input_name="ref",
            instruction_count=77,
        )
        v1 = tmp_path / "t.trc"
        v2 = tmp_path / "t.trc2.gz"
        write_trace(trace, v1)
        write_trace_compact(trace, v2)
        assert read_trace_header(v1) == (1, "gcc", "ref", 9, 77)
        assert read_trace_header(v2) == (2, "gcc", "ref", 9, 77)

    def test_header_errors(self, tmp_path):
        short = tmp_path / "short.trc"
        short.write_bytes(b"FVTR\x01\x00")
        with pytest.raises(TraceFormatError):
            read_trace_header(short)
        bad = tmp_path / "bad.trc"
        bad.write_bytes(b"XXXX" + b"\x00" * 40)
        with pytest.raises(TraceFormatError):
            read_trace_header(bad)

    def test_header_truncated_metadata(self, tmp_path):
        trace = Trace([(0, 16, 1)], workload="a-long-workload-name")
        path = tmp_path / "t.trc"
        write_trace(trace, path)
        cut = tmp_path / "cut.trc"
        cut.write_bytes(path.read_bytes()[:30])  # header ok, names cut
        with pytest.raises(TraceFormatError):
            read_trace_header(cut)
