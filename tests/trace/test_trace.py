"""Tests for the Trace container."""

from repro.trace.record import Access
from repro.trace.trace import Trace


def _sample() -> Trace:
    return Trace(
        [(0, 0x10, 1), (1, 0x20, 2), (0, 0x10, 1)],
        workload="demo",
        input_name="test",
    )


class TestContainer:
    def test_len_iter_getitem(self):
        trace = _sample()
        assert len(trace) == 3
        assert list(trace)[0] == (0, 0x10, 1)
        assert trace[1] == (1, 0x20, 2)

    def test_slice_returns_trace_with_metadata(self):
        trace = _sample()[0:2]
        assert isinstance(trace, Trace)
        assert len(trace) == 2
        assert trace.workload == "demo"

    def test_equality_on_records(self):
        assert _sample() == _sample()
        assert _sample() != Trace([(0, 0, 0)])

    def test_repr_mentions_source(self):
        assert "demo" in repr(_sample())


class TestBuilders:
    def test_append_and_extend(self):
        trace = Trace()
        trace.append(0, 4, 9)
        trace.extend([(1, 8, 10)])
        assert trace.records == [(0, 4, 9), (1, 8, 10)]

    def test_instruction_count_defaults_to_length(self):
        assert _sample().instruction_count == 3
        assert Trace([(0, 0, 0)], instruction_count=50).instruction_count == 50


class TestAggregates:
    def test_load_store_counts(self):
        trace = _sample()
        assert trace.load_count == 2
        assert trace.store_count == 1

    def test_footprint_and_distinct_values(self):
        trace = _sample()
        assert trace.footprint_words() == 2
        assert trace.distinct_values() == 2

    def test_accesses_named_view(self):
        first = next(_sample().accesses())
        assert isinstance(first, Access)
        assert first.is_load and not first.is_store
        assert first == (0, 0x10, 1)


class TestAggregateMemoisation:
    def test_aggregates_computed_once(self):
        trace = _sample()
        assert trace.load_count == 2
        # Mutate records behind the memo's back: the stale value must
        # keep being served until an invalidating call happens.
        trace.records.append((0, 0x40, 5))
        assert trace.load_count == 2
        trace.invalidate_aggregates()
        assert trace.load_count == 3

    def test_append_invalidates(self):
        trace = _sample()
        assert trace.store_count == 1
        trace.append(1, 0x40, 5)
        assert trace.store_count == 2

    def test_extend_invalidates(self):
        trace = _sample()
        assert trace.footprint_words() == 2
        assert trace.distinct_values() == 2
        trace.extend([(0, 0x40, 9), (1, 0x50, 9)])
        assert trace.footprint_words() == 4
        assert trace.distinct_values() == 3

    def test_memo_runs_compute_once(self):
        trace = _sample()
        calls = []

        def compute(t):
            calls.append(t)
            return len(t)

        assert trace.memo("len", compute) == 3
        assert trace.memo("len", compute) == 3
        assert calls == [trace]

    def test_memo_dropped_on_mutation(self):
        trace = _sample()
        assert trace.memo("len", len) == 3
        trace.append(0, 0x40, 5)
        assert trace.memo("len", len) == 4
