"""Tests for the synthetic trace generators."""

import pytest

from repro.cache.classify import classify_misses
from repro.cache.direct import DirectMappedCache
from repro.cache.geometry import CacheGeometry
from repro.mem.memory import STORE
from repro.trace.synth import (
    cyclic_trace,
    ping_pong_trace,
    streaming_trace,
    uniform_trace,
    zipf_value_trace,
)

GEOMETRY = CacheGeometry(16 * 1024, 32)


def _replayable(trace) -> bool:
    state = {}
    for op, address, value in trace.records:
        if op == STORE:
            state[address] = value
        elif state.get(address, 0) != value:
            return False
    return True


class TestGeneratorContracts:
    @pytest.mark.parametrize(
        "trace",
        [
            uniform_trace(2000, seed=1),
            zipf_value_trace(2000, seed=2),
            ping_pong_trace(100),
            streaming_trace(500),
            cyclic_trace(200, passes=3),
        ],
        ids=["uniform", "zipf", "ping-pong", "streaming", "cyclic"],
    )
    def test_replayable(self, trace):
        assert _replayable(trace)

    def test_deterministic_in_seed(self):
        assert uniform_trace(500, seed=7) == uniform_trace(500, seed=7)
        assert uniform_trace(500, seed=7) != uniform_trace(500, seed=8)


class TestBehaviouralShapes:
    def test_ping_pong_is_pure_conflict(self):
        trace = ping_pong_trace(200, geometry_size_bytes=16 * 1024)
        result = classify_misses(trace.records, GEOMETRY)
        assert result.conflict > 0.9 * (result.misses - result.compulsory)

    def test_streaming_is_pure_compulsory(self):
        trace = streaming_trace(4000)
        result = classify_misses(trace.records, GEOMETRY)
        assert result.capacity == 0
        assert result.conflict == 0

    def test_cyclic_beyond_cache_is_capacity(self):
        # 8192 words = 32 KB cycled through a 16 KB cache.
        trace = cyclic_trace(8192, passes=3)
        result = classify_misses(trace.records, GEOMETRY)
        assert result.capacity > result.conflict

    def test_cyclic_within_cache_hits(self):
        trace = cyclic_trace(512, passes=4)  # 2 KB fits easily
        stats = DirectMappedCache(GEOMETRY).simulate(trace.records)
        assert stats.miss_rate < 0.05

    def test_zipf_controls_value_locality(self):
        from repro.profiling.access import profile_accessed_values

        high = zipf_value_trace(4000, frequent_fraction=0.9, seed=3)
        low = zipf_value_trace(4000, frequent_fraction=0.05, seed=3)
        assert (
            profile_accessed_values(high).coverage(3)
            > profile_accessed_values(low).coverage(3)
        )
