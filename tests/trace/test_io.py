"""Tests for the binary trace format."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import TraceFormatError
from repro.trace.io import read_trace, write_trace
from repro.trace.trace import Trace

_records = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=1),
        st.integers(min_value=0, max_value=0xFFFFFFFC).map(lambda a: a & ~3),
        st.integers(min_value=0, max_value=0xFFFFFFFF),
    ),
    max_size=300,
)


class TestRoundtrip:
    def test_simple_roundtrip(self, tmp_path):
        trace = Trace(
            [(0, 16, 1), (1, 32, 0xFFFFFFFF)],
            workload="gcc",
            input_name="ref",
            instruction_count=99,
        )
        path = tmp_path / "t.trc"
        write_trace(trace, path)
        loaded = read_trace(path)
        assert loaded == trace
        assert loaded.workload == "gcc"
        assert loaded.input_name == "ref"
        assert loaded.instruction_count == 99

    def test_gzip_roundtrip(self, tmp_path):
        trace = Trace([(0, 16, 1)] * 100, workload="w")
        path = tmp_path / "t.trc.gz"
        write_trace(trace, path)
        assert read_trace(path) == trace

    def test_empty_trace(self, tmp_path):
        path = tmp_path / "empty.trc"
        write_trace(Trace(), path)
        assert len(read_trace(path)) == 0

    @settings(max_examples=25, deadline=None)
    @given(records=_records)
    def test_roundtrip_property(self, tmp_path_factory, records):
        trace = Trace(records, workload="p", input_name="q")
        path = tmp_path_factory.mktemp("traces") / "t.trc"
        write_trace(trace, path)
        assert read_trace(path).records == records


class TestErrorHandling:
    def test_bad_magic(self, tmp_path):
        path = tmp_path / "bad.trc"
        path.write_bytes(b"NOPE" + b"\x00" * 32)
        with pytest.raises(TraceFormatError):
            read_trace(path)

    def test_truncated_header(self, tmp_path):
        path = tmp_path / "short.trc"
        path.write_bytes(b"FVTR")
        with pytest.raises(TraceFormatError):
            read_trace(path)

    def test_truncated_payload(self, tmp_path):
        trace = Trace([(0, 16, 1)] * 10)
        path = tmp_path / "trunc.trc"
        write_trace(trace, path)
        data = path.read_bytes()
        path.write_bytes(data[:-5])
        with pytest.raises(TraceFormatError):
            read_trace(path)
