"""Tests for the columnar (version 3) binary trace format."""

from __future__ import annotations

import struct
import zlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import TraceFormatError
from repro.trace.io import (
    _COLUMNAR_HEADER,
    columnar_layout,
    read_trace_any,
    read_trace_columnar,
    read_trace_header,
    trace_from_bytes,
    trace_to_columnar_bytes,
    write_trace,
    write_trace_columnar,
    write_trace_compact,
)
from repro.trace.trace import Trace

_records = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=1),
        st.integers(min_value=0, max_value=0xFFFFFFFC).map(lambda a: a & ~3),
        st.integers(min_value=0, max_value=0xFFFFFFFF),
    ),
    max_size=300,
)


def _sample_trace() -> Trace:
    return Trace(
        [(0, 16, 1), (1, 0xFFFFFFF0, 0xFFFFFFFF), (0, 16, 7), (1, 32, 0)],
        workload="gcc",
        input_name="ref",
        instruction_count=42,
    )


class TestColumnarRoundtrip:
    def test_simple_roundtrip(self, tmp_path):
        trace = _sample_trace()
        path = tmp_path / "t.trcb"
        write_trace_columnar(trace, path)
        loaded = read_trace_columnar(path)
        assert loaded == trace
        assert loaded.workload == "gcc"
        assert loaded.input_name == "ref"
        assert loaded.instruction_count == 42

    def test_empty_trace(self, tmp_path):
        trace = Trace([], workload="w")
        path = tmp_path / "t.trcb"
        write_trace_columnar(trace, path)
        assert read_trace_any(path) == trace

    @settings(max_examples=25, deadline=None)
    @given(records=_records)
    def test_roundtrip_property(self, tmp_path_factory, records):
        trace = Trace(records, workload="p")
        path = tmp_path_factory.mktemp("traces") / "t.trcb"
        write_trace_columnar(trace, path)
        assert read_trace_any(path).records == records

    def test_read_any_dispatches_across_all_three_formats(self, tmp_path):
        trace = _sample_trace()
        v1 = tmp_path / "v1.trc"
        v2 = tmp_path / "v2.trc2"
        v3 = tmp_path / "v3.trcb"
        write_trace(trace, v1)
        write_trace_compact(trace, v2)
        write_trace_columnar(trace, v3)
        assert (
            read_trace_any(v1)
            == read_trace_any(v2)
            == read_trace_any(v3)
            == trace
        )

    def test_header_of_columnar_file(self, tmp_path):
        trace = _sample_trace()
        path = tmp_path / "t.trcb"
        write_trace_columnar(trace, path)
        assert read_trace_header(path) == (3, "gcc", "ref", 4, 42)


class TestColumnarLayout:
    def test_sections_are_eight_aligned(self):
        for count in (0, 1, 7, 8, 9, 65536):
            ops, addrs, values, total = columnar_layout(count, 3, 4)
            assert ops % 8 == addrs % 8 == values % 8 == 0
            assert addrs >= ops + count
            assert values >= addrs + 4 * count
            assert total == values + 4 * count

    def test_layout_matches_real_bytes(self):
        trace = _sample_trace()
        data = trace_to_columnar_bytes(trace)
        _, _, _, total = columnar_layout(
            len(trace.records), len(b"gcc"), len(b"ref")
        )
        assert len(data) == total


class TestColumnarErrors:
    def test_truncated_header(self, tmp_path):
        path = tmp_path / "t.trcb"
        path.write_bytes(b"FVTC\x03\x00")
        with pytest.raises(TraceFormatError):
            read_trace_any(path)

    def test_truncated_column(self, tmp_path):
        trace = _sample_trace()
        path = tmp_path / "t.trcb"
        write_trace_columnar(trace, path)
        path.write_bytes(path.read_bytes()[:-4])
        with pytest.raises(TraceFormatError):
            read_trace_any(path)

    def test_corrupt_column_is_named_by_its_checksum(self):
        data = bytearray(trace_to_columnar_bytes(_sample_trace()))
        data[-1] ^= 0xFF  # last byte of the value column
        with pytest.raises(TraceFormatError, match="value"):
            trace_from_bytes(bytes(data))

    def test_unknown_version_rejected(self):
        data = bytearray(trace_to_columnar_bytes(_sample_trace()))
        struct.pack_into("<H", data, 4, 99)
        with pytest.raises(TraceFormatError, match="version"):
            trace_from_bytes(bytes(data))

    def test_bad_magic(self, tmp_path):
        path = tmp_path / "t.trcb"
        path.write_bytes(b"NOPE" + b"\x00" * 60)
        with pytest.raises(TraceFormatError):
            read_trace_any(path)

    def test_out_of_domain_record_rejected_at_write(self):
        trace = Trace([(0, 2**33, 1)], workload="syn")
        with pytest.raises(TraceFormatError):
            trace_to_columnar_bytes(trace)


class TestBackendByteIdentity:
    def test_fallback_writer_emits_identical_bytes(self, monkeypatch):
        # The stdlib array/struct fallback and the numpy fast path must
        # produce the same file, byte for byte.
        pytest.importorskip("numpy")
        import sys

        trace = _sample_trace()
        with_numpy = trace_to_columnar_bytes(trace)
        monkeypatch.setitem(sys.modules, "numpy", None)
        without_numpy = trace_to_columnar_bytes(trace)
        assert with_numpy == without_numpy

    def test_fallback_reader_round_trips(self, monkeypatch):
        import sys

        trace = _sample_trace()
        data = trace_to_columnar_bytes(trace)
        monkeypatch.setitem(sys.modules, "numpy", None)
        assert trace_from_bytes(data) == trace


class TestCompression:
    def test_columnar_compresses_no_worse_than_rows(self):
        trace = Trace(
            [(index & 1, 0x1000 + (index % 512) * 4, index % 8)
             for index in range(20000)],
            workload="syn",
        )
        from repro.trace.io import trace_to_compact_bytes

        columnar = zlib.compress(trace_to_columnar_bytes(trace), 6)
        # The envelope the trace cache persists: columnar entries stay
        # in the same size class as the delta-coded compact format.
        assert len(columnar) < len(trace.records) * 9
        assert _COLUMNAR_HEADER.size == 40
        assert trace_to_compact_bytes(trace)  # both formats available
