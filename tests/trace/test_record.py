"""Tests for the Access record view."""

from repro.trace.record import LOAD, STORE, Access


class TestAccess:
    def test_named_view_equals_raw_tuple(self):
        raw = (LOAD, 0x100, 42)
        access = Access(*raw)
        assert access == raw
        assert access.address == 0x100
        assert access.value == 42

    def test_kind_predicates(self):
        assert Access(LOAD, 0, 0).is_load
        assert not Access(LOAD, 0, 0).is_store
        assert Access(STORE, 0, 0).is_store

    def test_str_rendering(self):
        assert str(Access(LOAD, 0x10, 0xFF)) == "LD 0x00000010 = 0x000000ff"
        assert str(Access(STORE, 0x10, 1)).startswith("ST")

    def test_opcodes_are_stable(self):
        # The binary trace format depends on these exact values.
        assert LOAD == 0
        assert STORE == 1
