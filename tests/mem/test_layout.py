"""Tests for the address-space layout validation."""

import pytest

from repro.common.errors import ConfigurationError
from repro.mem.layout import DEFAULT_LAYOUT, AddressSpaceLayout


class TestDefaultLayout:
    def test_segments_ordered(self):
        assert (
            DEFAULT_LAYOUT.static_base
            < DEFAULT_LAYOUT.heap_base
            < DEFAULT_LAYOUT.stack_top
        )

    def test_paper_style_addresses(self):
        # Heap around 0x40000000, as the pointer values of Table 1 show.
        assert DEFAULT_LAYOUT.heap_base == 0x40000000
        assert DEFAULT_LAYOUT.static_base == 0x08048000


class TestValidation:
    def test_misaligned_base_rejected(self):
        with pytest.raises(ConfigurationError):
            AddressSpaceLayout(static_base=0x1002)

    def test_out_of_range_rejected(self):
        with pytest.raises(ConfigurationError):
            AddressSpaceLayout(stack_top=2**33)

    def test_misordered_rejected(self):
        with pytest.raises(ConfigurationError):
            AddressSpaceLayout(
                static_base=0x50000000, heap_base=0x40000000
            )
