"""Tests for the word-addressable memory (tracing, liveness, sampling)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.errors import MemoryError_
from repro.mem.memory import LOAD, STORE, WordMemory


class TestLoadStore:
    def test_unbacked_reads_zero(self):
        memory = WordMemory()
        assert memory.load(0x1000) == 0

    def test_store_then_load(self):
        memory = WordMemory()
        memory.store(0x1000, 0xDEADBEEF)
        assert memory.load(0x1000) == 0xDEADBEEF

    def test_store_wraps_to_32_bits(self):
        memory = WordMemory()
        memory.store(0x1000, 2**32 + 7)
        assert memory.load(0x1000) == 7

    def test_misaligned_access_rejected(self):
        memory = WordMemory()
        with pytest.raises(MemoryError_):
            memory.load(0x1001)
        with pytest.raises(MemoryError_):
            memory.store(0x1002, 1)

    def test_access_count(self):
        memory = WordMemory()
        memory.store(0, 1)
        memory.load(0)
        memory.load(4)
        assert memory.access_count == 3


class TestTracing:
    def test_records_are_op_addr_value(self):
        record = []
        memory = WordMemory(record=record)
        memory.store(0x10, 42)
        memory.load(0x10)
        memory.load(0x20)
        assert record == [
            (STORE, 0x10, 42),
            (LOAD, 0x10, 42),
            (LOAD, 0x20, 0),
        ]

    def test_peek_poke_untraced(self):
        record = []
        memory = WordMemory(record=record)
        memory.poke(0x10, 9)
        assert memory.peek(0x10) == 9
        assert record == []
        assert memory.access_count == 0

    def test_poked_data_visible_to_load(self):
        record = []
        memory = WordMemory(record=record)
        memory.poke(0x10, 5)
        assert memory.load(0x10) == 5
        assert record == [(LOAD, 0x10, 5)]


class TestLiveness:
    def test_referenced_locations_become_live(self):
        memory = WordMemory()
        memory.load(0x100)
        memory.store(0x200, 1)
        assert memory.live_count == 2
        assert sorted(addr for addr, _ in memory.live_items()) == [0x100, 0x200]

    def test_mark_dead_removes_liveness_keeps_content(self):
        memory = WordMemory()
        memory.store(0x100, 77)
        memory.mark_dead(0x100, 1)
        assert memory.live_count == 0
        # Content survives: a reallocation reads stale data like malloc.
        assert memory.peek(0x100) == 77

    def test_live_values(self):
        memory = WordMemory()
        memory.store(0x100, 5)
        memory.store(0x104, 5)
        memory.load(0x108)
        assert sorted(memory.live_values()) == [0, 5, 5]

    def test_realive_after_death(self):
        memory = WordMemory()
        memory.store(0x100, 3)
        memory.mark_dead(0x100, 1)
        memory.load(0x100)
        assert memory.live_count == 1


class TestSampling:
    def test_sampler_fires_every_interval(self):
        fired = []
        memory = WordMemory(
            sample_interval=3, sampler=lambda m: fired.append(m.access_count)
        )
        for index in range(10):
            memory.load(index * 4)
        assert fired == [3, 6, 9]

    def test_sampler_requires_interval(self):
        with pytest.raises(MemoryError_):
            WordMemory(sampler=lambda m: None)
        with pytest.raises(MemoryError_):
            WordMemory(sample_interval=5)


class TestReplayConsistency:
    """The core guarantee: replaying a trace's stores against fresh
    zero memory reproduces every load value (needed by the FVC
    simulators, which rebuild memory contents from the trace)."""

    @given(
        st.lists(
            st.tuples(
                st.booleans(),
                st.integers(min_value=0, max_value=15),
                st.integers(min_value=0, max_value=0xFFFFFFFF),
            ),
            max_size=200,
        )
    )
    def test_trace_replay_reproduces_loads(self, ops):
        record = []
        memory = WordMemory(record=record)
        for is_store, slot, value in ops:
            if is_store:
                memory.store(slot * 4, value)
            else:
                memory.load(slot * 4)
        # Replay the stores; every load record must match state.
        replay = {}
        for op, addr, value in record:
            if op == STORE:
                replay[addr] = value
            else:
                assert replay.get(addr, 0) == value
