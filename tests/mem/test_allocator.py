"""Tests for the static/heap/stack allocators."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.errors import MemoryError_
from repro.mem.allocator import HeapAllocator, StackAllocator, StaticAllocator
from repro.mem.memory import WordMemory


@pytest.fixture
def memory():
    return WordMemory()


class TestStaticAllocator:
    def test_bump_allocation(self, memory):
        static = StaticAllocator(memory, base=0x1000)
        a = static.alloc(4)
        b = static.alloc(2)
        assert a == 0x1000
        assert b == 0x1010

    def test_placement(self, memory):
        static = StaticAllocator(memory, base=0x1000)
        placed = static.alloc(8, at=0x8000)
        assert placed == 0x8000
        assert static.alloc(1) == 0x8020  # brk advanced past placement

    def test_placement_below_brk_rejected(self, memory):
        static = StaticAllocator(memory, base=0x1000)
        static.alloc(16)
        with pytest.raises(MemoryError_):
            static.alloc(1, at=0x1000)

    def test_alignment(self, memory):
        static = StaticAllocator(memory, base=0x1004)
        aligned = static.alloc(1, align_bytes=64)
        assert aligned % 64 == 0

    def test_zero_size_rejected(self, memory):
        static = StaticAllocator(memory, base=0x1000)
        with pytest.raises(MemoryError_):
            static.alloc(0)


class TestHeapAllocator:
    def test_bump_then_reuse(self, memory):
        heap = HeapAllocator(memory, base=0x40000000)
        a = heap.alloc(2)
        b = heap.alloc(2)
        assert b == a + 8
        heap.free(a)
        assert heap.alloc(2) == a  # exact-size free list reuse

    def test_free_marks_dead(self, memory):
        heap = HeapAllocator(memory, base=0x40000000)
        block = heap.alloc(3)
        memory.store(block, 1)
        assert memory.live_count == 1
        heap.free(block)
        assert memory.live_count == 0

    def test_double_free_rejected(self, memory):
        heap = HeapAllocator(memory, base=0x40000000)
        block = heap.alloc(1)
        heap.free(block)
        with pytest.raises(MemoryError_):
            heap.free(block)

    def test_free_of_unallocated_rejected(self, memory):
        heap = HeapAllocator(memory, base=0x40000000)
        with pytest.raises(MemoryError_):
            heap.free(0x40000000)

    def test_exhaustion(self, memory):
        heap = HeapAllocator(memory, base=0x40000000, limit_words=4)
        heap.alloc(4)
        with pytest.raises(MemoryError_):
            heap.alloc(1)

    def test_accounting(self, memory):
        heap = HeapAllocator(memory, base=0x40000000)
        a = heap.alloc(4)
        heap.alloc(2)
        heap.free(a)
        assert heap.alloc_count == 2
        assert heap.free_count == 1
        assert heap.allocated_bytes == 8
        assert heap.high_water_bytes == 24

    @given(st.lists(st.integers(min_value=1, max_value=8), max_size=50))
    def test_live_blocks_never_overlap(self, sizes):
        memory = WordMemory()
        heap = HeapAllocator(memory, base=0x40000000)
        live = {}
        for index, nwords in enumerate(sizes):
            addr = heap.alloc(nwords)
            span = set(range(addr, addr + nwords * 4, 4))
            for other in live.values():
                assert not span & other
            live[addr] = span
            if index % 3 == 2:  # free every third allocation
                victim = next(iter(live))
                heap.free(victim)
                del live[victim]


class TestStackAllocator:
    def test_grows_down(self, memory):
        stack = StackAllocator(memory, top=0x7FFF0000)
        frame1 = stack.push_frame(4)
        frame2 = stack.push_frame(2)
        assert frame1 == 0x7FFF0000 - 16
        assert frame2 == frame1 - 8
        assert stack.depth == 2

    def test_pop_restores_sp_and_kills_frame(self, memory):
        stack = StackAllocator(memory, top=0x7FFF0000)
        frame = stack.push_frame(2)
        memory.store(frame, 1)
        stack.pop_frame()
        assert stack.sp == 0x7FFF0000
        assert memory.live_count == 0

    def test_pop_empty_rejected(self, memory):
        stack = StackAllocator(memory, top=0x7FFF0000)
        with pytest.raises(MemoryError_):
            stack.pop_frame()

    def test_overflow_rejected(self, memory):
        stack = StackAllocator(memory, top=0x7FFF0000, limit_words=4)
        with pytest.raises(MemoryError_):
            stack.push_frame(5)

    @given(st.lists(st.integers(min_value=1, max_value=8), max_size=30))
    def test_push_pop_is_balanced(self, sizes):
        memory = WordMemory()
        stack = StackAllocator(memory, top=0x7FFF0000)
        for nwords in sizes:
            stack.push_frame(nwords)
        for _ in sizes:
            stack.pop_frame()
        assert stack.sp == 0x7FFF0000
        assert stack.depth == 0
