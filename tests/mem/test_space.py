"""Tests for the AddressSpace facade."""

from repro.mem.memory import LOAD, STORE
from repro.mem.space import AddressSpace


class TestAddressSpace:
    def test_segments_wired_to_layout(self):
        space = AddressSpace()
        static = space.static.alloc(4)
        heap = space.heap.alloc(4)
        frame = space.stack.push_frame(4)
        assert static >= space.layout.static_base
        assert heap >= space.layout.heap_base
        assert frame < space.layout.stack_top

    def test_load_store_shortcuts_trace(self):
        record = []
        space = AddressSpace(record=record)
        space.store(0x08048000, 5)
        assert space.load(0x08048000) == 5
        assert record == [(STORE, 0x08048000, 5), (LOAD, 0x08048000, 5)]

    def test_block_helpers(self):
        space = AddressSpace()
        base = space.static.alloc(4)
        space.store_block(base, [1, 2, 3, 4])
        assert space.load_block(base, 4) == [1, 2, 3, 4]

    def test_sampler_plumbed_through(self):
        fired = []
        space = AddressSpace(
            sample_interval=2, sampler=lambda m: fired.append(m.live_count)
        )
        base = space.static.alloc(4)
        space.store(base, 1)
        space.store(base + 4, 2)
        space.store(base + 8, 3)
        assert len(fired) == 1
