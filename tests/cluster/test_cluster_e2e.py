"""End-to-end cluster fabric tests over real worker subprocesses.

These are the test-suite twins of ``scripts/cluster_smoke.py`` (the CI
gate): a coordinator plus two genuine ``repro-fvc worker`` processes
run the fig13 test-scale sweep, and the stored payload must equal the
``run --jobs 1`` bytes exactly.  The takeover test additionally
SIGKILLs a worker while it holds a lease and requires the same bytes
plus an audit trail of the re-issue.
"""

import io
import os
import signal
import subprocess
import sys
import time
from contextlib import redirect_stdout

import pytest

from repro.service.client import ServiceClient
from repro.service.server import ReproService, ServiceConfig

EXPERIMENT = "fig13"
SRC = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__)))),
    "src",
)

pytestmark = pytest.mark.slow


def local_payload():
    """The ``run fig13 --fast --json`` bytes (the --jobs 1 oracle)."""
    from repro.cli import main

    buffer = io.StringIO()
    with redirect_stdout(buffer):
        assert main(["run", EXPERIMENT, "--fast", "--json"]) == 0
    return buffer.getvalue().encode()


def spawn_worker(url, name, cache_dir, faults=""):
    env = dict(os.environ, PYTHONPATH=SRC, REPRO_TRACE_CACHE_DIR=str(cache_dir))
    env.pop("REPRO_FAULTS", None)
    if faults:
        env["REPRO_FAULTS"] = faults
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro", "worker",
            "--coordinator", url, "--name", name, "--poll", "0.1",
        ],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.STDOUT,
    )


def wait_until(predicate, timeout, message):
    deadline = time.monotonic() + timeout
    while not predicate():
        assert time.monotonic() < deadline, message
        time.sleep(0.1)


@pytest.fixture()
def service(tmp_path):
    service = ReproService(
        ServiceConfig(
            port=0,
            workers=1,
            store_dir=tmp_path / "results",
            # Tight TTL so worker loss is detected quickly; long lease
            # timeout so recovery provably comes from loss reaping.
            cluster_worker_ttl=3.0,
            cluster_lease_timeout=120.0,
        )
    ).start()
    yield service
    service.stop(drain=False)


def reap_workers(workers):
    for worker in workers:
        if worker.poll() is None:
            worker.terminate()
    for worker in workers:
        try:
            worker.wait(timeout=10)
        except subprocess.TimeoutExpired:
            worker.kill()


class TestShardedRun:
    def test_payload_byte_identical_across_two_workers(
        self, service, tmp_path
    ):
        workers = [
            spawn_worker(service.url, f"w{n}", tmp_path / f"cache-{n}")
            for n in range(2)
        ]
        try:
            wait_until(
                lambda: service.cluster.live_worker_count() == 2,
                timeout=30.0,
                message="workers never registered",
            )
            client = ServiceClient(service.url)
            job = client.submit_experiment(EXPERIMENT, fast=True)
            done = client.wait(job["id"], timeout=600)
            assert done["state"] == "done", done
            served = client.result_bytes(done["result_key"])
        finally:
            reap_workers(workers)

        assert served == local_payload()
        entries = service.metrics()["metrics"]
        assert entries["cluster_leases_completed_total"]["value"] >= 1
        # Every cell travelled through a worker lease.
        assert entries["cluster_local_fallback_total"]["value"] == 0


class TestWorkerKillTakeover:
    def test_sigkill_mid_cell_reissues_and_stays_byte_identical(
        self, service, tmp_path
    ):
        # The victim's first leased cell hangs (deterministic injected
        # fault), guaranteeing it dies while holding the lease.
        victim = spawn_worker(
            service.url, "victim", tmp_path / "cache-victim",
            faults="engine.cell:hang(300)@1",
        )
        survivor = spawn_worker(
            service.url, "survivor", tmp_path / "cache-survivor"
        )
        try:
            wait_until(
                lambda: service.cluster.live_worker_count() == 2,
                timeout=30.0,
                message="workers never registered",
            )
            client = ServiceClient(service.url)
            job = client.submit_experiment(EXPERIMENT, fast=True)

            def victim_holds_a_lease():
                view = service.cluster.workers_view()
                return any(
                    entry["pid"] == victim.pid and entry["leases"] > 0
                    for entry in view["workers"]
                )

            wait_until(
                victim_holds_a_lease,
                timeout=60.0,
                message="poisoned worker never took a lease",
            )
            os.kill(victim.pid, signal.SIGKILL)
            victim.wait(timeout=10)

            done = client.wait(job["id"], timeout=600)
            assert done["state"] == "done", done
            served = client.result_bytes(done["result_key"])
        finally:
            reap_workers([victim, survivor])

        # The re-run of the orphaned cell produced the same bytes.
        assert served == local_payload()

        # The audit log records the takeover: the worker was declared
        # lost and its lease re-issued.
        events = [e["event"] for e in service.cluster.log_events()]
        assert "worker_lost" in events
        assert "reissue" in events
        lost = [e["worker"] for e in service.cluster.log_events("worker_lost")]
        reissues = service.cluster.log_events("reissue")
        assert any(e["worker"] in lost for e in reissues)

        entries = service.metrics()["metrics"]
        assert entries["cluster_workers_lost_total"]["value"] >= 1
        assert entries["cluster_leases_reissued_total"]["value"] >= 1
