"""Coordinator scheduler unit tests: leases, liveness, stealing.

Everything here drives :class:`ClusterScheduler` on an injected clock —
no sleeping, no HTTP, and (for the protocol tests) no simulation:
payloads are minimal valid ``repro.cell/1`` dicts.
"""

import threading
import time

import pytest

from repro.cluster.coordinator import ClusterScheduler
from repro.cluster.protocol import (
    cell_fields,
    cell_from_fields,
    cell_task_key,
)
from repro.engine.cells import SimCell, run_cell
from repro.service.api import CELL_SCHEMA, cell_payload, result_key


def make_cells(count):
    """Distinct tiny cells (distinct geometry => distinct task keys)."""
    return [
        SimCell(
            workload="go",
            input_name="test",
            kind="baseline",
            size_bytes=(index + 1) * 1024,
        )
        for index in range(count)
    ]


def payload_for(cell):
    """A wire-valid payload without running any simulation."""
    return {
        "schema": CELL_SCHEMA,
        "cell": cell_fields(cell),
        "stats": {"accesses": 1},
        "extras": {},
    }


class Clock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


@pytest.fixture()
def clock():
    return Clock()


@pytest.fixture()
def sched(clock):
    return ClusterScheduler(
        lease_timeout=30.0, worker_ttl=10.0, max_attempts=3, clock=clock
    )


class TestRegistry:
    def test_register_grants_id_and_timing(self, sched):
        grant = sched.register(name="alpha", pid=42, host="h")
        assert grant["schema"] == "worker/v1"
        assert grant["worker_id"] == "w-0001"
        assert grant["lease_seconds"] == 30.0
        assert 0 < grant["heartbeat_seconds"] < 10.0

    def test_heartbeat_refreshes_and_unknown_is_flagged(self, sched, clock):
        worker = sched.register()["worker_id"]
        clock.now = 9.0
        assert sched.heartbeat(worker)["known"] is True
        assert sched.live_worker_count() == 1
        assert sched.heartbeat("w-9999")["known"] is False

    def test_silent_worker_expires_after_ttl(self, sched, clock):
        sched.register()
        clock.now = 10.1
        sched.reap()
        assert sched.live_worker_count() == 0
        assert sched.counters["cluster_workers_lost_total"] == 1

    def test_deregister_requeues_held_leases(self, sched):
        worker = sched.register()["worker_id"]
        cells = make_cells(1)
        sched._task_for(cells[0])
        assert sched.lease(worker)["leases"]
        assert sched.deregister(worker) is True
        assert sched.deregister(worker) is False
        # The cell went back to the queue for the next worker.
        other = sched.register()["worker_id"]
        assert sched.lease(other)["leases"]


class TestLeasing:
    def test_lease_batches_and_drains(self, sched):
        worker = sched.register()["worker_id"]
        for cell in make_cells(3):
            sched._task_for(cell)
        grant = sched.lease(worker, max_leases=2)
        assert len(grant["leases"]) == 2
        assert [entry["attempt"] for entry in grant["leases"]] == [1, 1]
        assert len(sched.lease(worker, max_leases=2)["leases"]) == 1
        assert sched.lease(worker)["leases"] == []

    def test_unknown_worker_is_told_to_reregister(self, sched):
        assert sched.lease("w-0404") == {
            "schema": "lease/v1", "known": False, "leases": [],
        }

    def test_leased_cell_travels_as_its_field_dict(self, sched):
        worker = sched.register()["worker_id"]
        cell = make_cells(1)[0]
        sched._task_for(cell)
        wire = sched.lease(worker)["leases"][0]["cell"]
        assert cell_from_fields(wire) == cell

    def test_expired_lease_is_reissued_with_higher_attempt(
        self, sched, clock
    ):
        worker = sched.register()["worker_id"]
        cell = make_cells(1)[0]
        sched._task_for(cell)
        first = sched.lease(worker)["leases"][0]
        clock.now = 31.0  # past lease_timeout, inside a fresh ttl below
        sched.heartbeat(worker)
        second = sched.lease(worker)["leases"][0]
        assert second["attempt"] == 2
        assert second["lease_id"] != first["lease_id"]
        events = [e["event"] for e in sched.log_events()]
        assert "lease_expired" in events and "reissue" in events
        assert sched.counters["cluster_leases_expired_total"] == 1
        assert sched.counters["cluster_leases_reissued_total"] == 1

    def test_worker_loss_requeues_to_survivor(self, sched, clock):
        lost = sched.register(name="doomed")["worker_id"]
        cell = make_cells(1)[0]
        sched._task_for(cell)
        assert sched.lease(lost)["leases"]
        clock.now = 10.5  # doomed never heartbeats again
        survivor = sched.register(name="survivor")["worker_id"]
        grant = sched.lease(survivor)
        assert len(grant["leases"]) == 1
        assert grant["leases"][0]["attempt"] == 2
        events = [e["event"] for e in sched.log_events()]
        assert "worker_lost" in events
        takeovers = sched.log_events("reissue")
        assert takeovers and takeovers[0]["worker"] == lost

    def test_idle_worker_steals_from_loaded_one(self, sched):
        loaded = sched.register(name="loaded")["worker_id"]
        for cell in make_cells(3):
            sched._task_for(cell)
        assert len(sched.lease(loaded, max_leases=3)["leases"]) == 3
        thief = sched.register(name="thief")["worker_id"]
        stolen = sched.lease(thief)
        assert len(stolen["leases"]) == 1
        assert sched.counters["cluster_cells_stolen_total"] == 1
        # Stealing never takes the victim's last lease.
        assert len(sched.lease(thief)["leases"]) == 1
        assert sched.lease(thief)["leases"] == []

    def test_lease_budget_diverts_to_local_fallback(self, sched, clock):
        worker = sched.register()["worker_id"]
        cell = make_cells(1)[0]
        sched._task_for(cell)
        for round_index in range(3):  # max_attempts grants
            assert sched.lease(worker)["leases"], round_index
            clock.now += 31.0
            sched.heartbeat(worker)
        # Budget spent: workers never see the cell again ...
        assert sched.lease(worker)["leases"] == []
        # ... the coordinator claims it instead.
        assert sched._claim_local() is not None


class TestResults:
    def test_complete_resolves_the_lease(self, sched):
        worker = sched.register()["worker_id"]
        cell = make_cells(1)[0]
        task = sched._task_for(cell)
        lease = sched.lease(worker)["leases"][0]
        verdict = sched.complete(
            lease["lease_id"], worker, payload_for(cell)
        )
        assert verdict == {"accepted": True, "stale": False}
        assert task.state == "done"
        assert task.event.is_set()
        assert sched.counters["cluster_leases_completed_total"] == 1

    def test_stale_push_is_acknowledged_and_dropped(self, sched, clock):
        worker = sched.register()["worker_id"]
        cell = make_cells(1)[0]
        sched._task_for(cell)
        old = sched.lease(worker)["leases"][0]
        clock.now = 31.0
        sched.heartbeat(worker)
        fresh = sched.lease(worker)["leases"][0]
        stale = sched.complete(old["lease_id"], worker, payload_for(cell))
        assert stale == {"accepted": False, "stale": True}
        good = sched.complete(fresh["lease_id"], worker, payload_for(cell))
        assert good["accepted"] is True
        assert sched.counters["cluster_results_stale_total"] == 1

    def test_mismatched_worker_is_stale(self, sched):
        worker = sched.register()["worker_id"]
        other = sched.register()["worker_id"]
        cell = make_cells(1)[0]
        sched._task_for(cell)
        lease = sched.lease(worker)["leases"][0]
        verdict = sched.complete(lease["lease_id"], other, payload_for(cell))
        assert verdict["stale"] is True

    def test_malformed_payload_requeues_the_cell(self, sched):
        worker = sched.register()["worker_id"]
        cell = make_cells(1)[0]
        task = sched._task_for(cell)
        lease = sched.lease(worker)["leases"][0]
        bad = payload_for(make_cells(2)[1])  # wrong cell fields
        verdict = sched.complete(lease["lease_id"], worker, bad)
        assert verdict == {"accepted": False, "stale": False}
        assert task.state == "pending"
        assert sched.lease(worker)["leases"]  # re-grantable


class TestTaskKeys:
    def test_task_key_is_the_cell_job_result_key(self):
        cell = SimCell(workload="gcc", input_name="test", kind="fvc")
        spec = {"type": "cell"}
        spec.update(cell_fields(cell))
        assert cell_task_key(cell) == result_key(spec)

    def test_result_store_is_a_cluster_wide_memo(self, clock, store):
        """A cell whose payload is already stored is born done — no
        lease, no simulation."""

        class DictStore:
            def __init__(self):
                self.blobs = {}

            def get(self, key):
                return self.blobs.get(key)

            def put(self, key, payload):
                self.blobs[key] = payload
                return True

        memo = DictStore()
        cell = SimCell(
            workload="go", input_name="test", kind="baseline",
            size_bytes=4 * 1024,
        )
        first = ClusterScheduler(store=memo, clock=clock)
        results = first.run_cells([cell], store=store)
        assert cell_task_key(cell) in memo.blobs
        second = ClusterScheduler(store=memo, clock=clock)
        again = second.run_cells([cell], store=store)
        assert again[0].stats == results[0].stats
        # Second scheduler resolved purely from the store.
        assert second.counters["cluster_local_fallback_total"] == 0
        assert [e["event"] for e in second.log_events()] == ["complete"]


class TestRunCells:
    def test_no_workers_falls_back_to_local_and_matches_run_cell(
        self, store
    ):
        cells = make_cells(2)
        sched = ClusterScheduler(clock=time.monotonic)
        results = sched.run_cells(cells, store=store)
        for cell, result in zip(cells, results):
            direct = run_cell(cell, store)
            assert result.stats == direct.stats
            assert result.extras == direct.extras
        assert sched.counters["cluster_local_fallback_total"] == 2

    def test_worker_computed_cells_merge_bit_identically(self, store):
        """A thread playing the worker protocol produces results equal
        to direct run_cell — the determinism contract end to end."""
        cells = make_cells(2)
        sched = ClusterScheduler(
            lease_timeout=60.0, worker_ttl=60.0, clock=time.monotonic
        )
        worker = sched.register(name="thread")["worker_id"]

        def worker_loop():
            done = 0
            while done < len(cells):
                grant = sched.lease(worker, max_leases=1)
                for lease in grant["leases"]:
                    cell = cell_from_fields(lease["cell"])
                    sched.complete(
                        lease["lease_id"], worker,
                        cell_payload(run_cell(cell, store)),
                    )
                    done += 1

        thread = threading.Thread(target=worker_loop, daemon=True)
        thread.start()
        results = sched.run_cells(cells, store=store)
        thread.join(timeout=30)
        for cell, result in zip(cells, results):
            direct = run_cell(cell, store)
            assert result.stats == direct.stats
            assert result.extras == direct.extras
        assert sched.counters["cluster_local_fallback_total"] == 0

    def test_progress_reports_monotonically(self, store):
        cells = make_cells(2)
        sched = ClusterScheduler(clock=time.monotonic)
        seen = []
        sched.run_cells(
            cells, progress=lambda done, total: seen.append((done, total)),
            store=store,
        )
        assert seen[0] == (0, 2)
        assert seen[-1] == (2, 2)
        assert [s for s, _ in seen] == sorted(s for s, _ in seen)


class TestMetricSamples:
    def test_samples_are_catalogued_and_typed(self, sched):
        from repro.obs.names import METRIC_NAMES

        samples = sched.metric_samples()
        assert set(samples) <= METRIC_NAMES
        assert samples["cluster_workers"]["type"] == "gauge"
        assert samples["cluster_leases_issued_total"]["type"] == "counter"


class TestFaultSites:
    """The coordinator's three injection sites actually fire.

    Each site sits at the entry of its RPC — before any state is
    touched — so an injected fault must surface as the typed error and
    leave the fabric consistent for the retry.
    """

    @pytest.fixture(autouse=True)
    def _clean_plan(self):
        from repro.faults import reset

        reset()
        yield
        reset()

    def test_heartbeat_site_fires_before_liveness_refresh(self, sched, clock):
        from repro.common.errors import FaultInjected
        from repro.faults import install
        from repro.faults.plan import FaultPlan

        worker = sched.register()["worker_id"]
        install(FaultPlan.parse("cluster.heartbeat:raise@1"))
        clock.now = 9.0
        with pytest.raises(FaultInjected):
            sched.heartbeat(worker)
        # The clause is spent; the retry lands and refreshes liveness.
        assert sched.heartbeat(worker)["known"] is True
        assert sched.counters["cluster_heartbeats_total"] == 1

    def test_lease_site_fires_before_any_grant(self, sched):
        from repro.common.errors import FaultInjected
        from repro.faults import install
        from repro.faults.plan import FaultPlan

        worker = sched.register()["worker_id"]
        sched._task_for(make_cells(1)[0])
        install(FaultPlan.parse("cluster.lease:raise@1"))
        with pytest.raises(FaultInjected):
            sched.lease(worker)
        # Nothing was dequeued: the retry still gets the cell.
        grant = sched.lease(worker)
        assert len(grant["leases"]) == 1
        assert grant["leases"][0]["attempt"] == 1

    def test_result_site_fires_before_lease_resolution(self, sched):
        from repro.common.errors import FaultInjected
        from repro.faults import install
        from repro.faults.plan import FaultPlan

        worker = sched.register()["worker_id"]
        cell = make_cells(1)[0]
        sched._task_for(cell)
        lease = sched.lease(worker)["leases"][0]
        install(FaultPlan.parse("cluster.result:raise@1"))
        with pytest.raises(FaultInjected):
            sched.complete(lease["lease_id"], worker, payload_for(cell))
        # The lease is still live: the retried push is accepted, not
        # treated as stale.
        verdict = sched.complete(lease["lease_id"], worker, payload_for(cell))
        assert verdict["accepted"] is True


class TestEpochRecovery:
    """The scheduler's clock epoch after a crash-restart: lease and TTL
    math must keep working when the restarted coordinator re-bases onto
    the journal's recorded epoch."""

    def test_restore_rebases_clock_onto_epoch(self, sched, clock):
        clock.now = 2.0
        sched.restore(epoch=100.0)
        assert sched.now() == pytest.approx(100.0)
        clock.now = 5.5
        assert sched.now() == pytest.approx(103.5)

    def test_restore_never_rewinds_the_epoch(self, sched, clock):
        clock.now = 7.0  # this incarnation already ran for 7 s
        sched.restore(epoch=3.0)  # a stale, older journal epoch
        assert sched.now() >= 7.0

    def test_lease_ttl_math_survives_the_rebase(self, clock):
        # Pre-crash coordinator ran to t=1000; the restarted one starts
        # from a fresh process clock (injected: 0.0) but must expire a
        # re-issued lease after lease_timeout seconds of *real* time,
        # not at raw-clock 30 (which is epoch time 1030).
        sched = ClusterScheduler(
            lease_timeout=30.0, worker_ttl=120.0, max_attempts=3,
            clock=clock,
        )
        sched.restore(epoch=1000.0)
        worker = sched.register()["worker_id"]
        sched._task_for(make_cells(1)[0])
        assert sched.lease(worker)["leases"]
        clock.now = 29.0  # epoch time 1029: inside the lease window
        sched.heartbeat(worker)
        sched.reap()
        assert sched.counters["cluster_leases_expired_total"] == 0
        clock.now = 31.0  # epoch time 1031: past it
        sched.heartbeat(worker)
        sched.reap()
        assert sched.counters["cluster_leases_expired_total"] == 1

    def test_restored_serials_never_collide(self, sched):
        sched.restore(worker_serial=7, lease_serial=41)
        assert sched.register()["worker_id"] == "w-0008"
        sched._task_for(make_cells(1)[0])
        lease = sched.lease("w-0008")["leases"][0]
        assert lease["lease_id"] == "lease-000042"

    def test_pre_crash_lease_push_is_acked_stale(self, sched):
        # A worker holding a lease issued by the dead incarnation pushes
        # after the restart: the id is unknown, the ack says stale, and
        # the worker's loop drops the batch instead of crashing.
        sched.restore(worker_serial=3, lease_serial=9)
        worker = sched.register()["worker_id"]
        cell = make_cells(1)[0]
        verdict = sched.complete("lease-000005", worker, payload_for(cell))
        assert verdict == {"accepted": False, "stale": True}

    def test_snapshot_state_roundtrips_through_restore(self, sched, clock):
        sched.register()
        clock.now = 12.0
        state = sched.snapshot_state()
        assert state["worker_serial"] == 1
        assert state["epoch"] == pytest.approx(12.0)

        successor = ClusterScheduler(clock=Clock())
        successor.restore(
            worker_serial=state["worker_serial"],
            lease_serial=state["lease_serial"],
            epoch=state["epoch"],
            counters=state["counters"],
        )
        assert successor.now() == pytest.approx(12.0)
        assert successor.register()["worker_id"] == "w-0002"

    def test_journaled_events_reach_the_journal(self, clock, tmp_path):
        from repro.service.journal import Journal

        journal = Journal(tmp_path / "state", fsync=False)
        sched = ClusterScheduler(
            lease_timeout=30.0, worker_ttl=10.0, clock=clock,
            journal=journal,
        )
        worker = sched.register()["worker_id"]
        sched._task_for(make_cells(1)[0])
        sched.lease(worker)
        clock.now = 31.0  # past lease_timeout, worker kept alive
        sched.heartbeat(worker)
        sched.reap()  # lease expired
        clock.now = 42.0  # now the worker goes silent past its ttl
        sched.reap()  # worker lost
        journal.close()

        _, tail, _ = Journal(tmp_path / "state", fsync=False).replay()
        events = [record["ev"] for record in tail if record["k"] == "sched"]
        assert "register" in events
        assert "issue" in events
        assert "worker_lost" in events
        assert "lease_expired" in events
        # Heartbeats are deliberately not journaled (rate, no recovery
        # value) — liveness is re-proven by post-restart heartbeats.
        assert "heartbeat" not in events
