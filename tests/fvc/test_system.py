"""Tests for the combined DMC+FVC protocol (paper §3).

The scripted scenarios pin each transfer rule; the property tests check
the global invariants (exclusivity, value consistency, equivalence with
a bare cache under an empty encoder) on random but *replayable* access
sequences.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.direct import DirectMappedCache
from repro.cache.geometry import CacheGeometry
from repro.fvc.encoding import FrequentValueEncoder
from repro.fvc.system import FvcSystem, FvcSystemConfig

# Geometry: 4 sets of 16-byte (4-word) lines; FVC: 8 entries.
GEOMETRY = CacheGeometry(64, 16)


def _system(values=(0, 1, 0xFFFFFFFF), entries=8, **config) -> FvcSystem:
    encoder = FrequentValueEncoder(list(values), 2)
    return FvcSystem(
        GEOMETRY, entries, encoder,
        config=FvcSystemConfig(verify_values=True, **config),
    )


def _fill_line(system, line_addr, words):
    """Put ``words`` into backing memory for ``line_addr``."""
    system.memory.write_line(line_addr, list(words))


class TestMainCachePath:
    def test_miss_fills_main_cache(self):
        system = _system()
        _fill_line(system, 0x100 >> 4, [7, 8, 9, 10])
        assert system.access(0, 0x100, 7) is False
        assert system.access(0, 0x104, 8) is True
        assert system.main_hits == 1

    def test_store_hit_updates_line(self):
        system = _system()
        system.access(1, 0x100, 5)
        assert system.access(0, 0x100, 5) is True


class TestEvictionIntoFvc:
    def test_frequent_words_enter_fvc_on_eviction(self):
        system = _system()
        _fill_line(system, 0x100 >> 4, [0, 1, 42, 0])
        system.access(0, 0x100, 0)
        system.access(0, 0x140, 0)  # conflicts: 0x100's line evicted
        # The evicted line's frequent words are now served by the FVC.
        assert system.access(0, 0x100, 0) is True
        assert system.access(0, 0x104, 1) is True
        assert system.fvc_read_hits == 2

    def test_infrequent_word_in_fvc_line_misses_and_promotes(self):
        system = _system()
        _fill_line(system, 0x100 >> 4, [0, 1, 42, 0])
        system.access(0, 0x100, 0)
        system.access(0, 0x140, 0)
        # Word 2 holds 42 (infrequent): miss, line promoted to the DMC.
        assert system.access(0, 0x108, 42) is False
        assert system.access(0, 0x108, 42) is True  # now a main-cache hit
        assert not system.fvc.probe(0x100 >> 4)  # exclusivity restored

    def test_all_infrequent_line_not_inserted_by_default(self):
        system = _system()
        _fill_line(system, 0x100 >> 4, [42, 43, 44, 45])
        system.access(0, 0x100, 42)
        system.access(0, 0x140, 0)
        assert not system.fvc.probe(0x100 >> 4)

    def test_insert_empty_lines_config(self):
        system = _system(insert_empty_lines=True)
        _fill_line(system, 0x100 >> 4, [42, 43, 44, 45])
        system.access(0, 0x100, 42)
        system.access(0, 0x140, 0)
        assert system.fvc.probe(0x100 >> 4)


class TestFvcWriteHits:
    def test_write_of_frequent_value_hits_fvc(self):
        system = _system()
        _fill_line(system, 0x100 >> 4, [0, 1, 42, 0])
        system.access(0, 0x100, 0)
        system.access(0, 0x140, 0)  # evict into FVC
        assert system.access(1, 0x104, 0) is True  # overwrite 1 with 0
        assert system.fvc_write_hits == 1
        assert system.access(0, 0x104, 0) is True  # reads back decoded

    def test_dirty_fvc_word_flushed_on_eviction(self):
        system = _system(entries=8)
        line_a = 0x100 >> 4
        _fill_line(system, line_a, [0, 1, 42, 0])
        system.access(0, 0x100, 0)
        system.access(0, 0x140, 0)  # A -> FVC
        system.access(1, 0x104, 0xFFFFFFFF)  # FVC write hit, dirty word
        # Force A out of the FVC: insert a line with the same FVC index.
        line_b = line_a + 8  # 8-entry FVC: same index
        _fill_line(system, line_b, [0, 0, 0, 0])
        system.access(0, line_b << 4, 0)
        conflicting = (line_b << 4) ^ 0x40
        _fill_line(system, conflicting >> 4, [0, 0, 0, 0])
        system.access(0, conflicting, 0)  # evicts line_b into FVC slot
        # A's dirty word must have reached memory.
        assert system.memory.read_word(0x104) == 0xFFFFFFFF

    def test_write_of_infrequent_value_with_tag_match_promotes(self):
        system = _system()
        _fill_line(system, 0x100 >> 4, [0, 1, 42, 0])
        system.access(0, 0x100, 0)
        system.access(0, 0x140, 0)
        assert system.access(1, 0x104, 777) is False  # infrequent write
        assert system.access(0, 0x104, 777) is True  # promoted with merge
        assert system.access(0, 0x100, 0) is True  # other words intact


class TestWriteAllocateFrequent:
    def test_disabled_by_default(self):
        system = _system()
        assert system.access(1, 0x100, 0) is False
        assert system.fvc_write_allocates == 0
        assert system.access(0, 0x104, 0) is True  # normal allocate filled

    def test_enabled_allocates_into_fvc(self):
        system = _system(write_allocate_frequent=True)
        assert system.access(1, 0x100, 0) is False  # counted as miss
        assert system.fvc_write_allocates == 1
        assert system.stats.fills == 0  # but no memory fetch
        assert system.access(0, 0x100, 0) is True  # FVC read hit
        # Unwritten words are marked infrequent: referencing one misses.
        _fill_line_value = system.memory.read_word(0x104)
        assert system.access(0, 0x104, _fill_line_value) is False

    def test_infrequent_write_falls_back_to_normal_allocate(self):
        system = _system(write_allocate_frequent=True)
        assert system.access(1, 0x100, 777) is False
        assert system.fvc_write_allocates == 0
        assert system.stats.fills == 1


class TestAccountingAndOccupancy:
    def test_traffic_accounting(self):
        system = _system()
        system.access(1, 0x100, 5)  # miss: fill 4 words
        system.access(0, 0x140, 0)  # miss: fill 4, write back 4 (dirty)
        assert system.stats.fill_words == 8
        assert system.stats.writeback_words == 4

    def test_occupancy_sampling(self):
        config_system = FvcSystem(
            GEOMETRY,
            8,
            FrequentValueEncoder([0], 1),
            config=FvcSystemConfig(occupancy_sample_interval=2),
        )
        for index in range(10):
            config_system.access(0, index * 64, 0)
        assert 0.0 <= config_system.mean_fvc_frequent_fraction <= 1.0

    def test_hit_breakdown_sums(self):
        system = _system()
        _fill_line(system, 0x100 >> 4, [0, 0, 0, 0])
        for _ in range(3):
            system.access(0, 0x100, 0)
            system.access(0, 0x140, 0)
        assert system.stats.hits == system.main_hits + system.fvc_hits


# ----------------------------------------------------------------------
# Property tests over replayable random programs
# ----------------------------------------------------------------------

_program = st.lists(
    st.tuples(
        st.booleans(),  # store?
        st.integers(min_value=0, max_value=31),  # word slot (32 words)
        st.integers(min_value=0, max_value=3),  # value index
    ),
    max_size=300,
)
_VALUES = (0, 1, 0xFFFFFFFF, 0xDEADBEEF)  # two frequent, two not


def _replayable(ops):
    """Turn random ops into a consistent (op, addr, value) trace."""
    state = {}
    records = []
    for is_store, slot, value_index in ops:
        address = 0x1000 + slot * 4
        if is_store:
            value = _VALUES[value_index]
            state[address] = value
            records.append((1, address, value))
        else:
            records.append((0, address, state.get(address, 0)))
    return records


class TestProtocolProperties:
    @settings(max_examples=60, deadline=None)
    @given(ops=_program)
    def test_values_consistent_and_exclusive(self, ops):
        system = _system(values=(0, 1, 0xFFFFFFFF))
        for record in _replayable(ops):
            system.access(*record)  # verify_values raises on any skew
            assert system.check_exclusive()

    @settings(max_examples=60, deadline=None)
    @given(ops=_program)
    def test_empty_encoder_equals_bare_cache(self, ops):
        """With no frequent values the system must behave exactly like
        the conventional cache alone."""
        system = FvcSystem(
            GEOMETRY, 8, FrequentValueEncoder([], 3),
            config=FvcSystemConfig(verify_values=True),
        )
        bare = DirectMappedCache(GEOMETRY)
        for record in _replayable(ops):
            assert system.access(*record) == bare.access(record[0], record[1])
        assert system.stats.misses == bare.stats.misses
        assert system.stats.fill_words == bare.stats.fill_words

    @settings(max_examples=40, deadline=None)
    @given(ops=_program)
    def test_fvc_never_increases_misses_without_waf(self, ops):
        """With write-allocate-frequent off, every FVC-induced state
        change only adds hit opportunities: miss count never exceeds
        the bare cache's."""
        system = _system()
        bare = DirectMappedCache(GEOMETRY)
        for record in _replayable(ops):
            system.access(*record)
            bare.access(record[0], record[1])
        assert system.stats.misses <= bare.stats.misses

    @settings(max_examples=40, deadline=None)
    @given(ops=_program)
    def test_waf_values_still_consistent(self, ops):
        system = _system(write_allocate_frequent=True)
        for record in _replayable(ops):
            system.access(*record)
        assert system.check_exclusive()
