"""Tests for the raw FVC array structure."""

import pytest

from repro.common.errors import ConfigurationError
from repro.fvc.cache import FrequentValueCacheArray
from repro.fvc.encoding import FrequentValueEncoder


@pytest.fixture
def encoder():
    return FrequentValueEncoder([0, 1, 0xFFFFFFFF], 2)


@pytest.fixture
def fvc(encoder):
    return FrequentValueCacheArray(entries=8, words_per_line=4, encoder=encoder)


class TestInstallProbe:
    def test_probe_miss_when_empty(self, fvc):
        assert not fvc.probe(5)
        assert fvc.codes_for(5) is None

    def test_install_then_probe(self, fvc, encoder):
        codes = encoder.encode_line([0, 1, 99, 0])
        assert fvc.install(5, codes) is None
        assert fvc.probe(5)
        assert fvc.codes_for(5) == codes

    def test_direct_mapping_conflict(self, fvc, encoder):
        codes = encoder.encode_line([0, 0, 0, 0])
        fvc.install(5, list(codes))
        displaced = fvc.install(13, list(codes))  # 13 % 8 == 5
        assert displaced is not None
        assert displaced[0] == 5
        assert not fvc.probe(5)
        assert fvc.probe(13)

    def test_wrong_code_count_rejected(self, fvc):
        with pytest.raises(ConfigurationError):
            fvc.install(1, [0, 0])

    def test_bad_geometry_rejected(self, encoder):
        with pytest.raises(ConfigurationError):
            FrequentValueCacheArray(entries=6, words_per_line=4, encoder=encoder)
        with pytest.raises(ConfigurationError):
            FrequentValueCacheArray(entries=8, words_per_line=3, encoder=encoder)


class TestWordAccess:
    def test_read_word_decodes_frequent(self, fvc, encoder):
        fvc.install(2, encoder.encode_line([1, 99, 0xFFFFFFFF, 0]))
        assert fvc.read_word(2, 0) == 1
        assert fvc.read_word(2, 2) == 0xFFFFFFFF
        assert fvc.read_word(2, 1) is None  # infrequent word
        assert fvc.read_word(9, 0) is None  # absent line

    def test_write_word_frequent_only(self, fvc, encoder):
        fvc.install(2, encoder.encode_line([99, 99, 99, 99]))
        assert fvc.write_word(2, 1, 1) is True
        assert fvc.read_word(2, 1) == 1
        assert fvc.write_word(2, 0, 424242) is False  # infrequent value
        assert fvc.write_word(3, 0, 1) is False  # absent line

    def test_write_sets_dirty(self, fvc, encoder):
        fvc.install(2, encoder.encode_line([99, 99, 99, 99]))
        fvc.write_word(2, 1, 1)
        entry = fvc.invalidate(2)
        assert entry is not None
        _, _, dirty = entry
        assert dirty == [False, True, False, False]


class TestOccupancyAccounting:
    def test_frequent_fraction_tracks_contents(self, fvc, encoder):
        assert fvc.frequent_fraction == 0.0
        fvc.install(0, encoder.encode_line([0, 0, 99, 99]))  # 2/4 frequent
        assert fvc.frequent_fraction == 0.5
        fvc.install(1, encoder.encode_line([0, 0, 0, 0]))  # 4/4
        assert fvc.frequent_fraction == 0.75
        fvc.invalidate(1)
        assert fvc.frequent_fraction == 0.5

    def test_write_hit_updates_counter(self, fvc, encoder):
        fvc.install(0, encoder.encode_line([99, 99, 99, 99]))
        fvc.write_word(0, 0, 0)
        assert fvc.frequent_words == 1
        fvc.write_word(0, 0, 1)  # frequent -> frequent: no double count
        assert fvc.frequent_words == 1

    def test_resident_line_addresses(self, fvc, encoder):
        fvc.install(3, encoder.encode_line([0, 0, 0, 0]))
        fvc.install(4, encoder.encode_line([0, 0, 0, 0]))
        assert sorted(fvc.resident_line_addresses()) == [3, 4]


class TestStorageModel:
    def test_data_storage_matches_paper_arithmetic(self):
        # 512 entries x 8 words x 3 bits = 1.5 KB (the paper's "1.5Kb FVC").
        encoder = FrequentValueEncoder(list(range(7)), 3)
        fvc = FrequentValueCacheArray(512, 8, encoder)
        assert fvc.data_storage_bytes() == 1536

    def test_storage_bits_include_tag_and_dirty(self):
        encoder = FrequentValueEncoder(list(range(7)), 3)
        fvc = FrequentValueCacheArray(128, 8, encoder)
        # per entry: 1 valid + tag(32-7-5=20) + 8*(3+1) = 53 bits
        assert fvc.storage_bits() == 128 * 53
