"""Tests for the dynamic (online-profiled) FVC."""

import pytest

from repro.cache.geometry import CacheGeometry
from repro.common.errors import ConfigurationError
from repro.fvc.dynamic import DynamicFvcSystem

GEOMETRY = CacheGeometry(64, 16)


def _biased_records(n=2000):
    """A stream where value 7 dominates and lines conflict."""
    records = []
    state = {}
    for index in range(n):
        address = 0x1000 + (index % 32) * 4
        if index % 4 == 0:
            value = 7 if index % 8 else 0xABCD0000 + index
            state[address] = value
            records.append((1, address, value))
        else:
            records.append((0, address, state.get(address, 0)))
    return records


class TestWarmup:
    def test_locks_after_warmup(self):
        system = DynamicFvcSystem(GEOMETRY, 8, code_bits=2, warmup_accesses=100)
        records = _biased_records(300)
        for record in records[:99]:
            system.access(*record)
        assert not system.locked
        system.access(*records[99])
        assert system.locked

    def test_dominant_value_discovered(self):
        system = DynamicFvcSystem(GEOMETRY, 8, code_bits=2, warmup_accesses=500)
        system.simulate(_biased_records(2000))
        assert system.locked
        assert 7 in system.frequent_values or 0 in system.frequent_values

    def test_idle_before_lock(self):
        system = DynamicFvcSystem(GEOMETRY, 8, code_bits=2, warmup_accesses=10**9)
        system.simulate(_biased_records(500))
        assert not system.locked
        assert system.fvc_hits == 0

    def test_exclusive_after_lock(self):
        system = DynamicFvcSystem(GEOMETRY, 8, code_bits=2, warmup_accesses=200)
        system.simulate(_biased_records(3000))
        assert system.system.check_exclusive()

    def test_stats_cover_whole_run(self):
        system = DynamicFvcSystem(GEOMETRY, 8, code_bits=2, warmup_accesses=100)
        records = _biased_records(1000)
        system.simulate(records)
        assert system.stats.accesses == len(records)


class TestValidation:
    def test_bad_warmup_rejected(self):
        with pytest.raises(ConfigurationError):
            DynamicFvcSystem(GEOMETRY, 8, code_bits=2, warmup_accesses=0)

    def test_summary_must_cover_encoder(self):
        with pytest.raises(ConfigurationError):
            DynamicFvcSystem(
                GEOMETRY, 8, code_bits=3, summary_counters=3
            )
