"""Tests for the frequent-value compression cache (reference [11])."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.direct import DirectMappedCache
from repro.cache.geometry import CacheGeometry
from repro.common.errors import ConfigurationError
from repro.fvc.compression import CompressedCache
from repro.fvc.encoding import FrequentValueEncoder

GEOMETRY = CacheGeometry(64, 16)  # 4 slots x 4-word lines


def _cache(values=(0, 1, 0xFFFFFFFF)) -> CompressedCache:
    return CompressedCache(GEOMETRY, FrequentValueEncoder(list(values), 2))


class TestCompression:
    def test_two_compressible_lines_share_a_slot(self):
        cache = _cache()
        cache.memory.write_line(0x100 >> 4, [0, 0, 42, 0])  # compressible
        cache.memory.write_line(0x140 >> 4, [1, 1, 1, 43])  # compressible
        cache.access(0, 0x100, 0)
        cache.access(0, 0x140, 1)  # same slot, both stay
        assert cache.access(0, 0x100, 0) is True
        assert cache.access(0, 0x140, 1) is True
        assert cache.check_slot_invariant()

    def test_uncompressed_line_owns_the_slot(self):
        cache = _cache()
        cache.memory.write_line(0x100 >> 4, [0, 0, 0, 0])
        cache.memory.write_line(0x140 >> 4, [41, 42, 43, 44])  # not compressible
        cache.access(0, 0x100, 0)
        cache.access(0, 0x140, 41)  # evicts the compressed resident
        assert cache.access(0, 0x100, 0) is False
        assert cache.check_slot_invariant()

    def test_effective_capacity_doubles_on_frequent_data(self):
        """Eight all-zero lines cycled through four physical slots: the
        plain cache thrashes pairwise, the compressed cache holds all."""
        cache = _cache()
        plain = DirectMappedCache(GEOMETRY)
        lines = [0x1000 + index * 16 for index in range(8)]
        for _ in range(4):
            for address in lines:
                cache.access(0, address, 0)
                plain.access(0, address)
        assert cache.stats.misses == 8  # compulsory only
        assert plain.stats.misses > 8
        assert cache.resident_lines() == 8

    def test_store_that_breaks_compression_evicts_buddy(self):
        cache = _cache()
        cache.memory.write_line(0x100 >> 4, [0, 0, 0, 0])
        cache.memory.write_line(0x140 >> 4, [0, 0, 0, 0])
        cache.access(0, 0x100, 0)
        cache.access(0, 0x140, 0)
        # Overwrite three words of one line with infrequent values.
        cache.access(1, 0x100, 50)
        cache.access(1, 0x104, 51)
        cache.access(1, 0x108, 52)  # now 3/4 infrequent: decompresses
        assert cache.check_slot_invariant()
        assert cache.resident_lines() == 1  # buddy evicted

    def test_dirty_writeback_on_eviction(self):
        cache = _cache()
        cache.access(1, 0x100, 42)  # miss + dirty (infrequent value)
        cache.access(0, 0x140, 0)  # uncompressible owner? zero line...
        cache.memory.write_line(0x180 >> 4, [44, 45, 46, 47])
        cache.access(0, 0x180, 44)  # uncompressed, evicts everything
        assert cache.memory.read_word(0x100) == 42

    def test_rejects_set_associative_geometry(self):
        with pytest.raises(ConfigurationError):
            CompressedCache(
                CacheGeometry(64, 16, ways=2), FrequentValueEncoder([0], 1)
            )

    def test_compression_ratio_reporting(self):
        cache = _cache()
        cache.memory.write_line(0x100 >> 4, [0, 0, 0, 0])
        cache.memory.write_line(0x140 >> 4, [41, 42, 43, 44])
        cache.access(0, 0x100, 0)
        cache.access(0, 0x140, 41)
        assert cache.compression_ratio() == 0.5


_program = st.lists(
    st.tuples(
        st.booleans(),
        st.integers(min_value=0, max_value=31),
        st.integers(min_value=0, max_value=3),
    ),
    max_size=300,
)
_VALUES = (0, 1, 0xFFFFFFFF, 0xDEADBEEF)


class TestInvariants:
    @settings(max_examples=60, deadline=None)
    @given(ops=_program)
    def test_values_and_slot_invariant(self, ops):
        cache = _cache()
        state = {}
        for is_store, slot_index, value_index in ops:
            address = 0x1000 + slot_index * 4
            if is_store:
                value = _VALUES[value_index]
                state[address] = value
                cache.access(1, address, value)
            else:
                expected = state.get(address, 0)
                cache.access(0, address, expected)
            assert cache.check_slot_invariant()
        # Final coherence: memory + resident lines agree with the model.
        for address, value in state.items():
            line_addr = address >> GEOMETRY.line_shift
            word = (address >> 2) & GEOMETRY.word_mask
            resident = None
            for slot in cache._slots:
                for entry in slot:
                    if entry[0] == line_addr:
                        resident = entry
            if resident is not None:
                assert resident[2][word] == value
            else:
                assert cache.memory.read_word(address) == value

    @settings(max_examples=40, deadline=None)
    @given(ops=_program)
    def test_never_worse_than_plain_on_all_frequent_data(self, ops):
        """With every stored value frequent, compression can only add
        capacity: misses never exceed the plain cache's."""
        cache = _cache()
        plain = DirectMappedCache(GEOMETRY)
        for is_store, slot_index, value_index in ops:
            address = 0x1000 + slot_index * 4
            value = (0, 1, 0xFFFFFFFF, 1)[value_index]  # all frequent
            cache.access(1 if is_store else 0, address, value)
            plain.access(1 if is_store else 0, address)
        assert cache.stats.misses <= plain.stats.misses
