"""Tests for the hybrid (content-routed FVC + victim buffer) system."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.geometry import CacheGeometry
from repro.common.errors import ConfigurationError
from repro.fvc.encoding import FrequentValueEncoder
from repro.fvc.hybrid import HybridFvcVictimSystem

GEOMETRY = CacheGeometry(64, 16)  # 4 sets x 4-word lines


def _system(threshold=0.5) -> HybridFvcVictimSystem:
    encoder = FrequentValueEncoder([0, 1, 0xFFFFFFFF], 2)
    return HybridFvcVictimSystem(
        GEOMETRY, 8, 2, encoder, route_threshold=threshold
    )


class TestRouting:
    def test_frequent_rich_line_routes_to_fvc(self):
        system = _system()
        system.memory.write_line(0x100 >> 4, [0, 0, 0, 42])
        system.access(0, 0x100, 0)
        system.access(0, 0x140, 0)  # conflict evicts the line
        assert system.routed_to_fvc == 1
        assert system.fvc.probe(0x100 >> 4)
        assert system.access(0, 0x100, 0) is True  # FVC read hit
        assert system.fvc_hits == 1

    def test_infrequent_rich_line_routes_to_victim(self):
        system = _system()
        system.memory.write_line(0x100 >> 4, [42, 43, 44, 0])
        system.access(0, 0x100, 42)
        system.access(0, 0x140, 0)
        assert system.routed_to_victim == 1
        assert not system.fvc.probe(0x100 >> 4)
        # The victim buffer serves the whole line, even infrequent words.
        assert system.access(0, 0x108, 44) is True
        assert system.victim_hits == 1

    def test_threshold_zero_sends_everything_to_fvc(self):
        system = _system(threshold=0.0)
        system.memory.write_line(0x100 >> 4, [42, 43, 44, 45])
        system.access(0, 0x100, 42)
        system.access(0, 0x140, 0)
        assert system.routed_to_fvc == 1
        assert system.routed_to_victim == 0

    def test_threshold_one_requires_fully_frequent(self):
        system = _system(threshold=1.0)
        system.memory.write_line(0x100 >> 4, [0, 0, 0, 42])
        system.access(0, 0x100, 0)
        system.access(0, 0x140, 0)
        assert system.routed_to_victim == 1


class TestCorrectness:
    def test_victim_swap_preserves_dirty_data(self):
        system = _system()
        # The line is majority-infrequent, so eviction routes to the
        # victim buffer, carrying the dirty store with it.
        system.memory.write_line(0x100 >> 4, [42, 43, 44, 45])
        system.access(1, 0x100, 46)  # dirty store (infrequent value)
        system.access(0, 0x140, 0)  # evict -> victim buffer (dirty)
        assert system.access(0, 0x100, 46) is True  # swap back
        assert system.access(0, 0x100, 46) is True  # now a main hit

    def test_victim_buffer_eviction_writes_back(self):
        system = _system()
        system.memory.write_line(0x140 >> 4, [9, 9, 9, 9])
        system.access(1, 0x100, 42)  # dirty, infrequent -> victim route
        system.access(0, 0x140, 9)  # evicts 0x100 to the buffer
        # Push two more infrequent-rich lines through to evict it.
        for base in (0x180, 0x1C0):
            system.memory.write_line(base >> 4, [50, 51, 52, 53])
            system.access(0, base, 50)
        assert system.memory.read_word(0x100) == 42

    def test_validation(self):
        encoder = FrequentValueEncoder([0], 1)
        with pytest.raises(ConfigurationError):
            HybridFvcVictimSystem(CacheGeometry(64, 16, 2), 8, 2, encoder)
        with pytest.raises(ConfigurationError):
            HybridFvcVictimSystem(GEOMETRY, 8, 0, encoder)
        with pytest.raises(ConfigurationError):
            HybridFvcVictimSystem(GEOMETRY, 8, 2, encoder, route_threshold=2.0)


_program = st.lists(
    st.tuples(
        st.booleans(),
        st.integers(min_value=0, max_value=31),
        st.integers(min_value=0, max_value=3),
    ),
    max_size=300,
)
_VALUES = (0, 1, 0xFFFFFFFF, 0xDEADBEEF)


class TestInvariants:
    @settings(max_examples=60, deadline=None)
    @given(ops=_program)
    def test_exclusive_and_replay_consistent(self, ops):
        system = _system()
        state = {}
        for is_store, slot, value_index in ops:
            address = 0x1000 + slot * 4
            if is_store:
                value = _VALUES[value_index]
                state[address] = value
                system.access(1, address, value)
            else:
                system.access(0, address, state.get(address, 0))
            assert system.check_exclusive()
