"""Edge-case tests of the DMC+FVC system beyond the main protocol
suite: accounting exactness, configuration corners, LRU interaction."""

from repro.cache.geometry import CacheGeometry
from repro.fvc.encoding import FrequentValueEncoder
from repro.fvc.system import FvcSystem, FvcSystemConfig

GEOMETRY = CacheGeometry(64, 16)  # 4 sets x 4 words


def _system(**kwargs) -> FvcSystem:
    encoder = FrequentValueEncoder([0, 1, 0xFFFFFFFF], 2)
    return FvcSystem(GEOMETRY, 8, encoder, **kwargs)


class TestTrafficExactness:
    def test_fvc_flush_counts_only_dirty_words(self):
        system = _system()
        system.memory.write_line(0x100 >> 4, [0, 1, 42, 0])
        system.access(0, 0x100, 0)
        system.access(0, 0x140, 0)  # evict -> FVC (clean codes)
        system.access(1, 0x104, 0xFFFFFFFF)  # one dirty word
        writeback_words_before = system.stats.writeback_words
        # Displace the entry: install another line at the same index.
        line_b = (0x100 >> 4) + 8
        system.memory.write_line(line_b, [0, 0, 0, 0])
        system.access(0, line_b << 4, 0)
        conflicting = (line_b << 4) ^ 0x40
        system.memory.write_line(conflicting >> 4, [0, 0, 0, 0])
        system.access(0, conflicting, 0)  # evicts line_b into the FVC
        flushed = system.stats.writeback_words - writeback_words_before
        assert flushed == 1  # exactly the one dirty word

    def test_fvc_read_hits_cost_no_traffic(self):
        system = _system()
        system.memory.write_line(0x100 >> 4, [0, 0, 0, 0])
        system.access(0, 0x100, 0)
        system.access(0, 0x140, 0)
        traffic_before = system.stats.traffic_words
        for word in range(4):
            assert system.access(0, 0x100 + word * 4, 0) is True
        assert system.stats.traffic_words == traffic_before

    def test_clean_eviction_costs_no_writeback(self):
        system = _system()
        system.access(0, 0x100, 0)  # clean fill
        system.access(0, 0x140, 0)  # clean eviction
        assert system.stats.writebacks == 0


class TestConfigurationCorners:
    def test_occupancy_sampling_disabled(self):
        system = _system(config=FvcSystemConfig(occupancy_sample_interval=0))
        for index in range(100):
            system.access(0, 0x100 + (index % 16) * 4, 0)
        # Falls back to the instantaneous fraction.
        assert 0.0 <= system.mean_fvc_frequent_fraction <= 1.0

    def test_inclusive_mode_leaves_entry_resident(self):
        system = FvcSystem(
            GEOMETRY,
            8,
            FrequentValueEncoder([0, 1, 0xFFFFFFFF], 2),
            config=FvcSystemConfig(exclusive=False),
        )
        system.memory.write_line(0x100 >> 4, [0, 42, 0, 0])
        system.access(0, 0x100, 0)
        system.access(0, 0x140, 0)  # evict into FVC
        system.access(0, 0x104, 42)  # infrequent: promote, keep FVC entry
        assert system.fvc.probe(0x100 >> 4)  # inclusive: still resident
        assert not system.check_exclusive()

    def test_single_value_encoder(self):
        system = FvcSystem(GEOMETRY, 8, FrequentValueEncoder([0], 1))
        system.access(0, 0x100, 0)
        system.access(0, 0x140, 0)
        assert system.access(0, 0x100, 0) is True  # zero-word FVC hit


class TestSetAssociativeMain:
    def test_fvc_hit_does_not_touch_main_lru(self):
        """Serving from the FVC must not refresh main-cache recency —
        the line is not resident there."""
        geometry = CacheGeometry(128, 16, ways=2)  # 4 sets, 2 ways
        encoder = FrequentValueEncoder([0], 1)
        system = FvcSystem(geometry, 8, encoder)
        # Fill a set with A and B; evict A by touching C (A is LRU).
        system.access(0, 0x000, 0)  # A
        system.access(0, 0x040, 0)  # B (same set at 4 sets? 0x40>>4=4, set 0)
        system.access(0, 0x080, 0)  # C evicts A -> FVC
        # FVC hit on A; then D should evict B (LRU), not C.
        assert system.access(0, 0x000, 0) is True
        system.access(0, 0x0C0, 0)  # D
        assert system.access(0, 0x080, 0) is True  # C still resident

    def test_four_way_protocol_consistency(self):
        geometry = CacheGeometry(256, 16, ways=4)
        encoder = FrequentValueEncoder([0, 1, 0xFFFFFFFF], 2)
        system = FvcSystem(
            geometry, 8, encoder,
            config=FvcSystemConfig(verify_values=True),
        )
        state = {}
        for index in range(400):
            address = 0x1000 + (index * 7 % 64) * 4
            if index % 3 == 0:
                value = (0, 1, 0xDEAD)[index % 3]
                state[address] = value
                system.access(1, address, value)
            else:
                system.access(0, address, state.get(address, 0))
        assert system.check_exclusive()
