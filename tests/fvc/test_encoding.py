"""Tests for the frequent-value encoder."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.errors import ConfigurationError
from repro.fvc.encoding import FrequentValueEncoder


class TestConstruction:
    def test_capacity_matches_paper(self):
        assert FrequentValueEncoder.capacity(1) == 1
        assert FrequentValueEncoder.capacity(2) == 3
        assert FrequentValueEncoder.capacity(3) == 7

    def test_too_many_values_rejected(self):
        with pytest.raises(ConfigurationError):
            FrequentValueEncoder(list(range(8)), 3)

    def test_duplicates_rejected(self):
        with pytest.raises(ConfigurationError):
            FrequentValueEncoder([1, 1], 3)

    def test_bad_width_rejected(self):
        with pytest.raises(ConfigurationError):
            FrequentValueEncoder([1], 0)
        with pytest.raises(ConfigurationError):
            FrequentValueEncoder([1], 9)

    def test_values_wrapped_to_u32(self):
        encoder = FrequentValueEncoder([-1], 1)
        assert encoder.values == (0xFFFFFFFF,)
        assert encoder.is_frequent(0xFFFFFFFF)

    def test_for_top_values_truncates_and_dedups(self):
        encoder = FrequentValueEncoder.for_top_values(
            [0, 1, 0, 2, 3, 4, 5, 6, 7, 8], 3
        )
        assert encoder.values == (0, 1, 2, 3, 4, 5, 6)

    def test_empty_encoder_is_valid(self):
        encoder = FrequentValueEncoder([], 3)
        assert encoder.num_values == 0
        assert not encoder.is_frequent(0)


class TestEncodeDecode:
    def test_paper_fig7_shape(self):
        # Fig. 7: values 0,-1,1,2,4,8,10 with 3-bit codes; 111=infrequent.
        values = [0, 0xFFFFFFFF, 1, 2, 4, 8, 0x10]
        encoder = FrequentValueEncoder(values, 3)
        assert encoder.infrequent_code == 0b111
        assert encoder.encode(0) == 0b000
        assert encoder.encode(0xFFFFFFFF) == 0b001
        assert encoder.encode(99999) == 0b111

    def test_decode_of_infrequent_rejected(self):
        encoder = FrequentValueEncoder([5], 2)
        with pytest.raises(ConfigurationError):
            encoder.decode(encoder.infrequent_code)
        with pytest.raises(ConfigurationError):
            encoder.decode(1)  # unassigned code

    @given(st.sets(st.integers(min_value=0, max_value=0xFFFFFFFF),
                   min_size=1, max_size=7))
    def test_roundtrip_property(self, values):
        encoder = FrequentValueEncoder(sorted(values), 3)
        for value in values:
            assert encoder.decode(encoder.encode(value)) == value
        probe = 0x12345678
        if probe in values:
            assert encoder.decode(encoder.encode(probe)) == probe
        else:
            assert encoder.encode(probe) == encoder.infrequent_code


class TestLineHelpers:
    def test_encode_line(self):
        encoder = FrequentValueEncoder([0, 1], 2)
        codes = encoder.encode_line([0, 7, 1, 0])
        assert codes == [0, 3, 1, 0]

    def test_merge_line_overlays_frequent_words(self):
        encoder = FrequentValueEncoder([10, 20], 2)
        line = [1, 2, 3, 4]
        encoder.merge_line(line, [0, 3, 1, 3])
        assert line == [10, 2, 20, 4]

    def test_count_frequent(self):
        encoder = FrequentValueEncoder([0], 1)
        assert encoder.count_frequent([0, 1, 0, 1]) == 2

    def test_encode_then_merge_identity_for_frequent_words(self):
        encoder = FrequentValueEncoder([0, 1, 2], 2)
        original = [0, 99, 2, 1]
        codes = encoder.encode_line(original)
        fetched = [0, 99, 0, 0]  # memory copy, frequent words stale
        encoder.merge_line(fetched, codes)
        assert fetched == original

    def test_repr(self):
        assert "1b" in repr(FrequentValueEncoder([0], 1))
