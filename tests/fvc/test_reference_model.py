"""Differential testing of FvcSystem against a naive reference model.

The reference implementation below re-derives the §3 protocol in the
most obvious way possible — dictionaries everywhere, no incremental
counters, no shared state — so agreement on hit/miss decisions across
random replayable programs is strong evidence that the optimised
simulator implements the protocol it claims to.
"""

from __future__ import annotations

from typing import Dict, Tuple

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.geometry import CacheGeometry
from repro.fvc.encoding import FrequentValueEncoder
from repro.fvc.system import FvcSystem, FvcSystemConfig

GEOMETRY = CacheGeometry(64, 16)  # 4 sets x 4-word lines
FVC_ENTRIES = 8
FREQUENT = (0, 1, 0xFFFFFFFF)


class ReferenceFvcModel:
    """Deliberately naive re-implementation of the DMC+FVC protocol.

    Exclusive contents, evict-into-FVC (skipping all-infrequent lines),
    infrequent-word merge-promote with dirty propagation, and no
    write-allocate-frequent — the same defaults as the real system.
    """

    def __init__(self, frequent: Tuple[int, ...]) -> None:
        self.frequent = set(frequent)
        self.memory: Dict[int, int] = {}
        # DMC: set index -> (line_addr, dirty, {word_index: value})
        self.dmc: Dict[int, Tuple[int, bool, Dict[int, int]]] = {}
        # FVC: entry index -> (line_addr, {word_index: value}, {word_index: dirty})
        self.fvc: Dict[int, Tuple[int, Dict[int, int], Dict[int, bool]]] = {}

    # Helpers ------------------------------------------------------------
    def _mem_line(self, line_addr: int) -> Dict[int, int]:
        base = line_addr * 4  # word address of word 0
        return {
            word: self.memory.get(base + word, 0)
            for word in range(GEOMETRY.words_per_line)
        }

    def _write_line_to_memory(self, line_addr: int, data: Dict[int, int]) -> None:
        base = line_addr * 4
        for word, value in data.items():
            self.memory[base + word] = value

    def _evict_dmc(self, set_index: int) -> None:
        if set_index not in self.dmc:
            return
        line_addr, dirty, data = self.dmc.pop(set_index)
        if dirty:
            self._write_line_to_memory(line_addr, data)
        codes = {
            word: value
            for word, value in data.items()
            if value in self.frequent
        }
        if codes:
            self._install_fvc(line_addr, codes, {})

    def _install_fvc(self, line_addr, values, dirty) -> None:
        index = line_addr % FVC_ENTRIES
        self._flush_fvc(index)
        self.fvc[index] = (line_addr, values, dirty)

    def _flush_fvc(self, index: int) -> None:
        if index not in self.fvc:
            return
        line_addr, values, dirty = self.fvc.pop(index)
        base = line_addr * 4
        for word, is_dirty in dirty.items():
            if is_dirty:
                self.memory[base + word] = values[word]

    def _fill_dmc(self, line_addr: int, data: Dict[int, int], dirty: bool) -> None:
        set_index = line_addr % GEOMETRY.num_sets
        self._evict_dmc(set_index)
        self.dmc[set_index] = (line_addr, dirty, data)

    # The protocol ---------------------------------------------------
    def access(self, op: int, byte_addr: int, value: int) -> bool:
        line_addr = byte_addr >> GEOMETRY.line_shift
        word = (byte_addr >> 2) & GEOMETRY.word_mask
        set_index = line_addr % GEOMETRY.num_sets

        # Main-cache probe.
        resident = self.dmc.get(set_index)
        if resident is not None and resident[0] == line_addr:
            _, dirty, data = resident
            if op:
                data[word] = value
                self.dmc[set_index] = (line_addr, True, data)
            return True

        # FVC probe.
        fvc_index = line_addr % FVC_ENTRIES
        entry = self.fvc.get(fvc_index)
        if entry is not None and entry[0] == line_addr:
            _, values, dirty_words = entry
            if op == 0 and word in values:
                return True
            if op == 1 and value in self.frequent:
                values[word] = value
                dirty_words[word] = True
                return True
            # Infrequent word involved: merge, promote (dirty if any
            # FVC word was dirty), retire the entry.
            del self.fvc[fvc_index]
            data = self._mem_line(line_addr)
            data.update(values)
            promoted_dirty = any(dirty_words.values())
            self._fill_dmc(line_addr, data, promoted_dirty)
            if op:
                entry_data = self.dmc[set_index][2]
                entry_data[word] = value
                self.dmc[set_index] = (line_addr, True, entry_data)
            return False

        # Miss in both: conventional fill.
        data = self._mem_line(line_addr)
        self._fill_dmc(line_addr, data, False)
        if op:
            entry_data = self.dmc[set_index][2]
            entry_data[word] = value
            self.dmc[set_index] = (line_addr, True, entry_data)
        return False


_program = st.lists(
    st.tuples(
        st.booleans(),
        st.integers(min_value=0, max_value=47),  # 48 words = 12 lines
        st.integers(min_value=0, max_value=4),
    ),
    max_size=400,
)
_VALUES = (0, 1, 0xFFFFFFFF, 0xDEADBEEF, 0x12345678)


def _replayable(ops):
    state = {}
    records = []
    for is_store, slot, value_index in ops:
        address = 0x4000 + slot * 4
        if is_store:
            value = _VALUES[value_index]
            state[address] = value
            records.append((1, address, value))
        else:
            records.append((0, address, state.get(address, 0)))
    return records


class TestDifferential:
    @settings(max_examples=120, deadline=None)
    @given(ops=_program)
    def test_hit_miss_decisions_agree(self, ops):
        encoder = FrequentValueEncoder(list(FREQUENT), 2)
        system = FvcSystem(
            GEOMETRY,
            FVC_ENTRIES,
            encoder,
            config=FvcSystemConfig(verify_values=True),
        )
        reference = ReferenceFvcModel(FREQUENT)
        for index, record in enumerate(_replayable(ops)):
            got = system.access(*record)
            want = reference.access(*record)
            assert got == want, f"divergence at access {index}: {record}"
        assert system.check_exclusive()

    @settings(max_examples=60, deadline=None)
    @given(ops=_program)
    def test_memory_states_agree_after_run(self, ops):
        """After flushing nothing, the *backing memories* must agree on
        every word either model wrote back."""
        encoder = FrequentValueEncoder(list(FREQUENT), 2)
        system = FvcSystem(GEOMETRY, FVC_ENTRIES, encoder)
        reference = ReferenceFvcModel(FREQUENT)
        for record in _replayable(ops):
            system.access(*record)
            reference.access(*record)
        for word_addr, value in reference.memory.items():
            assert system.memory.read_word(word_addr * 4) == value
