"""Equivalence of the two FVC array organisations at ways=entries=1:1.

A 1-way set-associative FVC array is definitionally a direct-mapped
one; the two implementations must agree operation by operation on any
command sequence — the same cross-validation style as the cache
simulators' direct/1-way test.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fvc.cache import FrequentValueCacheArray, SetAssociativeFvcArray
from repro.fvc.encoding import FrequentValueEncoder

_ENCODER = FrequentValueEncoder([0, 1, 0xFFFFFFFF], 2)
_VALUES = (0, 1, 0xFFFFFFFF, 0xDEADBEEF)

_commands = st.lists(
    st.tuples(
        st.sampled_from(["install", "invalidate", "read", "write"]),
        st.integers(min_value=0, max_value=31),  # line address
        st.integers(min_value=0, max_value=3),  # word index
        st.integers(min_value=0, max_value=3),  # value index
    ),
    max_size=200,
)


class TestDirectEqualsOneWay:
    @settings(max_examples=80, deadline=None)
    @given(commands=_commands)
    def test_operation_by_operation(self, commands):
        direct = FrequentValueCacheArray(8, 4, _ENCODER)
        one_way = SetAssociativeFvcArray(8, 4, _ENCODER, ways=1)
        for command, line_addr, word, value_index in commands:
            value = _VALUES[value_index]
            if command == "install":
                codes = _ENCODER.encode_line([value] * 4)
                displaced_a = direct.install(line_addr, list(codes))
                displaced_b = one_way.install(line_addr, list(codes))
                da = displaced_a and (displaced_a[0], displaced_a[1])
                db = displaced_b and (displaced_b[0], displaced_b[1])
                assert da == db
            elif command == "invalidate":
                entry_a = direct.invalidate(line_addr)
                entry_b = one_way.invalidate(line_addr)
                assert (entry_a is None) == (entry_b is None)
                if entry_a is not None:
                    assert entry_a[:2] == tuple(entry_b[:2]) or (
                        entry_a[0] == entry_b[0] and entry_a[1] == entry_b[1]
                    )
            elif command == "read":
                assert direct.read_word(line_addr, word) == one_way.read_word(
                    line_addr, word
                )
            else:
                assert direct.write_word(
                    line_addr, word, value
                ) == one_way.write_word(line_addr, word, value)
            assert direct.valid_entries == one_way.valid_entries
            assert direct.frequent_words == one_way.frequent_words
            assert sorted(direct.resident_line_addresses()) == sorted(
                one_way.resident_line_addresses()
            )
