"""Tests for the set-associative FVC array extension."""

import pytest

from repro.cache.geometry import CacheGeometry
from repro.common.errors import ConfigurationError
from repro.fvc.cache import SetAssociativeFvcArray
from repro.fvc.encoding import FrequentValueEncoder
from repro.fvc.system import FvcSystem, FvcSystemConfig
from repro.trace.synth import ping_pong_trace


@pytest.fixture
def encoder():
    return FrequentValueEncoder([0, 1, 0xFFFFFFFF], 2)


@pytest.fixture
def fvc(encoder):
    return SetAssociativeFvcArray(
        entries=8, words_per_line=4, encoder=encoder, ways=2
    )


class TestAssociativeArray:
    def test_conflicting_lines_coexist(self, fvc, encoder):
        codes = encoder.encode_line([0, 0, 0, 0])
        # 4 sets: line 1 and line 5 share a set; two ways hold both.
        assert fvc.install(1, list(codes)) is None
        assert fvc.install(5, list(codes)) is None
        assert fvc.probe(1) and fvc.probe(5)

    def test_lru_displacement(self, fvc, encoder):
        codes = encoder.encode_line([0, 0, 0, 0])
        fvc.install(1, list(codes))
        fvc.install(5, list(codes))
        fvc.read_word(1, 0)  # touch 1 -> 5 becomes LRU
        displaced = fvc.install(9, list(codes))
        assert displaced is not None and displaced[0] == 5
        assert fvc.probe(1) and fvc.probe(9) and not fvc.probe(5)

    def test_reinstall_replaces_in_place(self, fvc, encoder):
        fvc.install(1, encoder.encode_line([0, 0, 0, 0]))
        displaced = fvc.install(1, encoder.encode_line([1, 1, 1, 1]))
        assert displaced is not None and displaced[0] == 1
        assert fvc.valid_entries == 1

    def test_write_word_and_dirty(self, fvc, encoder):
        fvc.install(2, encoder.encode_line([99, 99, 99, 99]))
        assert fvc.write_word(2, 1, 1)
        entry = fvc.invalidate(2)
        assert entry[2][1] is True

    def test_occupancy_counters(self, fvc, encoder):
        fvc.install(0, encoder.encode_line([0, 99, 99, 99]))
        assert fvc.frequent_fraction == 0.25
        fvc.invalidate(0)
        assert fvc.valid_entries == 0
        assert fvc.frequent_words == 0

    def test_bad_shapes_rejected(self, encoder):
        with pytest.raises(ConfigurationError):
            SetAssociativeFvcArray(6, 4, encoder)
        with pytest.raises(ConfigurationError):
            SetAssociativeFvcArray(8, 4, encoder, ways=3)
        with pytest.raises(ConfigurationError):
            SetAssociativeFvcArray(8, 4, encoder, ways=16)


class TestAssociativeSystem:
    def test_system_accepts_fvc_ways(self):
        encoder = FrequentValueEncoder([0], 1)
        system = FvcSystem(
            CacheGeometry(64, 16), 8, encoder, fvc_ways=2,
            config=FvcSystemConfig(verify_values=True),
        )
        trace = ping_pong_trace(50, geometry_size_bytes=64, line_bytes=16)
        system.simulate(trace.records)
        assert system.check_exclusive()

    def test_associative_fvc_resolves_fvc_conflicts(self):
        """Two DMC-conflicting lines also alias in a direct-mapped FVC
        of matching size; a 2-way FVC holds both."""
        encoder = FrequentValueEncoder([0], 1)
        geometry = CacheGeometry(64, 16)
        trace = ping_pong_trace(200, geometry_size_bytes=64, line_bytes=16)
        direct = FvcSystem(geometry, 4, encoder, fvc_ways=1)
        assoc = FvcSystem(geometry, 4, encoder, fvc_ways=2)
        direct_stats = direct.simulate(trace.records)
        assoc_stats = assoc.simulate(trace.records)
        assert assoc_stats.misses <= direct_stats.misses
