"""Tests for the two-level hierarchy substrate."""

import pytest

from repro.cache.direct import DirectMappedCache
from repro.cache.geometry import CacheGeometry
from repro.cache.hierarchy import TwoLevelFvcSystem, TwoLevelSystem
from repro.cache.setassoc import SetAssociativeCache
from repro.common.errors import ConfigurationError
from repro.fvc.encoding import FrequentValueEncoder
from repro.trace.synth import cyclic_trace, ping_pong_trace

L1 = CacheGeometry(4 * 1024, 32)
L2 = CacheGeometry(16 * 1024, 32, ways=4)


class TestTwoLevelSystem:
    def test_l2_sees_only_l1_misses(self):
        system = TwoLevelSystem(L1, L2)
        trace = cyclic_trace(256, passes=4)  # 1 KB fits L1
        system.simulate(trace.records)
        assert system.stats.misses < len(trace) * 0.1
        assert system.l2_stats.accesses == system.stats.fills + (
            system.stats.writebacks
        )

    def test_l2_absorbs_l1_capacity_misses(self):
        # 8 KB working set: misses L1 (4 KB) every pass, fits L2 (16 KB).
        trace = cyclic_trace(2048, passes=4)
        system = TwoLevelSystem(L1, L2)
        system.simulate(trace.records)
        assert system.stats.miss_rate > 0.05  # L1 thrashes
        assert system.global_miss_rate < 0.05  # L2 holds it

    def test_global_miss_rate_bounded_by_l1(self):
        trace = ping_pong_trace(200, geometry_size_bytes=4 * 1024)
        system = TwoLevelSystem(L1, L2)
        system.simulate(trace.records)
        assert system.global_miss_rate <= system.stats.miss_rate

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TwoLevelSystem(L2, L1)  # L2 smaller than L1
        with pytest.raises(ConfigurationError):
            TwoLevelSystem(
                CacheGeometry(4 * 1024, 64), CacheGeometry(16 * 1024, 32)
            )

    def test_set_associative_l1(self):
        system = TwoLevelSystem(CacheGeometry(4 * 1024, 32, ways=2), L2)
        trace = cyclic_trace(256, passes=2)
        system.simulate(trace.records)
        assert system.stats.accesses == len(trace)


class TestTwoLevelFvcSystem:
    def test_fvc_cuts_l2_traffic(self):
        # A ping-pong pair of all-zero lines: the FVC absorbs the
        # conflict, so the L2 sees almost nothing after warm-up.
        trace = ping_pong_trace(300, geometry_size_bytes=4 * 1024)
        encoder = FrequentValueEncoder([0], 1)
        plain = TwoLevelSystem(L1, L2)
        plain.simulate(trace.records)
        fvc = TwoLevelFvcSystem(L1, L2, 64, encoder)
        fvc.simulate(trace.records)
        assert fvc.stats.misses < plain.stats.misses
        assert fvc.l2_stats.accesses < plain.l2_stats.accesses
        assert fvc.fvc_hits > 0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TwoLevelFvcSystem(L2, L1, 64, FrequentValueEncoder([0], 1))

    def test_processor_visible_accesses(self):
        trace = cyclic_trace(512, passes=2)
        system = TwoLevelFvcSystem(L1, L2, 64, FrequentValueEncoder([0], 1))
        system.simulate(trace.records)
        assert system.stats.accesses == len(trace)


class TestVictimLog:
    """Dirty evictions report the *victim* line's address."""

    def test_direct_mapped_logs_victim_line(self):
        cache = DirectMappedCache(L1)
        cache.victim_log = []
        a = 0x10000
        b = a + L1.size_bytes  # same set, different tag
        cache.access(1, a)  # fill dirty
        cache.access(0, b)  # evicts a
        assert cache.victim_log == [a >> L1.line_shift]

    def test_direct_mapped_clean_eviction_logs_nothing(self):
        cache = DirectMappedCache(L1)
        cache.victim_log = []
        a = 0x10000
        cache.access(0, a)  # fill clean
        cache.access(0, a + L1.size_bytes)
        assert cache.victim_log == []

    def test_set_associative_logs_lru_victim(self):
        geometry = CacheGeometry(4 * 1024, 32, ways=2)
        cache = SetAssociativeCache(geometry)
        cache.victim_log = []
        stride = geometry.size_bytes // 2  # one way's worth
        a, b, c = 0x10000, 0x10000 + stride, 0x10000 + 2 * stride
        cache.access(1, a)  # dirty, becomes LRU after b
        cache.access(0, b)
        cache.access(0, c)  # evicts a
        assert cache.victim_log == [a >> geometry.line_shift]

    def test_hierarchy_writeback_hits_victim_address(self):
        system = TwoLevelSystem(L1, L2)
        recorded = []
        real = system._l2.access

        def spy(op, byte_addr):
            recorded.append((op, byte_addr))
            return real(op, byte_addr)

        system._l2.access = spy
        a = 0x10000
        b = a + L1.size_bytes  # aliases a in L1, different L2 set
        system.access(1, a)  # dirty fill of a
        system.access(0, b)  # evicts a from L1
        assert (1, a) in recorded  # write-back carries a's address...
        assert (1, b) not in recorded  # ...not the incoming access's

    def test_hierarchy_batch_writeback_hits_victim_address(self):
        system = TwoLevelSystem(L1, L2)
        recorded = []
        real = system._l2.access

        def spy(op, byte_addr):
            recorded.append((op, byte_addr))
            return real(op, byte_addr)

        system._l2.access = spy
        a = 0x10000
        b = a + L1.size_bytes
        system.simulate_batch([(1, a, 0), (0, b, 0)])
        assert (1, a) in recorded
        assert (1, b) not in recorded

    def test_fvc_hierarchy_writeback_hits_victim_address(self):
        # Value 99 is not frequent, so a's line is discarded (not moved
        # into the FVC) and its dirty words are written back to the L2.
        system = TwoLevelFvcSystem(L1, L2, 64, FrequentValueEncoder([0], 1))
        recorded = []
        real = system._l2.access

        def spy(op, byte_addr):
            recorded.append((op, byte_addr))
            return real(op, byte_addr)

        system._l2.access = spy
        a = 0x10000
        b = a + L1.size_bytes
        system.access(1, a, 99)
        system.access(0, b, 0)
        assert (1, a) in recorded
        assert (1, b) not in recorded
