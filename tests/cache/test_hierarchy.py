"""Tests for the two-level hierarchy substrate."""

import pytest

from repro.cache.geometry import CacheGeometry
from repro.cache.hierarchy import TwoLevelFvcSystem, TwoLevelSystem
from repro.common.errors import ConfigurationError
from repro.fvc.encoding import FrequentValueEncoder
from repro.trace.synth import cyclic_trace, ping_pong_trace

L1 = CacheGeometry(4 * 1024, 32)
L2 = CacheGeometry(16 * 1024, 32, ways=4)


class TestTwoLevelSystem:
    def test_l2_sees_only_l1_misses(self):
        system = TwoLevelSystem(L1, L2)
        trace = cyclic_trace(256, passes=4)  # 1 KB fits L1
        system.simulate(trace.records)
        assert system.stats.misses < len(trace) * 0.1
        assert system.l2_stats.accesses == system.stats.fills + (
            system.stats.writebacks
        )

    def test_l2_absorbs_l1_capacity_misses(self):
        # 8 KB working set: misses L1 (4 KB) every pass, fits L2 (16 KB).
        trace = cyclic_trace(2048, passes=4)
        system = TwoLevelSystem(L1, L2)
        system.simulate(trace.records)
        assert system.stats.miss_rate > 0.05  # L1 thrashes
        assert system.global_miss_rate < 0.05  # L2 holds it

    def test_global_miss_rate_bounded_by_l1(self):
        trace = ping_pong_trace(200, geometry_size_bytes=4 * 1024)
        system = TwoLevelSystem(L1, L2)
        system.simulate(trace.records)
        assert system.global_miss_rate <= system.stats.miss_rate

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TwoLevelSystem(L2, L1)  # L2 smaller than L1
        with pytest.raises(ConfigurationError):
            TwoLevelSystem(
                CacheGeometry(4 * 1024, 64), CacheGeometry(16 * 1024, 32)
            )

    def test_set_associative_l1(self):
        system = TwoLevelSystem(CacheGeometry(4 * 1024, 32, ways=2), L2)
        trace = cyclic_trace(256, passes=2)
        system.simulate(trace.records)
        assert system.stats.accesses == len(trace)


class TestTwoLevelFvcSystem:
    def test_fvc_cuts_l2_traffic(self):
        # A ping-pong pair of all-zero lines: the FVC absorbs the
        # conflict, so the L2 sees almost nothing after warm-up.
        trace = ping_pong_trace(300, geometry_size_bytes=4 * 1024)
        encoder = FrequentValueEncoder([0], 1)
        plain = TwoLevelSystem(L1, L2)
        plain.simulate(trace.records)
        fvc = TwoLevelFvcSystem(L1, L2, 64, encoder)
        fvc.simulate(trace.records)
        assert fvc.stats.misses < plain.stats.misses
        assert fvc.l2_stats.accesses < plain.l2_stats.accesses
        assert fvc.fvc_hits > 0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TwoLevelFvcSystem(L2, L1, 64, FrequentValueEncoder([0], 1))

    def test_processor_visible_accesses(self):
        trace = cyclic_trace(512, passes=2)
        system = TwoLevelFvcSystem(L1, L2, 64, FrequentValueEncoder([0], 1))
        system.simulate(trace.records)
        assert system.stats.accesses == len(trace)
