"""Tests for 3C miss classification."""

from repro.cache.classify import classify_misses
from repro.cache.geometry import CacheGeometry


def _line_trace(lines, line_bytes=16):
    return [(0, line * line_bytes, 0) for line in lines]


class TestClassification:
    def test_pure_compulsory(self):
        # Touch 4 distinct lines once in a 4-line cache.
        result = classify_misses(_line_trace([0, 1, 2, 3]), CacheGeometry(64, 16))
        assert result.compulsory == 4
        assert result.capacity == 0
        assert result.conflict == 0

    def test_pure_conflict(self):
        # Two lines aliasing in the direct-mapped cache but fitting a
        # fully-associative one: all repeat misses are conflicts.
        trace = _line_trace([0, 4, 0, 4, 0, 4])
        result = classify_misses(trace, CacheGeometry(64, 16))
        assert result.compulsory == 2
        assert result.conflict == 4
        assert result.capacity == 0

    def test_pure_capacity(self):
        # Cyclic sweep over 8 lines through a 4-line cache: LRU misses
        # everything, so repeats are capacity misses.
        trace = _line_trace(list(range(8)) * 3)
        result = classify_misses(trace, CacheGeometry(64, 16))
        assert result.compulsory == 8
        assert result.capacity == 16
        assert result.conflict == 0

    def test_counts_sum_to_misses(self):
        trace = _line_trace([0, 4, 1, 0, 9, 4, 2, 0, 1] * 5)
        result = classify_misses(trace, CacheGeometry(64, 16))
        assert result.misses == result.compulsory + result.capacity + result.conflict
        assert 0 < result.miss_rate <= 1
        assert abs(sum(result.fraction(k) for k in
                       ("compulsory", "capacity", "conflict")) - 1.0) < 1e-9

    def test_set_associative_target(self):
        trace = _line_trace([0, 4, 0, 4] * 4)
        direct = classify_misses(trace, CacheGeometry(64, 16))
        two_way = classify_misses(trace, CacheGeometry(64, 16, ways=2))
        assert two_way.conflict < direct.conflict

    def test_empty_trace(self):
        result = classify_misses([], CacheGeometry(64, 16))
        assert result.misses == 0
        assert result.miss_rate == 0.0
        assert result.fraction("conflict") == 0.0
