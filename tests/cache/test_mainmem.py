"""Tests for the simulator backing store."""

from repro.cache.mainmem import MainMemory


class TestMainMemory:
    def test_unbacked_reads_zero(self):
        assert MainMemory().read_word(0x1000) == 0

    def test_word_roundtrip(self):
        memory = MainMemory()
        memory.write_word(0x1000, 99)
        assert memory.read_word(0x1000) == 99

    def test_line_roundtrip(self):
        memory = MainMemory()
        memory.write_line(5, [1, 2, 3, 4])
        assert memory.read_line(5, 4) == [1, 2, 3, 4]

    def test_line_and_word_views_agree(self):
        memory = MainMemory()
        memory.write_line(2, [10, 20, 30, 40])  # 4-word lines
        base = 2 * 4 * 4
        assert memory.read_word(base + 4) == 20
        memory.write_word(base + 8, 77)
        assert memory.read_line(2, 4) == [10, 20, 77, 40]

    def test_len_counts_backed_words(self):
        memory = MainMemory()
        memory.write_line(0, [0, 1])
        assert len(memory) == 2
