"""Tests for cache geometry and address decomposition."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cache.geometry import CacheGeometry
from repro.common.errors import ConfigurationError


class TestDerivedShape:
    def test_paper_headline_config(self):
        geometry = CacheGeometry(16 * 1024, 32)
        assert geometry.num_lines == 512
        assert geometry.num_sets == 512
        assert geometry.words_per_line == 8
        assert geometry.line_shift == 5

    def test_set_associative_shape(self):
        geometry = CacheGeometry(16 * 1024, 32, ways=4)
        assert geometry.num_lines == 512
        assert geometry.num_sets == 128

    def test_describe(self):
        assert CacheGeometry(16 * 1024, 32).describe() == "16KB/32B/direct"
        assert CacheGeometry(16 * 1024, 32, 2).describe() == "16KB/32B/2-way"
        assert (
            CacheGeometry(4 * 32, 32, 4).describe() == "0KB/32B/fully-assoc"
        )


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"size_bytes": 3000, "line_bytes": 32},
            {"size_bytes": 4096, "line_bytes": 24},
            {"size_bytes": 4096, "line_bytes": 32, "ways": 3},
            {"size_bytes": 4096, "line_bytes": 2},
            {"size_bytes": 32, "line_bytes": 32, "ways": 2},
        ],
    )
    def test_bad_shapes_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            CacheGeometry(**kwargs)


class TestAddressDecomposition:
    @given(st.integers(min_value=0, max_value=0xFFFFFFFF))
    def test_decomposition_reassembles(self, address):
        geometry = CacheGeometry(8 * 1024, 16, ways=2)
        line_addr = geometry.line_address(address)
        assert line_addr == address >> geometry.line_shift
        assert geometry.set_index(address) == line_addr & geometry.set_mask
        assert geometry.tag(address) == line_addr >> geometry.set_shift
        reassembled = (
            (geometry.tag(address) << geometry.set_shift)
            | geometry.set_index(address)
        ) << geometry.line_shift
        assert reassembled <= address < reassembled + geometry.line_bytes

    def test_word_index(self):
        geometry = CacheGeometry(16 * 1024, 32)
        assert geometry.word_index(0x20) == 0
        assert geometry.word_index(0x24) == 1
        assert geometry.word_index(0x3C) == 7
