"""Tests for the set-associative (LRU) cache simulator."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.geometry import CacheGeometry
from repro.cache.setassoc import SetAssociativeCache


class TestLruBehaviour:
    def test_two_conflicting_lines_coexist_at_two_ways(self):
        cache = SetAssociativeCache(CacheGeometry(128, 16, ways=2))
        cache.access(0, 0x000)
        cache.access(0, 0x040)  # same set at 4 sets
        assert cache.access(0, 0x000) is True
        assert cache.access(0, 0x040) is True

    def test_lru_victim_selection(self):
        cache = SetAssociativeCache(CacheGeometry(128, 16, ways=2))
        cache.access(0, 0x000)  # A
        cache.access(0, 0x040)  # B
        cache.access(0, 0x000)  # touch A (B becomes LRU)
        cache.access(0, 0x080)  # C evicts B
        assert cache.access(0, 0x000) is True
        assert cache.access(0, 0x040) is False

    def test_dirty_eviction_writes_back(self):
        cache = SetAssociativeCache(CacheGeometry(32, 16, ways=2))
        cache.access(1, 0x000)
        cache.access(0, 0x010)
        cache.access(0, 0x020)  # evicts dirty LRU 0x000
        assert cache.stats.writebacks == 1

    def test_fully_associative_constructor(self):
        cache = SetAssociativeCache.fully_associative(4, 16)
        assert cache.geometry.num_sets == 1
        assert cache.geometry.ways == 4
        for index in range(4):
            cache.access(0, index * 16)
        assert cache.resident_lines() == 4
        assert all(cache.contains(index * 16) for index in range(4))
        cache.access(0, 4 * 16)
        assert not cache.contains(0)  # LRU evicted

    def test_contains(self):
        cache = SetAssociativeCache(CacheGeometry(128, 16, ways=2))
        cache.access(0, 0x40)
        assert cache.contains(0x4C)
        assert not cache.contains(0x80)


class TestLruStackProperty:
    """Classic inclusion property: for fully-associative LRU, the hits
    of a smaller cache are a subset of a bigger one's on any trace."""

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(st.integers(min_value=0, max_value=31), max_size=400)
    )
    def test_inclusion(self, lines):
        small = SetAssociativeCache.fully_associative(4, 16)
        large = SetAssociativeCache.fully_associative(16, 16)
        for line in lines:
            address = line * 16
            small_hit = small.access(0, address)
            large_hit = large.access(0, address)
            assert not (small_hit and not large_hit)
        assert large.stats.hits >= small.stats.hits

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(st.integers(min_value=0, max_value=63), max_size=400)
    )
    def test_more_ways_never_more_misses_fully_assoc(self, lines):
        # With a single set, adding ways = growing the LRU stack.
        two = SetAssociativeCache.fully_associative(2, 16)
        eight = SetAssociativeCache.fully_associative(8, 16)
        for line in lines:
            two.access(0, line * 16)
            eight.access(0, line * 16)
        assert eight.stats.misses <= two.stats.misses
