"""Tests for the direct-mapped cache simulator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.direct import DirectMappedCache
from repro.cache.geometry import CacheGeometry
from repro.cache.setassoc import SetAssociativeCache
from repro.common.errors import ConfigurationError


def _tiny() -> DirectMappedCache:
    # 4 sets of 16-byte lines.
    return DirectMappedCache(CacheGeometry(64, 16))


class TestBasicBehaviour:
    def test_cold_miss_then_hit(self):
        cache = _tiny()
        assert cache.access(0, 0x100) is False
        assert cache.access(0, 0x104) is True  # same line
        assert cache.stats.read_misses == 1
        assert cache.stats.read_hits == 1

    def test_conflict_eviction(self):
        cache = _tiny()
        cache.access(0, 0x100)
        cache.access(0, 0x140)  # 64 bytes apart -> same set, different tag
        assert cache.access(0, 0x100) is False  # evicted

    def test_write_back_only_dirty_lines(self):
        cache = _tiny()
        cache.access(0, 0x100)  # clean line
        cache.access(0, 0x140)  # evicts clean: no writeback
        assert cache.stats.writebacks == 0
        cache.access(1, 0x140)  # dirty it
        cache.access(0, 0x100)  # evicts dirty: one writeback
        assert cache.stats.writebacks == 1
        assert cache.stats.writeback_words == 4

    def test_write_allocate(self):
        cache = _tiny()
        assert cache.access(1, 0x100) is False
        assert cache.access(0, 0x100) is True
        assert cache.stats.write_misses == 1
        assert cache.stats.fills == 2 - 1

    def test_contains(self):
        cache = _tiny()
        cache.access(0, 0x100)
        assert cache.contains(0x10C)
        assert not cache.contains(0x200)

    def test_flush_writes_back_dirty(self):
        cache = _tiny()
        cache.access(1, 0x100)
        cache.flush()
        assert cache.stats.writebacks == 1
        assert not cache.contains(0x100)

    def test_requires_direct_mapped_geometry(self):
        with pytest.raises(ConfigurationError):
            DirectMappedCache(CacheGeometry(64, 16, ways=2))

    def test_simulate_counts_all_records(self):
        cache = _tiny()
        cache.simulate([(0, 0, 0), (1, 16, 0), (0, 0, 0)])
        assert cache.stats.accesses == 3


class TestEquivalenceWithOneWaySetAssociative:
    """A direct-mapped cache is a 1-way set-associative cache; the two
    simulators must agree access by access on any trace."""

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=1),
                st.integers(min_value=0, max_value=63),
            ),
            max_size=300,
        )
    )
    def test_agreement(self, ops):
        geometry = CacheGeometry(256, 16)
        direct = DirectMappedCache(geometry)
        one_way = SetAssociativeCache(geometry)
        for op, line in ops:
            address = line * 16
            assert direct.access(op, address) == one_way.access(op, address)
        assert direct.stats.as_dict() == one_way.stats.as_dict()
