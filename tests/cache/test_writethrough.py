"""Tests for the write-through baseline."""

import pytest

from repro.cache.direct import DirectMappedCache
from repro.cache.geometry import CacheGeometry
from repro.cache.writethrough import WriteThroughCache
from repro.common.errors import ConfigurationError


def _tiny() -> WriteThroughCache:
    return WriteThroughCache(CacheGeometry(64, 16))


class TestWriteThrough:
    def test_every_store_hits_the_bus(self):
        cache = _tiny()
        cache.access(1, 0x100)
        cache.access(1, 0x100)
        cache.access(1, 0x100)
        assert cache.stats.writeback_words == 3

    def test_store_miss_allocates(self):
        cache = _tiny()
        assert cache.access(1, 0x100) is False
        assert cache.access(0, 0x100) is True  # allocated by the store
        assert cache.stats.fill_words == 4

    def test_read_path_like_write_back(self):
        cache = _tiny()
        assert cache.access(0, 0x100) is False
        assert cache.access(0, 0x104) is True
        assert cache.stats.fill_words == 4

    def test_rejects_set_associative(self):
        with pytest.raises(ConfigurationError):
            WriteThroughCache(CacheGeometry(64, 16, ways=2))

    def test_traffic_exceeds_write_back_on_store_hit_trace(self):
        # The paper's premise: write-through generates far more traffic.
        # Repeated stores to a resident line cost one bus word each under
        # write-through but nothing until eviction under write-back.
        records = [(1, (i % 4) * 4, 0) for i in range(400)]
        through = _tiny().simulate(records)
        geometry = CacheGeometry(64, 16)
        back = DirectMappedCache(geometry).simulate(records)
        assert through.traffic_words > 10 * back.traffic_words
