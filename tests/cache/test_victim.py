"""Tests for the victim cache system."""

import pytest

from repro.cache.geometry import CacheGeometry
from repro.cache.victim import VictimCacheSystem
from repro.common.errors import ConfigurationError


def _system(victims: int = 2) -> VictimCacheSystem:
    return VictimCacheSystem(CacheGeometry(64, 16), victims)  # 4 sets


class TestVictimBehaviour:
    def test_evicted_line_lands_in_victim_buffer(self):
        system = _system()
        system.access(0, 0x100)
        system.access(0, 0x140)  # conflicts, evicts 0x100
        assert system.victim_resident(0x100)

    def test_victim_hit_swaps(self):
        system = _system()
        system.access(0, 0x100)
        system.access(0, 0x140)
        assert system.access(0, 0x100) is True  # victim hit
        assert system.vc_hits == 1
        # After the swap, 0x140 sits in the buffer.
        assert system.victim_resident(0x140)
        assert system.access(0, 0x140) is True

    def test_ping_pong_eliminated(self):
        """The motivating pattern: alternating conflicting lines miss
        every time with a bare DMC but hit after two cold misses here."""
        system = _system()
        for _ in range(10):
            system.access(0, 0x100)
            system.access(0, 0x140)
        assert system.stats.misses == 2
        assert system.vc_hits == 18

    def test_lru_eviction_from_buffer_writes_back_dirty(self):
        system = _system(victims=1)
        system.access(1, 0x100)  # dirty
        system.access(0, 0x140)  # 0x100 -> buffer
        system.access(0, 0x180)  # 0x140 -> buffer, dirty 0x100 evicted
        assert system.stats.writebacks == 1

    def test_dirty_bit_travels_with_swap(self):
        system = _system()
        system.access(1, 0x100)  # dirty A
        system.access(0, 0x140)  # A -> buffer (dirty)
        system.access(0, 0x100)  # swap back: A dirty in DMC, B clean in VC
        system.access(0, 0x140)  # swap again: A (dirty) -> buffer
        system.access(0, 0x180)  # B -> buffer, evict A: must write back
        system.access(0, 0x1C0)  # evict B (clean): no writeback
        assert system.stats.writebacks == 1

    def test_configuration_validation(self):
        with pytest.raises(ConfigurationError):
            VictimCacheSystem(CacheGeometry(64, 16, ways=2), 4)
        with pytest.raises(ConfigurationError):
            VictimCacheSystem(CacheGeometry(64, 16), 0)

    def test_overall_stats_split(self):
        system = _system()
        system.access(0, 0x100)
        system.access(0, 0x100)
        system.access(0, 0x140)
        system.access(0, 0x100)
        assert system.stats.hits == system.dmc_hits + system.vc_hits

    def test_storage_accounting(self):
        system = VictimCacheSystem(CacheGeometry(4 * 1024, 32), 16)
        # 16 entries x (256 data bits + 27 tag bits + 2 state) = 570 B.
        assert system.storage_bytes() == (16 * (256 + 27 + 2) + 7) // 8
