"""`simulate_batch` must be bit-identical to per-access `simulate`.

The batch paths re-state the same state machines with hoisted locals;
these tests pin the equivalence on synthetic stress traces and on a
real workload trace, across every simulator that grew a batch loop.
"""

import pytest

from repro.cache.direct import DirectMappedCache
from repro.cache.geometry import CacheGeometry
from repro.cache.hierarchy import TwoLevelFvcSystem, TwoLevelSystem
from repro.cache.setassoc import SetAssociativeCache
from repro.experiments.common import encoder_for
from repro.fvc.encoding import FrequentValueEncoder
from repro.fvc.system import FvcSystem, FvcSystemConfig
from repro.trace.synth import cyclic_trace, ping_pong_trace, zipf_value_trace

GEOMETRY = CacheGeometry(4 * 1024, 32)
L2 = CacheGeometry(16 * 1024, 32, ways=4)


def _stress_traces():
    return [
        zipf_value_trace(6000, seed=7),
        cyclic_trace(2048, passes=3),  # thrashes a 4 KB cache
        ping_pong_trace(400, geometry_size_bytes=4 * 1024),
    ]


def _assert_same_stats(per_access, batch):
    assert batch.as_dict() == per_access.as_dict()


class TestBaselineBatch:
    @pytest.mark.parametrize("ways", [1, 2, 4])
    def test_synthetic_traces(self, ways):
        geometry = CacheGeometry(4 * 1024, 32, ways=ways)
        cls = DirectMappedCache if ways == 1 else SetAssociativeCache
        for trace in _stress_traces():
            _assert_same_stats(
                cls(geometry).simulate(trace.records),
                cls(geometry).simulate_batch(trace.records),
            )

    def test_real_trace_direct(self, gcc_trace):
        _assert_same_stats(
            DirectMappedCache(GEOMETRY).simulate(gcc_trace.records),
            DirectMappedCache(GEOMETRY).simulate_batch(gcc_trace.records),
        )

    def test_real_trace_two_way(self, gcc_trace):
        geometry = CacheGeometry(4 * 1024, 32, ways=2)
        _assert_same_stats(
            SetAssociativeCache(geometry).simulate(gcc_trace.records),
            SetAssociativeCache(geometry).simulate_batch(gcc_trace.records),
        )

    def test_batch_leaves_identical_state(self):
        trace = cyclic_trace(2048, passes=2)
        one = DirectMappedCache(GEOMETRY)
        one.simulate(trace.records)
        other = DirectMappedCache(GEOMETRY)
        other.simulate_batch(trace.records)
        # Flushing both drains the same dirty lines.
        one.flush()
        other.flush()
        assert one.stats.as_dict() == other.stats.as_dict()


class TestFvcBatch:
    def test_synthetic_traces(self):
        encoder = FrequentValueEncoder([0, 1, 2, 3, 4, 5, 6], 3)
        for trace in _stress_traces():
            per_access = FvcSystem(GEOMETRY, 128, encoder)
            per_access.simulate(trace.records)
            batch = FvcSystem(GEOMETRY, 128, encoder)
            batch.simulate_batch(trace.records)
            _assert_same_stats(per_access.stats, batch.stats)
            assert batch.fvc_hits == per_access.fvc_hits
            assert batch.fvc_read_hits == per_access.fvc_read_hits
            assert batch.fvc_write_hits == per_access.fvc_write_hits
            assert batch.main_hits == per_access.main_hits

    def test_real_trace_with_verification(self, gcc_trace):
        # The value oracle checks every served value inside the batch
        # loop too, so equivalence covers contents, not just counters.
        encoder = encoder_for(gcc_trace, 7)
        config = FvcSystemConfig(verify_values=True)
        per_access = FvcSystem(GEOMETRY, 256, encoder, config=config)
        per_access.simulate(gcc_trace.records)
        batch = FvcSystem(GEOMETRY, 256, encoder, config=config)
        batch.simulate_batch(gcc_trace.records)
        _assert_same_stats(per_access.stats, batch.stats)
        assert batch.fvc_hits == per_access.fvc_hits

    def test_occupancy_sampling_preserved(self):
        trace = zipf_value_trace(6000, seed=7)
        encoder = FrequentValueEncoder([0, 1, 2, 3, 4, 5, 6], 3)
        config = FvcSystemConfig(occupancy_sample_interval=256)
        per_access = FvcSystem(GEOMETRY, 128, encoder, config=config)
        per_access.simulate(trace.records)
        batch = FvcSystem(GEOMETRY, 128, encoder, config=config)
        batch.simulate_batch(trace.records)
        assert batch._occupancy_samples == per_access._occupancy_samples
        assert (
            batch.mean_fvc_frequent_fraction
            == per_access.mean_fvc_frequent_fraction
        )


class TestHierarchyBatch:
    def test_two_level(self):
        for trace in _stress_traces():
            per_access = TwoLevelSystem(GEOMETRY, L2)
            per_access.simulate(trace.records)
            batch = TwoLevelSystem(GEOMETRY, L2)
            batch.simulate_batch(trace.records)
            _assert_same_stats(per_access.stats, batch.stats)
            _assert_same_stats(per_access.l2_stats, batch.l2_stats)

    def test_two_level_fvc(self):
        encoder = FrequentValueEncoder([0], 1)
        for trace in _stress_traces():
            per_access = TwoLevelFvcSystem(GEOMETRY, L2, 64, encoder)
            per_access.simulate(trace.records)
            batch = TwoLevelFvcSystem(GEOMETRY, L2, 64, encoder)
            batch.simulate_batch(trace.records)
            _assert_same_stats(per_access.stats, batch.stats)
            _assert_same_stats(per_access.l2_stats, batch.l2_stats)
            assert batch.fvc_hits == per_access.fvc_hits
