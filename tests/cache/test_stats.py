"""Tests for the shared cache statistics counters."""

from repro.cache.stats import CacheStats


def _filled() -> CacheStats:
    stats = CacheStats()
    stats.read_hits = 70
    stats.read_misses = 20
    stats.write_hits = 5
    stats.write_misses = 5
    stats.fills = 25
    stats.fill_words = 200
    stats.writebacks = 4
    stats.writeback_words = 32
    return stats


class TestAggregates:
    def test_totals(self):
        stats = _filled()
        assert stats.accesses == 100
        assert stats.hits == 75
        assert stats.misses == 25
        assert stats.miss_rate == 0.25
        assert stats.hit_rate == 0.75
        assert stats.traffic_words == 232

    def test_empty_rates_are_zero(self):
        stats = CacheStats()
        assert stats.miss_rate == 0.0
        assert stats.hit_rate == 0.0

    def test_merge(self):
        merged = _filled()
        merged.merge(_filled())
        assert merged.accesses == 200
        assert merged.traffic_words == 464

    def test_as_dict(self):
        snapshot = _filled().as_dict()
        assert snapshot["misses"] == 25
        assert snapshot["miss_rate"] == 0.25
        assert snapshot["fill_words"] == 200

    def test_repr_mentions_miss_rate(self):
        assert "miss_rate" in repr(_filled())
