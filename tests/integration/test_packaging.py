"""Packaging and public-surface tests."""

import importlib
import pkgutil

import repro


class TestPublicSurface:
    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        major, minor, patch = repro.__version__.split(".")
        assert int(major) >= 1

    def test_every_module_imports(self):
        """Every module in the package imports cleanly (no hidden
        import-time dependencies or syntax rot in rarely-used paths)."""
        failures = []
        for module_info in pkgutil.walk_packages(
            repro.__path__, prefix="repro."
        ):
            try:
                importlib.import_module(module_info.name)
            except Exception as error:  # pragma: no cover - report below
                failures.append((module_info.name, error))
        assert not failures

    def test_every_public_module_has_docstring(self):
        for module_info in pkgutil.walk_packages(
            repro.__path__, prefix="repro."
        ):
            module = importlib.import_module(module_info.name)
            assert module.__doc__, f"{module_info.name} lacks a docstring"

    def test_subpackage_exports_resolve(self):
        for package_name in (
            "repro.cache",
            "repro.fvc",
            "repro.trace",
            "repro.profiling",
            "repro.timing",
            "repro.workloads",
            "repro.experiments",
        ):
            package = importlib.import_module(package_name)
            for name in getattr(package, "__all__", []):
                assert hasattr(package, name), f"{package_name}.{name}"
