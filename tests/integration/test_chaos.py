"""Chaos suite: experiments under injected faults either finish
byte-identical to a fault-free run or fail with a typed error — never
silently corrupt.

Covers the robustness acceptance paths end to end: a fig13 run with a
corrupted trace-cache entry self-heals; a run killed mid-flight by an
injected crash resumes from its checkpoint bit-identically; a served
job survives a worker crash and a result-store bit-flip; and a fault
plan replays its injections at identical points."""

import dataclasses
import os
import subprocess
import sys
from pathlib import Path

import pytest

import repro
from repro.common.errors import FaultInjected
from repro.engine.checkpoint import RunCheckpoint
from repro.engine.trace_cache import TraceCache
from repro.experiments.registry import run_experiment
from repro.experiments.render import dumps_canonical
from repro.faults import install, reset
from repro.faults.plan import FaultPlan
from repro.workloads.store import TraceStore

_EXPERIMENT = "fig13"


def _fingerprint(result) -> str:
    """Canonical byte-for-byte encoding of an experiment result."""
    return dumps_canonical(dataclasses.asdict(result))


@pytest.fixture(autouse=True)
def _clean_plan():
    reset()
    yield
    reset()


@pytest.fixture(scope="module")
def baseline(store):
    """The fault-free fig13 fingerprint every chaos run must match."""
    reset()
    return _fingerprint(run_experiment(_EXPERIMENT, store, fast=True))


class TestTraceCacheChaos:
    def test_fig13_self_heals_a_corrupted_cache_entry(
        self, baseline, tmp_path
    ):
        cache_dir = tmp_path / "cache"
        install(FaultPlan.parse("trace_cache.write:bitflip@1;seed=5"))

        # Run 1 persists its trace through a faulted write: the entry
        # lands on disk corrupted, but the in-memory trace (and so the
        # result) is untouched.
        first = run_experiment(
            _EXPERIMENT, TraceStore(disk_cache=TraceCache(cache_dir)),
            fast=True,
        )
        assert _fingerprint(first) == baseline

        # Run 2 reads the poisoned entry, detects it, quarantines it,
        # regenerates — and still produces identical bytes.
        healing_cache = TraceCache(cache_dir)
        second = run_experiment(
            _EXPERIMENT, TraceStore(disk_cache=healing_cache), fast=True
        )
        assert _fingerprint(second) == baseline
        assert healing_cache.corrupt_quarantined >= 1
        assert list(cache_dir.glob("*.corrupt"))

    def test_injected_engine_fault_is_a_typed_failure(self, store):
        install(FaultPlan.parse("engine.cell:raise@1"))
        with pytest.raises(FaultInjected):
            run_experiment(_EXPERIMENT, store, fast=True)


class TestCheckpointChaos:
    def test_run_killed_mid_flight_resumes_bit_identically(
        self, baseline, store, tmp_path
    ):
        ckpt_dir = tmp_path / "ckpt"
        src_dir = Path(repro.__file__).resolve().parents[1]
        script = (
            "import sys\n"
            "from repro.engine.checkpoint import RunCheckpoint\n"
            "from repro.experiments.registry import run_experiment\n"
            f"run_experiment({_EXPERIMENT!r}, fast=True, "
            "checkpoint=RunCheckpoint(sys.argv[1]))\n"
        )
        env = dict(
            os.environ,
            PYTHONPATH=str(src_dir),
            REPRO_FAULTS="engine.cell:crash@3",
        )
        # The injected crash hard-exits the run on its third cell: two
        # records are durable, the rest of the run is gone.
        process = subprocess.run(
            [sys.executable, "-c", script, str(ckpt_dir)],
            env=env,
            timeout=300,
        )
        assert process.returncode == 70  # the crash action's exit code
        assert len(list(ckpt_dir.glob("cell-*.ckpt"))) == 2

        resumed = RunCheckpoint(ckpt_dir)
        result = run_experiment(
            _EXPERIMENT, store, fast=True, checkpoint=resumed
        )
        assert _fingerprint(result) == baseline
        assert resumed.stats()["restored"] == 2
        assert resumed.stats()["saved"] > 0


class TestReplayDeterminism:
    def test_same_plan_injects_at_identical_points(self, tmp_path):
        spec = "trace_cache.read:io_error@p=0.4;seed=9"

        def run(name):
            reset()
            plan = FaultPlan.parse(spec)
            install(plan)
            cache = TraceCache(tmp_path / name)
            cache.get("go", "test")  # synthesise + persist, no reads
            pattern = [
                cache.load("go", "test") is not None for _ in range(10)
            ]
            log = [
                (i.site, i.ordinal, i.action) for i in plan.injections
            ]
            return pattern, log

        first_pattern, first_log = run("a")
        second_pattern, second_log = run("b")
        assert first_pattern == second_pattern
        assert first_log == second_log
        # The plan actually bites: some loads failed, some succeeded.
        assert any(first_pattern) and not all(first_pattern)


class TestServiceChaos:
    """A served fig13 job under a worker crash and a result-store
    bit-flip: the payload survives byte-identical, the poisoned store
    entry is quarantined and never served."""

    @pytest.fixture()
    def service(self, tmp_path):
        from repro.service.server import ReproService, ServiceConfig

        install(
            FaultPlan.parse(
                "worker.child:crash@1;result_store.write:bitflip@1;seed=2"
            )
        )
        config = ServiceConfig(
            port=0,
            workers=1,
            job_timeout=300.0,
            retry_backoff=0.05,
            store_dir=tmp_path / "results",
        )
        service = ReproService(config).start()
        yield service
        service.stop(drain=False)
        reset()

    def test_crash_retry_and_poisoned_store_entry(self, service):
        from repro.service.api import execute_spec, normalise_spec
        from repro.service.client import ServiceClient, ServiceError

        client = ServiceClient(service.url)
        job = client.submit_experiment(_EXPERIMENT, fast=True)
        done = client.wait(job["id"], timeout=300.0)

        # The first attempt was crashed by the plan; the retry ran
        # clean and delivered a payload byte-identical to a local,
        # fault-free execution of the same normalised spec.
        assert done["attempts"] == 2
        spec = normalise_spec(
            {"type": "experiment", "experiment_id": _EXPERIMENT, "fast": True}
        )
        assert done["result"] == execute_spec(spec)

        # The persisted copy was bit-flipped in flight: the store
        # detects it on read, quarantines, and answers a miss — the
        # corrupt bytes are never served.
        with pytest.raises(ServiceError) as excinfo:
            client.result_bytes(done["result_key"])
        assert excinfo.value.status == 404
        assert service.store.stats()["corrupt_quarantined"] == 1
