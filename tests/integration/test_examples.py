"""Smoke tests that every example script runs to completion.

The examples are part of the public deliverable; each must execute
end-to-end (they use train inputs, so the whole module stays in the
minutes range).  Runs in-process via runpy so the session's trace
store caching applies.
"""

import runpy
import pathlib

import pytest

_EXAMPLES = sorted(
    (pathlib.Path(__file__).parent / ".." / ".." / "examples").resolve().glob("*.py")
)

pytestmark = pytest.mark.slow


@pytest.mark.parametrize(
    "script", _EXAMPLES, ids=[path.stem for path in _EXAMPLES]
)
def test_example_runs(script, capsys):
    runpy.run_path(str(script), run_name="__main__")
    out = capsys.readouterr().out
    assert len(out) > 100  # produced a real report
