"""Coordinator SIGKILL mid-experiment: the restarted ``repro serve``
process must recover every accepted job from its ``--state-dir``
journal and finish the work with a payload byte-identical to a local,
crash-free execution.

The first incarnation is parked deterministically mid-fig13 by a
``hang`` fault on the second engine cell, so the SIGKILL lands while
the job is ``running`` — the window the write-ahead journal protects."""

import json
import os
import signal
import socket
import subprocess
import sys
import time
from pathlib import Path

import pytest

import repro
from repro.service.client import ServiceClient, ServiceError

_SRC_DIR = str(Path(repro.__file__).resolve().parents[1])


def _free_port() -> int:
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def _serve(port, tmp_path, faults=""):
    env = dict(os.environ, PYTHONPATH=_SRC_DIR, REPRO_FAULTS=faults)
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--port", str(port),
            "--workers", "1",
            "--store-dir", str(tmp_path / "results"),
            "--state-dir", str(tmp_path / "state"),
        ],
        env=env,
        start_new_session=True,  # killpg reaches parked threads too
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    return process


def _wait_healthy(client, process, timeout=60.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if process.poll() is not None:
            raise AssertionError(
                f"serve exited early (code {process.returncode})"
            )
        try:
            client.healthz()
            return
        except ServiceError:
            time.sleep(0.1)
    raise AssertionError("service never became healthy")


def _killpg(process):
    try:
        os.killpg(process.pid, signal.SIGKILL)
    except ProcessLookupError:
        pass
    process.wait(timeout=30)


class TestCoordinatorKill:
    def test_sigkill_mid_fig13_recovers_and_matches_local(self, tmp_path):
        port = _free_port()
        client = ServiceClient(f"http://127.0.0.1:{port}")

        first = _serve(
            port, tmp_path, faults="engine.cell:hang(120)@2"
        )
        try:
            _wait_healthy(client, first)
            job = client.submit_experiment("fig13", fast=True)
            job_id = job["id"]
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                if client.status(job_id)["state"] == "running":
                    break
                time.sleep(0.05)
            else:
                raise AssertionError("job never started running")
            time.sleep(0.5)  # let the first cell land, park on the 2nd
        finally:
            _killpg(first)

        # The journal survived the kill; a read-only fsck finds a whole
        # log (the tail record may be torn, never silently corrupt).
        state_dir = tmp_path / "state"
        assert (state_dir / "journal.log").exists()

        second = _serve(port, tmp_path)
        try:
            _wait_healthy(client, second)
            # The accepted job came back under the same id, queued at
            # its recorded attempt count — zero re-submission needed.
            recovered = client.status(job_id)
            assert recovered["state"] in ("queued", "running", "done")
            done = client.wait(job_id, timeout=300.0)
            assert done["state"] == "done"

            # Byte-identical to a crash-free local execution.
            from repro.service.api import execute_spec, normalise_spec

            spec = normalise_spec(
                {"type": "experiment", "experiment_id": "fig13",
                 "fast": True}
            )
            assert done["result"] == execute_spec(spec)
            metrics = client.metrics()["metrics"]
            assert metrics["journal_recovered_jobs_total"]["value"] >= 1
        finally:
            _killpg(second)

        # Post-mortem the state dir with the fsck CLI: everything the
        # second incarnation wrote verifies clean.
        fsck = subprocess.run(
            [
                sys.executable, "-m", "repro", "journal", "fsck",
                "--state-dir", str(state_dir),
            ],
            env=dict(os.environ, PYTHONPATH=_SRC_DIR),
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert fsck.returncode == 0, fsck.stdout + fsck.stderr
        assert "record(s) ok" in fsck.stdout

        info = subprocess.run(
            [
                sys.executable, "-m", "repro", "journal", "info",
                "--state-dir", str(state_dir),
            ],
            env=dict(os.environ, PYTHONPATH=_SRC_DIR),
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert info.returncode == 0, info.stdout + info.stderr
        assert "done" in info.stdout
