"""End-to-end integration: real workload traces through the full
DMC+FVC system with the value-consistency oracle enabled.

``verify_values=True`` makes the system cross-check every load it
serves (from the main cache, the FVC decode, or a memory fill) against
the traced value, so a single passing run certifies the entire transfer
protocol of §3 against a genuine program execution.
"""

import pytest

from repro.cache.direct import DirectMappedCache
from repro.cache.geometry import CacheGeometry
from repro.cache.setassoc import SetAssociativeCache
from repro.experiments.common import encoder_for, reduction_percent
from repro.fvc.system import FvcSystem, FvcSystemConfig

_FVL_NAMES = ("go", "m88ksim", "gcc", "li", "perl", "vortex")


class TestProtocolOnRealTraces:
    @pytest.mark.parametrize("name", _FVL_NAMES)
    def test_value_oracle_and_exclusivity(self, name, store):
        trace = store.get(name, "test")
        geometry = CacheGeometry(4 * 1024, 32)
        system = FvcSystem(
            geometry,
            256,
            encoder_for(trace, 7),
            config=FvcSystemConfig(verify_values=True),
        )
        system.simulate(trace.records)  # oracle raises on any skew
        assert system.check_exclusive()
        assert system.stats.accesses == len(trace)

    @pytest.mark.parametrize("top_values", [1, 3, 7])
    def test_all_code_widths(self, top_values, store):
        trace = store.get("gcc", "test")
        geometry = CacheGeometry(4 * 1024, 32)
        system = FvcSystem(
            geometry,
            256,
            encoder_for(trace, top_values),
            config=FvcSystemConfig(verify_values=True),
        )
        system.simulate(trace.records)
        assert system.check_exclusive()

    def test_set_associative_base_with_oracle(self, store):
        trace = store.get("m88ksim", "test")
        geometry = CacheGeometry(8 * 1024, 32, ways=2)
        system = FvcSystem(
            geometry,
            256,
            encoder_for(trace, 7),
            config=FvcSystemConfig(verify_values=True),
        )
        system.simulate(trace.records)
        assert system.check_exclusive()


class TestHeadlineBehaviour:
    def test_fvc_reduces_m88ksim_misses(self, store):
        trace = store.get("m88ksim", "test")
        geometry = CacheGeometry(16 * 1024, 32)
        base = DirectMappedCache(geometry).simulate(trace.records)
        system = FvcSystem(geometry, 512, encoder_for(trace, 7))
        stats = system.simulate(trace.records)
        assert reduction_percent(base, stats) > 20

    def test_associativity_absorbs_m88ksim_benefit(self, store):
        trace = store.get("m88ksim", "test")
        direct = CacheGeometry(16 * 1024, 32)
        two_way = CacheGeometry(16 * 1024, 32, ways=2)
        base_direct = DirectMappedCache(direct).simulate(trace.records)
        base_two = SetAssociativeCache(two_way).simulate(trace.records)
        direct_red = reduction_percent(
            base_direct,
            FvcSystem(direct, 512, encoder_for(trace, 7)).simulate(trace.records),
        )
        two_red = reduction_percent(
            base_two,
            FvcSystem(two_way, 512, encoder_for(trace, 7)).simulate(trace.records),
        )
        assert base_two.miss_rate < base_direct.miss_rate
        assert two_red < direct_red

    def test_traffic_reduced_alongside_misses(self, store):
        trace = store.get("m88ksim", "test")
        geometry = CacheGeometry(16 * 1024, 32)
        base = DirectMappedCache(geometry).simulate(trace.records)
        stats = FvcSystem(geometry, 512, encoder_for(trace, 7)).simulate(
            trace.records
        )
        assert stats.traffic_words < base.traffic_words
