"""Kill-mid-write recovery: a writer SIGKILLed between its temp-file
write and its atomic rename must leave no partial entry behind — the
published store stays whole, readers see a plain miss, and maintenance
sweeps the temp debris.

The writer is parked deterministically on the ``*.publish`` injection
sites (``hang``), so the kill lands exactly inside the window the
atomic-rename discipline protects."""

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import repro
from repro.engine.trace_cache import TraceCache
from repro.service.result_store import ResultStore

_SRC_DIR = str(Path(repro.__file__).resolve().parents[1])


def _spawn(script: str, args, faults: str, extra_env=None):
    env = dict(os.environ, PYTHONPATH=_SRC_DIR, REPRO_FAULTS=faults)
    env.update(extra_env or {})
    return subprocess.Popen(
        [sys.executable, "-c", script, *map(str, args)], env=env
    )


def _kill_once_parked(process, directory: Path, timeout: float = 120.0):
    """SIGKILL the writer once its temp file exists (i.e. it is parked
    between write and rename on the ``.publish`` hang)."""
    deadline = time.monotonic() + timeout
    while not list(directory.glob("*.tmp")):
        if process.poll() is not None:
            raise AssertionError(
                f"writer exited early (code {process.returncode})"
            )
        if time.monotonic() > deadline:
            process.kill()
            raise AssertionError("writer never reached its temp write")
        time.sleep(0.02)
    process.send_signal(signal.SIGKILL)
    process.wait(timeout=30)


class TestTraceCacheKill:
    def test_no_partial_entry_and_maintenance_sweeps(self, tmp_path):
        directory = tmp_path / "traces"
        directory.mkdir()
        script = (
            "import sys\n"
            "from repro.engine.trace_cache import TraceCache\n"
            "from repro.workloads.registry import get_workload\n"
            "trace = get_workload('go').generate_trace('test')\n"
            "TraceCache(sys.argv[1]).store(trace)\n"
        )
        process = _spawn(
            script,
            [directory],
            faults="trace_cache.write.publish:hang(300)@1",
        )
        _kill_once_parked(process, directory)

        # Nothing was published; the orphaned temp file is the only
        # debris, and a reader sees a plain miss.
        assert list(directory.glob("*.trcbe")) == []
        assert len(list(directory.glob("*.tmp"))) == 1
        cache = TraceCache(directory)
        assert cache.load("go", "test") is None

        # verify() sweeps the debris; a clean regeneration publishes.
        report = cache.verify()
        assert report["tmp_removed"] == 1
        assert len(cache.get("go", "test")) > 0
        assert len(list(directory.glob("*.trcbe"))) == 1
        assert list(directory.glob("*.tmp")) == []


class TestResultStoreKill:
    def test_no_partial_payload_served_and_startup_sweeps(self, tmp_path):
        directory = tmp_path / "results"
        directory.mkdir()
        script = (
            "import sys\n"
            "from repro.service.result_store import ResultStore\n"
            "store = ResultStore(sys.argv[1], capacity=4)\n"
            "store.put('k1' * 8, b'{\"rows\": [1, 2, 3]}')\n"
        )
        process = _spawn(
            script,
            [directory],
            faults="result_store.write.publish:hang(300)@1",
        )
        _kill_once_parked(process, directory)

        assert list(directory.glob("*.json")) == []
        assert len(list(directory.glob("*.tmp"))) == 1

        # A restarting server sweeps the debris on construction and
        # serves a miss, never partial bytes.
        store = ResultStore(directory, capacity=4)
        assert list(directory.glob("*.tmp")) == []
        assert store.get("k1" * 8) is None

        # The payload can be re-put and then round-trips exactly.
        payload = b'{"rows": [1, 2, 3]}'
        assert store.put("k1" * 8, payload)
        assert store.get("k1" * 8) == payload
