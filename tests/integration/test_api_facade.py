"""The stable facade (``repro.api``) and the deprecation shims."""

from __future__ import annotations

import warnings

import pytest

from repro import api


class TestCatalogs:
    def test_list_experiments(self):
        experiments = api.list_experiments()
        assert "fig13" in experiments
        assert experiments == api.list_experiments()  # stable order

    def test_list_workloads(self):
        workloads = api.list_workloads()
        assert "gcc" in workloads
        assert "m88ksim" in workloads


class TestSimulate:
    def test_deterministic_outcome(self, store):
        first = api.simulate(
            "gcc", input_name="test", kind="fvc", size_bytes=8 * 1024,
            fvc_entries=256, store=store,
        )
        second = api.simulate(
            "gcc", input_name="test", kind="fvc", size_bytes=8 * 1024,
            fvc_entries=256, store=store,
        )
        assert first == second
        assert first.accesses > 0
        assert 0.0 < first.miss_rate < 1.0
        assert first.extras["fvc_hits"] > 0

    def test_baseline_stats_shape(self, store):
        outcome = api.simulate("li", input_name="test", store=store)
        assert outcome.kind == "baseline"
        assert outcome.misses == (
            outcome.stats["read_misses"] + outcome.stats["write_misses"]
        )

    def test_classify_uses_extras_accesses(self, store):
        outcome = api.simulate(
            "go", input_name="test", kind="classify", store=store
        )
        assert outcome.accesses == outcome.extras["accesses"]


class TestRunExperiment:
    def test_returns_payload_dict(self, store):
        payload = api.run_experiment("fig9", fast=True, store=store)
        assert isinstance(payload, dict)
        assert payload["schema"] == "repro.experiment/1"
        assert payload["experiment_id"] == "fig9"
        assert payload["rows"]


class TestProfileTrace:
    def test_top_values(self, store):
        profile = api.profile_trace("gcc", input_name="test", store=store)
        top = profile.top_values(7)
        assert len(top) == 7


class TestFacadeContract:
    def test_all_is_explicit_and_sorted(self):
        assert api.__all__ == sorted(api.__all__)
        for name in api.__all__:
            assert getattr(api, name) is not None

    def test_lazy_submodule_access(self):
        import repro

        assert repro.api is api
        assert repro.obs.ENV_VAR == "REPRO_OBS"


class TestDeprecatedTopLevelExports:
    def test_experiments_warns(self):
        import repro

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            experiments = repro.EXPERIMENTS
        assert experiments  # still functional for one release
        assert any(
            issubclass(item.category, DeprecationWarning)
            and "repro.api" in str(item.message)
            for item in caught
        )

    def test_get_experiment_warns(self):
        import repro

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            get_experiment = repro.get_experiment
        assert callable(get_experiment)
        assert any(
            issubclass(item.category, DeprecationWarning)
            for item in caught
        )

    def test_unknown_attribute_raises(self):
        import repro

        with pytest.raises(AttributeError):
            repro.definitely_not_a_thing
