"""The stable facade (``repro.api``) and the retired top-level shims."""

from __future__ import annotations

import pytest

from repro import api


class TestCatalogs:
    def test_list_experiments(self):
        experiments = api.list_experiments()
        assert "fig13" in experiments
        assert experiments == api.list_experiments()  # stable order

    def test_list_workloads(self):
        workloads = api.list_workloads()
        assert "gcc" in workloads
        assert "m88ksim" in workloads


class TestSimulate:
    def test_deterministic_outcome(self, store):
        first = api.simulate(
            "gcc", input_name="test", kind="fvc", size_bytes=8 * 1024,
            fvc_entries=256, store=store,
        )
        second = api.simulate(
            "gcc", input_name="test", kind="fvc", size_bytes=8 * 1024,
            fvc_entries=256, store=store,
        )
        assert first == second
        assert first.accesses > 0
        assert 0.0 < first.miss_rate < 1.0
        assert first.extras["fvc_hits"] > 0

    def test_baseline_stats_shape(self, store):
        outcome = api.simulate("li", input_name="test", store=store)
        assert outcome.kind == "baseline"
        assert outcome.misses == (
            outcome.stats["read_misses"] + outcome.stats["write_misses"]
        )

    def test_classify_uses_extras_accesses(self, store):
        outcome = api.simulate(
            "go", input_name="test", kind="classify", store=store
        )
        assert outcome.accesses == outcome.extras["accesses"]


class TestRunExperiment:
    def test_returns_payload_dict(self, store):
        payload = api.run_experiment("fig9", fast=True, store=store)
        assert isinstance(payload, dict)
        assert payload["schema"] == "repro.experiment/1"
        assert payload["experiment_id"] == "fig9"
        assert payload["rows"]


class TestProfileTrace:
    def test_top_values(self, store):
        profile = api.profile_trace("gcc", input_name="test", store=store)
        top = profile.top_values(7)
        assert len(top) == 7


class TestFacadeContract:
    def test_all_is_explicit_and_sorted(self):
        assert api.__all__ == sorted(api.__all__)
        for name in api.__all__:
            assert getattr(api, name) is not None

    def test_lazy_submodule_access(self):
        import repro

        assert repro.api is api
        assert repro.obs.ENV_VAR == "REPRO_OBS"


class TestRetiredTopLevelExports:
    """The PR-5 deprecation shims completed their one release and are
    gone; the error still points at the stable replacement."""

    def test_experiments_removed_with_pointer(self):
        import repro

        with pytest.raises(AttributeError, match="list_experiments"):
            repro.EXPERIMENTS
        assert "EXPERIMENTS" not in repro.__all__

    def test_get_experiment_removed_with_pointer(self):
        import repro

        with pytest.raises(AttributeError, match="repro.api"):
            repro.get_experiment
        assert "get_experiment" not in repro.__all__

    def test_unknown_attribute_raises(self):
        import repro

        with pytest.raises(AttributeError):
            repro.definitely_not_a_thing


class TestSweepFacade:
    def test_list_sweeps_covers_every_gated_experiment(self):
        names = api.list_sweeps()
        assert names == sorted(names)
        for experiment_id in api.list_experiments():
            if experiment_id.startswith(("fig", "table")):
                assert experiment_id in names
        assert "l1_size_study" in names

    def test_describe_sweep_by_name(self):
        description = api.describe_sweep("l1_size_study", fast=True)
        assert description["schema"] == "sweep/v1"
        assert description["points"] > 0
        assert description["distinct_cells"] > 0

    def test_run_sweep_by_spec_dict(self, store):
        spec = {
            "schema": "sweep/v1",
            "name": "tiny",
            "axes": {"size_bytes": [1024, 2048]},
            "arms": [{"name": "base", "kind": "baseline",
                      "cell": {"workload": "go", "input_name": "test"}}],
            "report": {"fields": ["miss_rate_percent"],
                       "aggregates": ["mean"]},
        }
        result = api.run_sweep(spec, store=store)
        assert isinstance(result, api.SweepResult)
        assert result.points == 2
        assert result.distinct_cells == 2
        assert result.headers[0] == "arm"
        assert "miss_rate_percent_mean" in result.headers
        assert result.payload["schema"] == "sweep.result/1"
        assert result.to_csv().splitlines()[0].startswith("arm,")
        assert "<table>" in result.to_html()

    def test_run_sweep_rejects_bad_spec(self):
        from repro.common.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="sweep/v1"):
            api.run_sweep({"schema": "sweep/v2"})
