"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "gcc" in out
        assert "fig10" in out

    def test_profile(self, capsys):
        assert main(["profile", "go", "--input", "test"]) == 0
        out = capsys.readouterr().out
        assert "top accessed values" in out

    def test_simulate_baseline_only(self, capsys):
        assert main(
            ["simulate", "go", "--input", "test", "--size-kb", "8"]
        ) == 0
        assert "baseline" in capsys.readouterr().out

    def test_simulate_with_fvc(self, capsys):
        assert main(
            [
                "simulate", "go", "--input", "test",
                "--size-kb", "8", "--fvc", "128", "--top", "3",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "reduction" in out
        assert "FVC hits" in out

    def test_run_experiment_fast(self, capsys):
        assert main(["run", "fig9", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "fig9" in out

    def test_trace_roundtrip(self, tmp_path, capsys):
        path = tmp_path / "go.trc"
        assert main(["trace", "go", "--input", "test", "-o", str(path)]) == 0
        assert path.exists()
        from repro.trace.io import read_trace

        assert len(read_trace(path)) > 1000

    def test_report(self, capsys):
        assert main(
            ["report", "go", "--input", "test", "--no-occurrence"]
        ) == 0
        out = capsys.readouterr().out
        assert "verdict" in out
        assert "access coverage" in out

    def test_classify(self, capsys):
        assert main(
            ["classify", "go", "--input", "test", "--size-kb", "8"]
        ) == 0
        out = capsys.readouterr().out
        assert "compulsory" in out
        assert "conflict" in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestJsonOutput:
    def test_run_json_is_canonical_payload(self, capsys):
        assert main(["run", "fig9", "--fast", "--json"]) == 0
        out = capsys.readouterr().out
        payload = json.loads(out)
        assert payload["schema"] == "repro.experiment/1"
        assert payload["experiment_id"] == "fig9"
        assert payload["rows"]
        # Canonical form: sorted keys, 2-space indent, trailing newline.
        assert out == json.dumps(payload, sort_keys=True, indent=2) + "\n"

    def test_run_json_excludes_csv_and_chart(self, capsys):
        assert main(["run", "fig9", "--fast", "--json", "--csv"]) == 2
        assert main(["run", "fig9", "--fast", "--json", "--chart"]) == 2

    def test_simulate_json(self, capsys):
        assert main(
            [
                "simulate", "go", "--input", "test",
                "--size-kb", "8", "--fvc", "128", "--top", "3", "--json",
            ]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == "repro.simulate/1"
        assert payload["geometry"]["size_bytes"] == 8 * 1024
        assert payload["baseline"]["misses"] > 0
        assert payload["fvc"]["entries"] == 128
        assert payload["fvc"]["fvc_hits"] > 0

    def test_simulate_json_without_fvc(self, capsys):
        assert main(
            ["simulate", "go", "--input", "test", "--size-kb", "8", "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["fvc"] is None


class TestServiceVerbs:
    """The serve/submit/status/fetch verbs against an in-process
    service."""

    @pytest.fixture(scope="class")
    def service(self, tmp_path_factory):
        from repro.service.server import ReproService, ServiceConfig

        service = ReproService(
            ServiceConfig(
                port=0,
                workers=1,
                store_dir=tmp_path_factory.mktemp("cli-results"),
            )
        ).start()
        yield service
        service.stop(drain=False)

    def test_submit_wait_equals_run_json(self, service, capsys):
        assert main(["run", "fig9", "--fast", "--json"]) == 0
        local = capsys.readouterr().out
        assert main(
            ["submit", "fig9", "--fast", "--wait", "--url", service.url]
        ) == 0
        assert capsys.readouterr().out == local

    def test_submit_then_status_and_fetch(self, service, capsys):
        assert main(["submit", "fig9", "--fast", "--url", service.url]) == 0
        job = json.loads(capsys.readouterr().out)
        assert main(["status", job["id"], "--url", service.url]) == 0
        view = json.loads(capsys.readouterr().out)
        assert view["id"] == job["id"]
        # The previous test completed this spec; fetch its payload.
        assert main(
            ["fetch", job["result_key"], "--url", service.url]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["experiment_id"] == "fig9"

    def test_unreachable_service_fails_cleanly(self, capsys):
        assert main(
            ["status", "job-x", "--url", "http://127.0.0.1:1"]
        ) == 1
        assert "error:" in capsys.readouterr().err

    def test_help_mentions_service_verbs(self, capsys):
        with pytest.raises(SystemExit):
            main(["--help"])
        out = capsys.readouterr().out
        for verb in ("serve", "submit", "status", "fetch"):
            assert verb in out
