"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "gcc" in out
        assert "fig10" in out

    def test_profile(self, capsys):
        assert main(["profile", "go", "--input", "test"]) == 0
        out = capsys.readouterr().out
        assert "top accessed values" in out

    def test_simulate_baseline_only(self, capsys):
        assert main(
            ["simulate", "go", "--input", "test", "--size-kb", "8"]
        ) == 0
        assert "baseline" in capsys.readouterr().out

    def test_simulate_with_fvc(self, capsys):
        assert main(
            [
                "simulate", "go", "--input", "test",
                "--size-kb", "8", "--fvc", "128", "--top", "3",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "reduction" in out
        assert "FVC hits" in out

    def test_run_experiment_fast(self, capsys):
        assert main(["run", "fig9", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "fig9" in out

    def test_trace_roundtrip(self, tmp_path, capsys):
        path = tmp_path / "go.trc"
        assert main(["trace", "go", "--input", "test", "-o", str(path)]) == 0
        assert path.exists()
        from repro.trace.io import read_trace

        assert len(read_trace(path)) > 1000

    def test_report(self, capsys):
        assert main(
            ["report", "go", "--input", "test", "--no-occurrence"]
        ) == 0
        out = capsys.readouterr().out
        assert "verdict" in out
        assert "access coverage" in out

    def test_classify(self, capsys):
        assert main(
            ["classify", "go", "--input", "test", "--size-kb", "8"]
        ) == 0
        out = capsys.readouterr().out
        assert "compulsory" in out
        assert "conflict" in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])
