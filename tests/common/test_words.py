"""Unit and property tests for the 32-bit word utilities."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.words import (
    WORD_MASK,
    float_to_word,
    is_power_of_two,
    log2_int,
    to_s32,
    to_u32,
    u32_add,
    u32_mul,
    u32_sub,
    word_to_float,
    word_to_hex,
)


class TestToU32:
    def test_negative_one_wraps(self):
        assert to_u32(-1) == 0xFFFFFFFF

    def test_overflow_wraps(self):
        assert to_u32(2**32 + 5) == 5

    def test_identity_in_range(self):
        assert to_u32(123456) == 123456

    @given(st.integers())
    def test_always_in_range(self, value):
        assert 0 <= to_u32(value) <= WORD_MASK


class TestToS32:
    def test_max_unsigned_is_minus_one(self):
        assert to_s32(0xFFFFFFFF) == -1

    def test_sign_boundary(self):
        assert to_s32(0x80000000) == -(2**31)
        assert to_s32(0x7FFFFFFF) == 2**31 - 1

    @given(st.integers(min_value=-(2**31), max_value=2**31 - 1))
    def test_roundtrip_signed(self, value):
        assert to_s32(to_u32(value)) == value


class TestWrappingArithmetic:
    @given(st.integers(min_value=0, max_value=WORD_MASK),
           st.integers(min_value=0, max_value=WORD_MASK))
    def test_add_matches_modular(self, a, b):
        assert u32_add(a, b) == (a + b) % 2**32

    @given(st.integers(min_value=0, max_value=WORD_MASK),
           st.integers(min_value=0, max_value=WORD_MASK))
    def test_sub_matches_modular(self, a, b):
        assert u32_sub(a, b) == (a - b) % 2**32

    @given(st.integers(min_value=0, max_value=WORD_MASK),
           st.integers(min_value=0, max_value=WORD_MASK))
    def test_mul_matches_modular(self, a, b):
        assert u32_mul(a, b) == (a * b) % 2**32


class TestFloatPacking:
    def test_zero_packs_to_zero_word(self):
        assert float_to_word(0.0) == 0

    def test_one(self):
        assert float_to_word(1.0) == 0x3F800000

    @given(st.floats(width=32, allow_nan=False, allow_infinity=False))
    def test_roundtrip(self, value):
        unpacked = word_to_float(float_to_word(value))
        assert unpacked == value or (math.isnan(unpacked) and math.isnan(value))

    @given(st.integers(min_value=0, max_value=WORD_MASK))
    def test_word_roundtrip_when_not_nan(self, word):
        value = word_to_float(word)
        if not math.isnan(value):
            assert float_to_word(value) == word


class TestWordToHex:
    def test_matches_paper_table_style(self):
        assert word_to_hex(0xFFFFFFFF) == "ffffffff"
        assert word_to_hex(0) == "0"
        assert word_to_hex(0x351A) == "351a"


class TestPowersOfTwo:
    @pytest.mark.parametrize("value", [1, 2, 4, 1024, 2**31])
    def test_powers_accepted(self, value):
        assert is_power_of_two(value)
        assert 2 ** log2_int(value) == value

    @pytest.mark.parametrize("value", [0, -2, 3, 6, 100])
    def test_non_powers_rejected(self, value):
        assert not is_power_of_two(value)
        with pytest.raises(ValueError):
            log2_int(value)
