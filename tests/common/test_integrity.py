"""Integrity envelopes, crash-safe publication, and quarantine."""

import pytest

from repro.common.errors import IntegrityError
from repro.common.integrity import (
    CORRUPT_SUFFIX,
    MAGIC,
    is_enveloped,
    quarantine,
    read_enveloped,
    unwrap,
    wrap,
    write_enveloped,
)
from repro.faults import install, reset
from repro.faults.plan import FaultPlan
from repro.faults.sites import InjectedIOError


@pytest.fixture(autouse=True)
def _clean_plan():
    reset()
    yield
    reset()


class TestEnvelope:
    @pytest.mark.parametrize(
        "payload", [b"", b"x", b"payload " * 1000, bytes(range(256))]
    )
    def test_round_trip(self, payload):
        blob = wrap(payload)
        assert is_enveloped(blob)
        assert unwrap(blob) == payload

    def test_not_an_envelope(self):
        with pytest.raises(IntegrityError, match="not an integrity envelope"):
            unwrap(b"random bytes")

    def test_truncated_header(self):
        with pytest.raises(IntegrityError, match="truncated"):
            unwrap(MAGIC + b"abcdef")

    def test_malformed_header(self):
        with pytest.raises(IntegrityError, match="malformed"):
            unwrap(MAGIC + b"nodigest\npayload")

    def test_truncated_payload(self):
        blob = wrap(b"full payload")
        with pytest.raises(IntegrityError, match="declares"):
            unwrap(blob[:-3])

    def test_single_flipped_bit_detected(self):
        blob = bytearray(wrap(b"sensitive payload"))
        blob[-1] ^= 0x40
        with pytest.raises(IntegrityError, match="checksum mismatch"):
            unwrap(bytes(blob))


class TestWriteRead:
    def test_round_trip_and_no_temp_debris(self, tmp_path):
        path = tmp_path / "entry.bin"
        assert write_enveloped(path, b"data") == path
        assert read_enveloped(path) == b"data"
        assert list(tmp_path.glob("*.tmp")) == []

    def test_overwrite_replaces_whole_entry(self, tmp_path):
        path = tmp_path / "entry.bin"
        write_enveloped(path, b"first")
        write_enveloped(path, b"second")
        assert read_enveloped(path) == b"second"

    def test_fsync_optional(self, tmp_path):
        path = tmp_path / "entry.bin"
        write_enveloped(path, b"data", fsync=False)
        assert read_enveloped(path) == b"data"

    def test_injected_publish_fault_leaves_no_partial_entry(self, tmp_path):
        install(FaultPlan.parse("result_store.write.publish:io_error@1"))
        path = tmp_path / "entry.bin"
        with pytest.raises(InjectedIOError):
            write_enveloped(path, b"data", site="result_store.write")
        assert not path.exists()
        assert list(tmp_path.glob("*.tmp")) == []
        # A retry publishes cleanly: the clause was spent on call #1.
        write_enveloped(path, b"data", site="result_store.write")
        assert read_enveloped(path) == b"data"

    def test_injected_checkpoint_publish_fault_leaves_no_partial_record(
        self, tmp_path
    ):
        # Same crash-safety contract as the stores, at the checkpoint
        # site: a fault between temp write and rename publishes
        # nothing and leaves no droppings.
        install(FaultPlan.parse("checkpoint.write.publish:io_error@1"))
        path = tmp_path / "record.ckpt"
        with pytest.raises(InjectedIOError):
            write_enveloped(path, b"record payload", site="checkpoint.write")
        assert not path.exists()
        assert list(tmp_path.glob("*.tmp")) == []
        write_enveloped(path, b"record payload", site="checkpoint.write")
        assert read_enveloped(path) == b"record payload"

    def test_injected_bitflip_is_detected_on_read(self, tmp_path):
        install(FaultPlan.parse("checkpoint.write:bitflip@1"))
        path = tmp_path / "record.ckpt"
        write_enveloped(path, b"record payload", site="checkpoint.write")
        with pytest.raises(IntegrityError):
            read_enveloped(path)

    def test_injected_truncate_is_detected_on_read(self, tmp_path):
        install(FaultPlan.parse("checkpoint.write:truncate@1"))
        path = tmp_path / "record.ckpt"
        write_enveloped(path, b"record payload", site="checkpoint.write")
        with pytest.raises(IntegrityError):
            read_enveloped(path)

    def test_injected_read_fault_then_clean_retry(self, tmp_path):
        path = tmp_path / "entry.bin"
        write_enveloped(path, b"data")
        install(FaultPlan.parse("result_store.read:io_error@1"))
        with pytest.raises(InjectedIOError):
            read_enveloped(path, site="result_store.read")
        assert read_enveloped(path, site="result_store.read") == b"data"


class TestQuarantine:
    def test_moves_entry_aside(self, tmp_path):
        path = tmp_path / "bad.bin"
        path.write_bytes(b"junk")
        target = quarantine(path)
        assert target == tmp_path / ("bad.bin" + CORRUPT_SUFFIX)
        assert not path.exists()
        assert target.read_bytes() == b"junk"

    def test_missing_entry_is_tolerated(self, tmp_path):
        assert quarantine(tmp_path / "gone") is None

    def test_requarantine_replaces_older_capture(self, tmp_path):
        path = tmp_path / "bad.bin"
        path.write_bytes(b"old")
        quarantine(path)
        path.write_bytes(b"new")
        target = quarantine(path)
        assert target.read_bytes() == b"new"
