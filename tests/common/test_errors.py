"""Tests for the exception hierarchy."""

import pytest

from repro.common.errors import (
    ConfigurationError,
    MemoryError_,
    ReproError,
    SimulatedMachineError,
    TraceFormatError,
    WorkloadError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            ConfigurationError,
            MemoryError_,
            TraceFormatError,
            WorkloadError,
            SimulatedMachineError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)
        with pytest.raises(ReproError):
            raise exc("boom")

    def test_memory_error_does_not_shadow_builtin(self):
        assert MemoryError_ is not MemoryError
        assert not issubclass(MemoryError_, MemoryError)
