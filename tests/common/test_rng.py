"""Tests for the deterministic RNG helpers."""

from repro.common.rng import derive_seed, make_rng


class TestDeriveSeed:
    def test_stable_across_calls(self):
        assert derive_seed("gcc", "ref") == derive_seed("gcc", "ref")

    def test_distinct_parts_distinct_seeds(self):
        assert derive_seed("gcc", "ref") != derive_seed("gcc", "train")
        assert derive_seed("a", "bc") != derive_seed("ab", "c")

    def test_accepts_mixed_types(self):
        assert derive_seed("w", 3, 1.5) == derive_seed("w", 3, 1.5)


class TestMakeRng:
    def test_same_parts_same_stream(self):
        a = make_rng("x", 1)
        b = make_rng("x", 1)
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_streams_are_independent(self):
        a = make_rng("x", 1)
        b = make_rng("x", 2)
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]
