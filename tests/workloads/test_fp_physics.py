"""Physics-level sanity tests of the FP analogs.

The FP kernels are real numerical code; these tests check their
numerical behaviour directly in the simulated memory.
"""

from repro.common.words import word_to_float
from repro.mem.space import AddressSpace
from repro.workloads.fp import (
    ApplluWorkload,
    Hydro2dWorkload,
    MgridWorkload,
    Su2corWorkload,
    SwimWorkload,
    TomcatvWorkload,
)


def _run(workload, input_name="test"):
    space = AddressSpace()
    workload._run(space, workload.input_named(input_name))
    return space


class TestSwim:
    def test_disturbance_spreads(self):
        workload = SwimWorkload()
        space = _run(workload)
        n = workload.input_named("test").params["n"]
        u = space.layout.static_base
        nonzero = sum(
            1
            for index in range(n * n)
            if space.memory.peek(u + index * 4) != 0
        )
        assert 0 < nonzero < n * n  # spread, but not everywhere


class TestTomcatv:
    def test_mesh_interior_stays_bounded(self):
        workload = TomcatvWorkload()
        space = _run(workload)
        n = workload.input_named("test").params["n"]
        x = space.layout.static_base
        values = [
            word_to_float(space.memory.peek(x + index * 4))
            for index in range(n * n)
        ]
        assert all(-1.0 <= value <= n * 0.125 + 1.0 for value in values)


class TestMgrid:
    def test_relaxation_spreads_sources(self):
        workload = MgridWorkload()
        space = _run(workload)
        n = workload.input_named("test").params["n"]
        grid = space.layout.static_base
        nonzero = sum(
            1
            for index in range(n**3)
            if space.memory.peek(grid + index * 4) != 0
        )
        sources = max(3, n // 4)
        assert nonzero > sources  # smoothing spread beyond the sources


class TestApplu:
    def test_vectors_stay_finite(self):
        workload = ApplluWorkload()
        space = _run(workload)
        params = workload.input_named("test").params
        vectors = space.layout.static_base + params["cells"] * 16 * 4
        for cell in range(0, params["cells"], 17):
            for row in range(4):
                value = word_to_float(
                    space.memory.peek(vectors + (cell * 4 + row) * 4)
                )
                assert abs(value) < 1e12


class TestSu2cor:
    def test_identity_links_dominate(self):
        workload = Su2corWorkload()
        space = _run(workload)
        n = workload.input_named("test").params["n"]
        field = space.layout.static_base
        ones = zeros = total = 0
        for site in range(n**3):
            for direction in range(2):
                base = field + (site * 4 + direction * 2) * 4
                re = word_to_float(space.memory.peek(base))
                im = word_to_float(space.memory.peek(base + 4))
                total += 2
                ones += re == 1.0
                zeros += im == 0.0
        assert ones / (total / 2) > 0.5
        assert zeros / (total / 2) > 0.5


class TestHydro2d:
    def test_mass_is_conserved(self):
        """The advection step only moves density between neighbours, so
        total mass must be conserved to rounding."""
        workload = Hydro2dWorkload()
        inp = workload.input_named("test")
        n = inp.params["n"]

        # Initial mass: re-run only the init by sampling a fresh run's
        # final state and comparing against an analytic bound instead:
        # mass stays within float tolerance of the initial disc mass.
        space = _run(workload)
        density = space.layout.static_base
        final_mass = sum(
            word_to_float(space.memory.peek(density + index * 4))
            for index in range(n * n)
        )
        # The disc has area ~pi*(n/5)^2 cells of density ~1.0-1.1.
        disc_cells = sum(
            1
            for row in range(n)
            for col in range(n)
            if (row - n // 2) ** 2 + (col - n // 2) ** 2 < (n // 5) ** 2
        )
        assert disc_cells * 0.95 <= final_mass <= disc_cells * 1.2
