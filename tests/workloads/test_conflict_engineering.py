"""Tests of the engineered cache behaviour inside the workloads.

Each FVL analog was designed with a specific cache character (DESIGN.md
§2); these tests pin the address-level mechanics that produce it, so a
refactor that silently breaks a conflict pair fails loudly here rather
than as a drifted benchmark figure.
"""

import pytest

from repro.cache.classify import classify_misses
from repro.cache.geometry import CacheGeometry
from repro.profiling.access import profile_accessed_values


class TestM88ksimConflictPair:
    def test_flags_and_prot_alias_at_every_tested_size(self):
        flags = 0x08048000 + 0x8000
        prot = flags + 0x10000
        for size_kb in (4, 8, 16, 32, 64):
            geometry = CacheGeometry(size_kb * 1024, 32)
            assert geometry.set_index(flags) == geometry.set_index(prot)

    def test_two_way_absorbs_the_pair(self, m88ksim_trace):
        direct = classify_misses(
            m88ksim_trace.records, CacheGeometry(16 * 1024, 32)
        )
        two_way = classify_misses(
            m88ksim_trace.records, CacheGeometry(16 * 1024, 32, ways=2)
        )
        assert direct.conflict > 3 * max(1, two_way.conflict)

    def test_conflict_values_are_frequent(self, m88ksim_trace):
        # The pair's words (flags 0/1, prot 0/-1) must rank high, or
        # the FVC could not remove the conflicts.
        top = set(profile_accessed_values(m88ksim_trace).top_values(7))
        assert 0 in top
        assert 1 in top or 0xFFFFFFFF in top


class TestPerlConflictPair:
    def test_line_buffer_is_heap_congruent(self):
        # 64 KB-congruence between the line buffer and the heap base.
        buffer_base = (0x08048000 + 0xFFFF) & ~0xFFFF
        assert buffer_base % 0x10000 == 0x40000000 % 0x10000

    def test_associativity_removes_most_misses(self, store):
        trace = store.get("perl", "test")
        direct = classify_misses(trace.records, CacheGeometry(16 * 1024, 32))
        assert direct.fraction("conflict") > 0.35


class TestCapacityBenchmarks:
    @pytest.mark.parametrize("name", ["gcc", "vortex"])
    def test_capacity_share_dominates(self, name, store):
        trace = store.get(name, "test")
        result = classify_misses(trace.records, CacheGeometry(16 * 1024, 32))
        assert result.fraction("capacity") + result.fraction("compulsory") > 0.4

    def test_vortex_touches_a_large_footprint(self, store):
        trace = store.get("vortex", "test")
        assert trace.footprint_words() * 4 > 64 * 1024  # > 64 KB

    def test_go_book_exceeds_one_cache(self, store):
        trace = store.get("go", "test")
        # The opening book plus boards and pattern table must exceed
        # 16 KB, or the capacity story collapses.
        assert trace.footprint_words() * 4 > 16 * 1024
