"""Algorithm-level correctness of the analog workloads.

The analogs must be *real programs*; these tests verify the algorithms
themselves, independent of the cache studies: the LZW stream is
losslessly decompressible, the DCT codec reconstructs the image within
quantisation error, the guest checksum matches an independent Python
computation, and the perl token counts match a host-side recount.
"""

from collections import Counter

from repro.mem.space import AddressSpace
from repro.workloads.compress import (
    _FIRST_CODE,
    CompressWorkload,
)
from repro.workloads.ijpeg import IjpegWorkload
from repro.workloads.perl import PerlWorkload, pack_chars


class TestLzwLosslessness:
    def test_compress_decompress_roundtrip(self):
        """Reference LZW pair over the exact input the workload uses."""
        workload = CompressWorkload()
        data = workload._make_input(workload.input_named("test"))

        # Host-side compressor replicating the workload's algorithm
        # (unbounded dictionary, matching its growth rule).
        codes = []
        dictionary = {bytes([c]): c for c in range(256)}
        next_code = _FIRST_CODE
        current = b""
        for byte in data:
            candidate = current + bytes([byte])
            if candidate in dictionary:
                current = candidate
            else:
                codes.append(dictionary[current])
                dictionary[candidate] = next_code
                next_code += 1
                current = bytes([byte])
        if current:
            codes.append(dictionary[current])

        # Reference decompressor.
        inverse = {c: bytes([c]) for c in range(256)}
        next_code = _FIRST_CODE
        output = bytearray(inverse[codes[0]])
        previous = inverse[codes[0]]
        for code in codes[1:]:
            if code in inverse:
                entry = inverse[code]
            else:  # the KwKwK special case
                entry = previous + previous[:1]
            output += entry
            inverse[next_code] = previous + entry[:1]
            next_code += 1
            previous = entry
        assert bytes(output) == data

    def test_workload_input_deterministic(self):
        workload = CompressWorkload()
        inp = workload.input_named("test")
        assert workload._make_input(inp) == workload._make_input(inp)


class TestDctCodec:
    def test_reconstruction_close_to_original(self):
        """Run the codec and compare the reconstructed image with the
        source: mean absolute error bounded by the quantisation step."""
        workload = IjpegWorkload()
        inp = workload.input_named("test")
        space = AddressSpace()
        workload._run(space, inp)
        size = inp.params["size"]
        # Regions were allocated in order: pixels, coeffs, recon, quant.
        pixels_base = space.layout.static_base
        recon_base = pixels_base + (size * size + size * size // 2) * 4
        errors = []
        peek = space.memory.peek
        for index in range(size * size):
            original = peek(pixels_base + index * 4)
            restored = peek(recon_base + index * 4)
            errors.append(abs(original - restored))
        mean_error = sum(errors) / len(errors)
        assert mean_error < 12  # within quantisation error
        assert max(errors) < 80


class TestPerlCounting:
    def test_hash_counts_match_host_recount(self):
        """Walk the final hash table and compare each packed token's
        count against a straight recount of the generated corpus."""
        workload = PerlWorkload()
        inp = workload.input_named("test")
        space = AddressSpace()
        workload._run(space, inp)
        peek = space.memory.peek

        # Rebuild the corpus host-side (same deterministic generator).
        vocabulary = workload._make_vocabulary(inp)
        # Recount by re-reading the corpus region from memory instead,
        # which avoids duplicating the Zipf sampling logic.
        base = space.layout.static_base
        aligned = (base + 0xFFFF) & ~0xFFFF
        line_words = 32
        corpus = aligned + (line_words + 1024 + 2048) * 4
        expected = Counter()
        for line in range(inp.params["lines"]):
            chars = []
            for word_index in range(line_words):
                packed = peek(corpus + (line * line_words + word_index) * 4)
                for shift in (0, 8, 16, 24):
                    chars.append((packed >> shift) & 0xFF)
            token = []
            for char in chars:
                if char in (0x20, 0):
                    if token:
                        expected[bytes(token[:8])] += 1
                        token = []
                else:
                    token.append(char)
            if token:
                expected[bytes(token[:8])] += 1

        # Walk the simulated hash table.
        buckets = aligned + line_words * 4
        measured = Counter()
        for index in range(1024):
            entry = peek(buckets + index * 4)
            while entry:
                packed0 = peek(entry)
                packed1 = peek(entry + 4)
                count = peek(entry + 8)
                token = bytes(
                    (packed0 >> shift) & 0xFF for shift in (0, 8, 16, 24)
                ) + bytes(
                    (packed1 >> shift) & 0xFF for shift in (0, 8, 16, 24)
                )
                measured[token.rstrip(b"\x00")] += count
                entry = peek(entry + 12)
        total_expected = sum(expected.values())
        total_measured = sum(measured.values())
        assert total_measured == total_expected
        # Spot-check the hottest token.
        hottest, hottest_count = expected.most_common(1)[0]
        assert measured[hottest.rstrip(b"\x00")] == hottest_count


class TestPackChars:
    def test_little_endian_packing(self):
        assert pack_chars("xxxx") == 0x78787878
        assert pack_chars("x") == 0x78
        assert pack_chars("abcd") == 0x64636261
        assert pack_chars("") == 0
