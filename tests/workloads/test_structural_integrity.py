"""Structural-integrity tests: the data structures the workloads build
in simulated memory must be well-formed after the run.

These walk the final memory images directly (untraced peeks), checking
the invariants a real program would rely on — acyclic hash chains,
intact board borders, tree-shaped ASTs.
"""

from repro.mem.space import AddressSpace
from repro.workloads.go import GoWorkload, _EDGE
from repro.workloads.vortex import VortexWorkload


class TestGoBoard:
    def _board(self, input_name="test"):
        workload = GoWorkload()
        space = AddressSpace()
        workload._run(space, workload.input_named(input_name))
        return space, space.layout.static_base

    def test_border_sentinels_intact(self):
        space, board = self._board()
        stride = 21
        peek = space.memory.peek
        for index in range(stride * stride):
            row, col = divmod(index, stride)
            on_board = 1 <= row <= 19 and 1 <= col <= 19
            value = peek(board + index * 4)
            if not on_board:
                assert value == _EDGE
            else:
                assert value in (0, 1, 2)

    def test_stones_were_placed(self):
        space, board = self._board()
        stride = 21
        stones = sum(
            1
            for index in range(stride * stride)
            if space.memory.peek(board + index * 4) in (1, 2)
        )
        assert stones > 10

    def test_both_colours_played(self):
        space, board = self._board()
        stride = 21
        values = {
            space.memory.peek(board + index * 4)
            for index in range(stride * stride)
        }
        assert {1, 2} <= values


class TestVortexIndexes:
    def _space(self, input_name="test"):
        workload = VortexWorkload()
        space = AddressSpace()
        workload._run(space, workload.input_named(input_name))
        return workload, space

    def test_id_chains_acyclic_and_consistent(self):
        workload, space = self._space()
        peek = space.memory.peek
        id_index = space.layout.static_base
        found = 0
        for bucket in range(2048):
            entry = peek(id_index + bucket * 4)
            seen = set()
            while entry:
                assert entry not in seen, "cycle in id chain"
                seen.add(entry)
                object_id = peek(entry + 4)
                assert object_id % 2048 == bucket, "object in wrong bucket"
                entry = peek(entry + 12)
            found += len(seen)
        assert found > 1000  # most objects indexed

    def test_every_indexed_object_has_valid_type(self):
        workload, space = self._space()
        peek = space.memory.peek
        id_index = space.layout.static_base
        for bucket in range(0, 2048, 7):
            entry = peek(id_index + bucket * 4)
            while entry:
                assert peek(entry) in (4, 5, 6, 0x30)
                entry = peek(entry + 12)
