"""Semantic tests of the Lisp evaluator (the li analog's engine).

The workload only needs the *memory behaviour*, but the interpreter is
a real evaluator — so its semantics are tested like one.
"""

import pytest

from repro.mem.space import AddressSpace
from repro.workloads.li import (
    NIL,
    LispMachine,
    fixnum_value,
    is_fixnum,
    make_fixnum,
)


@pytest.fixture
def machine():
    space = AddressSpace()
    machine = LispMachine(space)
    for name in ("quote", "if", "lambda", "define"):
        machine.intern(name)
    machine.install_builtins()
    return machine


def evaluate(machine, source):
    return machine.eval(machine.read(source))


class TestTagging:
    def test_fixnum_roundtrip(self):
        for n in (0, 1, 7, -1, -300, 40000):
            assert fixnum_value(make_fixnum(n)) == n
            assert is_fixnum(make_fixnum(n))

    def test_paper_table1_values(self):
        # li's Table 1 values 0x3/0x103/0x303 are the tagged 0, 1, 3.
        assert make_fixnum(0) == 0x3
        assert make_fixnum(1) == 0x103
        assert make_fixnum(3) == 0x303

    def test_nil_is_zero(self):
        assert NIL == 0
        assert not is_fixnum(NIL)


class TestEvaluator:
    def test_self_evaluating(self, machine):
        assert evaluate(machine, 5) == make_fixnum(5)

    def test_arithmetic(self, machine):
        assert evaluate(machine, ["+", 2, 3]) == make_fixnum(5)
        assert evaluate(machine, ["*", ["-", 7, 2], 4]) == make_fixnum(20)

    def test_comparisons(self, machine):
        assert evaluate(machine, ["<", 1, 2]) != NIL
        assert evaluate(machine, ["<", 2, 1]) == NIL
        assert evaluate(machine, ["=", 3, 3]) != NIL

    def test_quote(self, machine):
        cell = evaluate(machine, ["quote", [1, 2]])
        assert machine.car(cell) == make_fixnum(1)
        assert machine.car(machine.cdr(cell)) == make_fixnum(2)
        assert machine.cdr(machine.cdr(cell)) == NIL

    def test_if_branches(self, machine):
        assert evaluate(machine, ["if", ["<", 1, 2], 10, 20]) == make_fixnum(10)
        assert evaluate(machine, ["if", ["<", 2, 1], 10, 20]) == make_fixnum(20)
        assert evaluate(machine, ["if", ["<", 2, 1], 10]) == NIL

    def test_define_and_lookup(self, machine):
        evaluate(machine, ["define", "x", 42])
        assert evaluate(machine, "x") == make_fixnum(42)

    def test_lambda_application(self, machine):
        evaluate(machine, ["define", "sq", ["lambda", ["n"], ["*", "n", "n"]]])
        assert evaluate(machine, ["sq", 9]) == make_fixnum(81)

    def test_lexical_shadowing(self, machine):
        evaluate(machine, ["define", "n", 100])
        evaluate(machine, ["define", "id", ["lambda", ["n"], "n"]])
        assert evaluate(machine, ["id", 7]) == make_fixnum(7)
        assert evaluate(machine, "n") == make_fixnum(100)

    def test_recursion_fib(self, machine):
        evaluate(machine, [
            "define", "fib",
            ["lambda", ["n"],
             ["if", ["<", "n", 2], "n",
              ["+", ["fib", ["-", "n", 1]], ["fib", ["-", "n", 2]]]]]])
        assert evaluate(machine, ["fib", 10]) == make_fixnum(55)

    def test_list_builtins(self, machine):
        pair = evaluate(machine, ["cons", 1, 2])
        assert machine.car(pair) == make_fixnum(1)
        assert machine.cdr(pair) == make_fixnum(2)
        assert evaluate(machine, ["null", ["quote", []]]) != NIL
        assert evaluate(machine, ["null", 5]) == NIL

    def test_rplacd_mutation(self, machine):
        evaluate(machine, ["define", "p", ["cons", 1, 2]])
        evaluate(machine, ["rplacd", "p", 9])
        cell = evaluate(machine, "p")
        assert machine.cdr(cell) == make_fixnum(9)


class TestArenas:
    def test_free_arena_recycles_addresses(self, machine):
        machine.commit_permanent()
        a = machine.cons(NIL, NIL)
        machine.free_arena()
        b = machine.cons(NIL, NIL)
        assert a == b  # exact-size free-list reuse

    def test_commit_protects_permanent_structure(self, machine):
        table = machine.list_from([make_fixnum(1), make_fixnum(2)])
        machine.commit_permanent()
        machine.cons(NIL, NIL)
        machine.free_arena()
        # The permanent list is intact after collection.
        assert machine.car(table) == make_fixnum(1)
        assert machine.car(machine.cdr(table)) == make_fixnum(2)
