"""Behavioural tests of the whole analog suite.

These pin the properties the experiments rely on: determinism, address
validity, the frequent-value-locality split between the six FVL analogs
and the two controls, and each workload's distinguishing signature.
"""

import pytest

from repro.mem.memory import LOAD, STORE
from repro.profiling.access import profile_accessed_values
from repro.profiling.constancy import profile_constancy
from repro.workloads.registry import ALL_WORKLOADS, get_workload

_ALL_NAMES = [w.name for w in ALL_WORKLOADS]


class TestSuiteInvariants:
    @pytest.mark.parametrize("name", _ALL_NAMES)
    def test_deterministic(self, name, store):
        workload = get_workload(name)
        first = store.get(name, "test")
        second = workload.generate_trace("test")
        assert first.records == second.records

    @pytest.mark.parametrize("name", _ALL_NAMES)
    def test_records_well_formed(self, name, store):
        trace = store.get(name, "test")
        assert len(trace) > 1000
        for op, address, value in trace.records:
            assert op in (LOAD, STORE)
            assert address % 4 == 0
            assert 0 <= address < 2**32
            assert 0 <= value < 2**32

    @pytest.mark.parametrize("name", _ALL_NAMES)
    def test_loads_replayable(self, name, store):
        """Replaying stores against zero memory reproduces every load —
        the contract the FVC simulator depends on."""
        state = {}
        for op, address, value in store.get(name, "test").records:
            if op == STORE:
                state[address] = value
            else:
                assert state.get(address, 0) == value

    @pytest.mark.parametrize("name", _ALL_NAMES)
    def test_inputs_scale(self, name):
        workload = get_workload(name)
        test_trace = workload.generate_trace("test")
        train_trace = workload.generate_trace("train")
        assert len(train_trace) > len(test_trace)


class TestFrequentValueSplit:
    def test_fvl_analogs_beat_controls(self, store):
        coverages = {
            name: profile_accessed_values(store.get(name, "test")).coverage(10)
            for name in _ALL_NAMES[:8]
        }
        fvl = [coverages[n] for n in ("go", "m88ksim", "gcc", "li", "perl",
                                      "vortex")]
        controls = [coverages["compress"], coverages["ijpeg"]]
        assert min(fvl) > max(controls) - 0.05
        assert sum(fvl) / len(fvl) > 0.35

    def test_fp_analogs_have_high_coverage(self, store):
        for name in ("swim", "tomcatv", "mgrid", "applu"):
            profile = profile_accessed_values(store.get(name, "test"))
            assert profile.coverage(10) > 0.3


class TestSignatures:
    def test_ijpeg_mutates_almost_everything(self, store):
        result = profile_constancy(store.get("ijpeg", "test"))
        assert result.constant_fraction < 0.15

    def test_li_mutates_more_than_other_fvl(self, store):
        li = profile_constancy(store.get("li", "test")).constant_fraction
        perl = profile_constancy(store.get("perl", "test")).constant_fraction
        assert li < perl

    def test_perl_packed_ascii_values(self, store):
        top = profile_accessed_values(store.get("perl", "test")).top_values(10)
        assert 0x78787878 in top or 0x20202020 in top

    def test_li_tagged_fixnums(self, store):
        profile = profile_accessed_values(store.get("li", "test"))
        top = [value for value, _ in profile.ranked[:20]]
        assert any(value & 0xFF == 3 for value in top)

    def test_go_small_board_values(self, store):
        top = profile_accessed_values(store.get("go", "test")).top_values(5)
        assert 0 in top and 1 in top

    def test_m88ksim_retires_guest_instructions(self):
        workload = get_workload("m88ksim")
        workload.generate_trace("test")
        assert workload.last_retired > 10_000

    def test_fp_zero_dominance(self, store):
        # swim/mgrid grids are zero-dominated (float 0.0 packs to 0).
        for name in ("swim", "mgrid"):
            top = profile_accessed_values(store.get(name, "test")).top_values(3)
            assert 0 in top
