"""Structural tests of the gcc analog's compiler data structures."""

from repro.mem.space import AddressSpace
from repro.workloads.gcc import (
    _BINARY_TAGS,
    _SYMTAB_BUCKETS,
    _TAG_NUM,
    GccWorkload,
)


def _space(input_name="test"):
    workload = GccWorkload()
    space = AddressSpace()
    workload._run(space, workload.input_named(input_name))
    return space


class TestSymbolTable:
    def test_chains_acyclic_and_bucketed(self):
        space = _space()
        peek = space.memory.peek
        buckets = space.layout.static_base
        entries = 0
        for bucket in range(_SYMTAB_BUCKETS):
            entry = peek(buckets + bucket * 4)
            seen = set()
            while entry:
                assert entry not in seen, "cycle in symbol chain"
                seen.add(entry)
                name_id = peek(entry)
                assert name_id % _SYMTAB_BUCKETS == bucket
                assert peek(entry + 4) == name_id * 3 + 1  # value rule
                assert peek(entry + 12) == 1  # flags
                entry = peek(entry + 8)
            entries += len(seen)
        assert entries > 50  # a real population of symbols

    def test_no_duplicate_symbols_per_chain(self):
        space = _space()
        peek = space.memory.peek
        buckets = space.layout.static_base
        for bucket in range(_SYMTAB_BUCKETS):
            entry = peek(buckets + bucket * 4)
            names = []
            while entry:
                names.append(peek(entry))
                entry = peek(entry + 8)
            assert len(names) == len(set(names))


def _is_symbol_entry(peek, base: int) -> bool:
    """Symbol entries share the heap with AST nodes (arena reuse); they
    are identified by their [name_id, 3*name_id+1, next, 1] shape."""
    name_id = peek(base)
    return peek(base + 4) == name_id * 3 + 1 and peek(base + 12) == 1


class TestFoldingSemantics:
    def test_folded_nodes_are_proper_leaves(self):
        """After constant folding, every NUM node in the final heap
        must have null children — fold() rewrites in place."""
        space = _space()
        peek = space.memory.peek
        heap_base = space.layout.heap_base
        # Walk the heap arena: nodes are 4-word records.
        checked = 0
        for offset in range(0, 4000 * 16, 16):
            base = heap_base + offset
            tag = peek(base)
            if tag == _TAG_NUM and not _is_symbol_entry(peek, base):
                assert peek(base + 4) == 0
                assert peek(base + 8) == 0
                checked += 1
        assert checked > 20

    def test_interior_nodes_have_heap_children(self):
        space = _space()
        peek = space.memory.peek
        heap_base = space.layout.heap_base
        interior = 0
        for offset in range(0, 4000 * 16, 16):
            tag = peek(heap_base + offset)
            base = heap_base + offset
            if tag in _BINARY_TAGS and not _is_symbol_entry(peek, base):
                left = peek(base + 4)
                assert left == 0 or left >= heap_base
                interior += 1
        assert interior > 5
