"""Tests for the workload base class, registry and trace store."""

import pytest

from repro.common.errors import WorkloadError
from repro.workloads.base import Workload, WorkloadInput
from repro.workloads.registry import (
    ALL_WORKLOADS,
    FP_WORKLOADS,
    FVL_WORKLOADS,
    INT_WORKLOADS,
    NON_FVL_WORKLOADS,
    get_workload,
    workload_names,
)
from repro.workloads.store import TraceStore


class _Toy(Workload):
    name = "toy"
    spec_analog = "000.toy"

    def inputs(self):
        return {"test": WorkloadInput("test", {"n": 3}, data_seed=1)}

    def _run(self, space, inp):
        base = space.static.alloc(inp.params["n"])
        for index in range(inp.params["n"]):
            space.store(base + index * 4, index)


class TestWorkloadBase:
    def test_generate_trace(self):
        trace = _Toy().generate_trace("test")
        assert len(trace) == 3
        assert trace.workload == "toy"
        assert trace.input_name == "test"

    def test_unknown_input_rejected(self):
        with pytest.raises(WorkloadError):
            _Toy().generate_trace("ref")

    def test_rng_streams_deterministic(self):
        toy = _Toy()
        inp = toy.input_named("test")
        assert toy._rng(inp, "a").random() == toy._rng(inp, "a").random()

    def test_repr(self):
        assert "000.toy" in repr(_Toy())


class TestRegistry:
    def test_groupings(self):
        assert len(FVL_WORKLOADS) == 6
        assert len(NON_FVL_WORKLOADS) == 2
        assert len(INT_WORKLOADS) == 8
        assert len(FP_WORKLOADS) == 6
        assert len(ALL_WORKLOADS) == 14

    def test_names_unique(self):
        names = workload_names()
        assert len(names) == len(set(names))

    def test_lookup(self):
        assert get_workload("gcc").spec_analog == "126.gcc"
        with pytest.raises(WorkloadError):
            get_workload("nope")

    def test_fvl_flags_match_groupings(self):
        assert all(w.exhibits_fvl for w in FVL_WORKLOADS)
        assert not any(w.exhibits_fvl for w in NON_FVL_WORKLOADS)

    def test_every_workload_has_three_inputs(self):
        for workload in ALL_WORKLOADS:
            assert set(workload.inputs()) == {"test", "train", "ref"}


class TestTraceStore:
    def test_caches_and_evicts_lru(self):
        store = TraceStore(max_traces=2)
        a = store.get("go", "test")
        assert store.get("go", "test") is a  # cached
        store.get("li", "test")
        store.get("compress", "test")  # evicts go
        assert len(store) == 2
        assert store.hits == 1
        assert store.misses == 3
        b = store.get("go", "test")  # regenerated, equal content
        assert b is not a
        assert b == a

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            TraceStore(max_traces=0)

    def test_clear(self):
        store = TraceStore()
        store.get("go", "test")
        store.clear()
        assert len(store) == 0
