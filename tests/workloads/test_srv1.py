"""Tests for the SRV-1 guest machine (ISA, assembler, interpreter)."""

import pytest

from repro.common.errors import SimulatedMachineError
from repro.mem.space import AddressSpace
from repro.workloads.srv1 import (
    ADD,
    ADDI,
    AND,
    Assembler,
    BEQ,
    BLT,
    BNE,
    HALT,
    JMP,
    LD,
    LDI,
    MOV,
    MUL,
    SHR,
    ST,
    SUB,
    XOR,
    Srv1Machine,
    decode_fields,
    disassemble,
    encode,
)


class TestEncoding:
    def test_roundtrip(self):
        word = encode(ADD, rd=3, rs=5, imm=-7)
        assert decode_fields(word) == (ADD, 3, 5, -7)

    def test_immediate_range(self):
        assert decode_fields(encode(LDI, imm=0xFFFF))[3] == -1
        assert decode_fields(encode(LDI, imm=0x7FFF))[3] == 0x7FFF

    def test_bad_operands_rejected(self):
        with pytest.raises(SimulatedMachineError):
            encode(99)
        with pytest.raises(SimulatedMachineError):
            encode(ADD, rd=16)
        with pytest.raises(SimulatedMachineError):
            encode(LDI, imm=0x10000)

    def test_disassemble(self):
        assert disassemble(encode(ADD, 1, 2, 0)) == "add r1, r2, 0"


class TestAssembler:
    def test_labels_resolve_backwards(self):
        asm = Assembler()
        asm.label("loop")
        asm.emit(ADDI, 1, 0, 1)
        asm.branch(BNE, 1, 2, "loop")
        words = asm.assemble()
        # Branch offset is relative to the next instruction: -2.
        assert decode_fields(words[1])[3] == -2

    def test_labels_resolve_forwards(self):
        asm = Assembler()
        asm.branch(JMP, 0, 0, "end")
        asm.emit(ADDI, 1, 0, 1)
        asm.label("end")
        asm.emit(HALT)
        assert decode_fields(asm.assemble()[0])[3] == 1

    def test_duplicate_label_rejected(self):
        asm = Assembler()
        asm.label("x")
        with pytest.raises(SimulatedMachineError):
            asm.label("x")

    def test_undefined_label_rejected(self):
        asm = Assembler()
        asm.branch(JMP, 0, 0, "nowhere")
        with pytest.raises(SimulatedMachineError):
            asm.assemble()


def _machine():
    space = AddressSpace()
    static = space.static
    base = space.layout.static_base
    code_base = static.alloc(256, at=base + 0x100)
    regfile_base = static.alloc(16, at=base + 0x600)
    decode_base = static.alloc(32, at=base + 0x700)
    flags_base = static.alloc(8, at=base + 0x800)
    prot_base = static.alloc(8, at=base + 0x900)
    ram_base = static.alloc(4096, at=base + 0x1000)
    return space, Srv1Machine(
        space,
        code_base=code_base,
        regfile_base=regfile_base,
        ram_base=ram_base,
        decode_base=decode_base,
        flags_base=flags_base,
        prot_base=prot_base,
    )


def _run(program_builder, max_instructions=10_000):
    space, machine = _machine()
    machine.initialise_decode_table()
    asm = Assembler()
    program_builder(asm)
    machine.load_program(asm.assemble())
    machine.run(max_instructions=max_instructions)
    return machine


class TestExecution:
    def test_arithmetic_program(self):
        def program(asm):
            asm.emit(LDI, 1, 0, 6)
            asm.emit(LDI, 2, 0, 7)
            asm.emit(MUL, 1, 2, 0)  # r1 = 42
            asm.emit(LDI, 3, 0, 40)
            asm.emit(SUB, 1, 3, 0)  # r1 = 2
            asm.emit(HALT)

        machine = _run(program)
        assert machine.register(1) == 2

    def test_memory_and_loop(self):
        def program(asm):
            # Write i*i for i in 0..4 into guest RAM, then sum them.
            asm.emit(LDI, 1, 0, 0)
            asm.emit(LDI, 2, 0, 5)
            asm.label("write")
            asm.emit(MOV, 3, 1, 0)
            asm.emit(MUL, 3, 3, 0)
            asm.emit(ST, 3, 1, 0)
            asm.emit(ADDI, 1, 0, 1)
            asm.branch(BNE, 1, 2, "write")
            asm.emit(LDI, 1, 0, 0)
            asm.emit(LDI, 4, 0, 0)
            asm.label("sum")
            asm.emit(LD, 3, 1, 0)
            asm.emit(ADD, 4, 3, 0)
            asm.emit(ADDI, 1, 0, 1)
            asm.branch(BNE, 1, 2, "sum")
            asm.emit(HALT)

        machine = _run(program)
        assert machine.register(4) == sum(i * i for i in range(5))
        assert machine.guest_word(3) == 9

    def test_branches(self):
        def program(asm):
            asm.emit(LDI, 1, 0, 5)
            asm.emit(LDI, 2, 0, 5)
            asm.branch(BEQ, 1, 2, "equal")
            asm.emit(LDI, 3, 0, 111)
            asm.emit(HALT)
            asm.label("equal")
            asm.emit(LDI, 3, 0, 222)
            asm.emit(HALT)

        assert _run(program).register(3) == 222

    def test_signed_compare(self):
        def program(asm):
            asm.emit(LDI, 1, 0, -3)  # 0xFFFFFFFD
            asm.emit(LDI, 2, 0, 2)
            asm.branch(BLT, 1, 2, "less")
            asm.emit(LDI, 3, 0, 0)
            asm.emit(HALT)
            asm.label("less")
            asm.emit(LDI, 3, 0, 1)
            asm.emit(HALT)

        assert _run(program).register(3) == 1

    def test_logic_ops(self):
        def program(asm):
            asm.emit(LDI, 1, 0, 0xF0F)
            asm.emit(LDI, 2, 0, 0x0FF)
            asm.emit(AND, 1, 2, 0)  # 0x00F
            asm.emit(LDI, 2, 0, 0x010)
            asm.emit(XOR, 1, 2, 0)  # 0x01F
            asm.emit(SHR, 1, 0, 4)  # 0x001
            asm.emit(HALT)

        assert _run(program).register(1) == 1

    def test_instruction_budget_stops_runaway(self):
        def program(asm):
            asm.label("spin")
            asm.branch(JMP, 0, 0, "spin")

        machine = _run(program, max_instructions=50)
        assert machine.instructions_retired == 50

    def test_illegal_instruction_raises(self):
        space, machine = _machine()
        machine.initialise_decode_table()
        space.store_block(
            machine._code, [0x10 << 24]  # opcode 16: undefined
        )
        with pytest.raises(SimulatedMachineError):
            machine.run(max_instructions=10)

    def test_bookkeeping_structures_touched(self):
        def program(asm):
            asm.emit(LDI, 1, 0, 0)
            asm.emit(LDI, 2, 0, 200)
            asm.label("loop")
            asm.emit(LD, 3, 1, 0)
            asm.emit(ADDI, 1, 0, 1)
            asm.branch(BNE, 1, 2, "loop")
            asm.emit(HALT)

        space, machine = _machine()
        machine.initialise_decode_table()
        asm = Assembler()
        program(asm)
        machine.load_program(asm.assemble())
        record = []
        space.memory._record = record  # capture from here on
        machine.run(max_instructions=5000)
        touched = {addr for _, addr, _ in record}
        assert any(machine._flags <= a < machine._flags + 32 for a in touched)
        assert any(machine._prot <= a < machine._prot + 32 for a in touched)
