"""Tests for the energy model."""

from repro.cache.geometry import CacheGeometry
from repro.cache.stats import CacheStats
from repro.timing.energy import DEFAULT_ENERGY_MODEL, EnergyModel

GEOMETRY = CacheGeometry(16 * 1024, 32)


def _stats(accesses=1000, traffic=500) -> CacheStats:
    stats = CacheStats()
    stats.read_hits = accesses
    stats.fill_words = traffic
    return stats


class TestEnergyModel:
    def test_bus_dominates_sram(self):
        # Moving one word off-chip costs far more than one array access.
        model = DEFAULT_ENERGY_MODEL
        assert model.traffic_nj(1) > 10 * model.dmc_access_nj(GEOMETRY)

    def test_fvc_probe_cheaper_than_dmc(self):
        # 24-bit code field vs a 256-bit data line.
        model = DEFAULT_ENERGY_MODEL
        assert model.fvc_access_nj(8, 3) < model.dmc_access_nj(GEOMETRY)

    def test_baseline_total_scales_with_traffic(self):
        model = DEFAULT_ENERGY_MODEL
        low = model.baseline_total_nj(_stats(traffic=100), GEOMETRY)
        high = model.baseline_total_nj(_stats(traffic=10_000), GEOMETRY)
        assert high > low

    def test_fvc_system_pays_both_probes(self):
        model = DEFAULT_ENERGY_MODEL
        stats = _stats()
        assert model.fvc_system_total_nj(stats, GEOMETRY, 3) > (
            model.baseline_total_nj(stats, GEOMETRY)
        ) - model.traffic_nj(stats.traffic_words) * 0  # same traffic term

    def test_traffic_reduction_can_win_despite_double_probe(self):
        # The paper's argument: if the FVC halves traffic, the extra
        # probe energy is negligible.
        model = DEFAULT_ENERGY_MODEL
        base = _stats(accesses=10_000, traffic=20_000)
        improved = _stats(accesses=10_000, traffic=10_000)
        assert model.fvc_system_total_nj(improved, GEOMETRY, 3) < (
            model.baseline_total_nj(base, GEOMETRY)
        )

    def test_custom_model(self):
        expensive_bus = EnergyModel(bus_word_nj=100.0)
        assert expensive_bus.traffic_nj(10) == 1000.0
