"""Tests for the execution-time (AMAT) model."""

import pytest

from repro.cache.geometry import CacheGeometry
from repro.cache.stats import CacheStats
from repro.timing.performance import (
    DEFAULT_PERFORMANCE_MODEL,
    PerformanceModel,
)

GEOMETRY = CacheGeometry(16 * 1024, 32)


def _stats(accesses: int, misses: int) -> CacheStats:
    stats = CacheStats()
    stats.read_hits = accesses - misses
    stats.read_misses = misses
    return stats


class TestPerformanceModel:
    def test_cycle_time_is_slower_path(self):
        model = DEFAULT_PERFORMANCE_MODEL
        plain = model.cycle_time_ns(GEOMETRY)
        with_small_fvc = model.cycle_time_ns(GEOMETRY, fvc_entries=64)
        assert with_small_fvc == plain  # the DMC dominates
        huge_fvc = model.cycle_time_ns(CacheGeometry(4 * 1024, 64),
                                       fvc_entries=4096)
        assert huge_fvc > model.cycle_time_ns(CacheGeometry(4 * 1024, 64))

    def test_miss_penalty_scales_with_line(self):
        model = DEFAULT_PERFORMANCE_MODEL
        short = model.miss_penalty_ns(CacheGeometry(16 * 1024, 16))
        long = model.miss_penalty_ns(CacheGeometry(16 * 1024, 64))
        assert long > short

    def test_amat_improves_with_fewer_misses(self):
        model = DEFAULT_PERFORMANCE_MODEL
        worse = model.amat_ns(_stats(1000, 100), GEOMETRY)
        better = model.amat_ns(_stats(1000, 40), GEOMETRY)
        assert better < worse

    def test_amat_zero_for_empty_run(self):
        assert DEFAULT_PERFORMANCE_MODEL.amat_ns(CacheStats(), GEOMETRY) == 0.0

    def test_execution_time_decomposition(self):
        model = PerformanceModel(memory_latency_ns=100.0, bus_ns_per_word=0.0)
        stats = _stats(10, 2)
        expected = 10 * model.cycle_time_ns(GEOMETRY) + 2 * 100.0
        assert model.execution_time_ns(stats, GEOMETRY) == pytest.approx(expected)

    def test_bigger_cache_pays_cycle_time(self):
        # The doubling trade-off the paper highlights: the 32 KB array
        # is slower per access even when it misses less.
        model = DEFAULT_PERFORMANCE_MODEL
        small = model.cycle_time_ns(CacheGeometry(16 * 1024, 32))
        big = model.cycle_time_ns(CacheGeometry(32 * 1024, 32))
        assert big > small
