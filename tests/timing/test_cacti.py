"""Tests for the calibrated CACTI-style timing model.

These pin exactly the properties the experiments rely on: monotone
growth with array size, and the paper's three calibration anchors.
"""

import pytest

from repro.cache.geometry import CacheGeometry
from repro.common.errors import ConfigurationError
from repro.timing.cacti import DEFAULT_MODEL, CactiModel


class TestCalibrationAnchors:
    def test_fvc_512_is_about_6ns(self):
        assert DEFAULT_MODEL.fvc_access_ns(512, 3, 8) == pytest.approx(6.0, abs=0.15)

    def test_victim_cache_4_entries_is_about_9ns(self):
        assert DEFAULT_MODEL.fully_associative_access_ns(4, 32) == pytest.approx(
            9.0, abs=0.15
        )

    def test_exactly_twelve_admissible_configs(self):
        admissible = [
            (kb, lb)
            for kb in (4, 8, 16, 32, 64)
            for lb in (16, 32, 64)
            if DEFAULT_MODEL.fvc_fits_dmc(
                512, 3, CacheGeometry(kb * 1024, lb)
            )
        ]
        assert len(admissible) == 12
        # The fast outliers are the small-and-wide arrays.
        assert (4, 32) not in admissible
        assert (4, 64) not in admissible
        assert (8, 64) not in admissible


class TestMonotonicity:
    def test_dmc_time_grows_with_size(self):
        times = [
            DEFAULT_MODEL.direct_mapped_access_ns(CacheGeometry(kb * 1024, 32))
            for kb in (4, 8, 16, 32, 64)
        ]
        assert times == sorted(times)

    def test_fvc_time_grows_with_entries(self):
        times = [
            DEFAULT_MODEL.fvc_access_ns(entries, 3, 8)
            for entries in (64, 128, 256, 512, 1024, 2048, 4096)
        ]
        assert times == sorted(times)

    def test_fvc_varies_only_slightly_with_line_size(self):
        # The paper notes "small variation" across DMC configurations.
        narrow = DEFAULT_MODEL.fvc_access_ns(512, 3, 4)
        wide = DEFAULT_MODEL.fvc_access_ns(512, 3, 16)
        assert 0 < wide - narrow < 0.3

    def test_set_associative_adds_way_mux(self):
        direct = DEFAULT_MODEL.direct_mapped_access_ns(
            CacheGeometry(16 * 1024, 32)
        )
        two_way = DEFAULT_MODEL.set_associative_access_ns(
            CacheGeometry(16 * 1024, 32, ways=2)
        )
        assert two_way > direct - 1.0  # mux offsets the shorter array

    def test_set_associative_delegates_for_one_way(self):
        geometry = CacheGeometry(16 * 1024, 32)
        assert DEFAULT_MODEL.set_associative_access_ns(
            geometry
        ) == DEFAULT_MODEL.direct_mapped_access_ns(geometry)


class TestValidation:
    def test_direct_model_rejects_set_associative(self):
        with pytest.raises(ConfigurationError):
            DEFAULT_MODEL.direct_mapped_access_ns(
                CacheGeometry(16 * 1024, 32, ways=2)
            )

    def test_fvc_rejects_bad_shapes(self):
        with pytest.raises(ConfigurationError):
            DEFAULT_MODEL.fvc_access_ns(500, 3, 8)
        with pytest.raises(ConfigurationError):
            DEFAULT_MODEL.fvc_access_ns(512, 0, 8)

    def test_fully_associative_rejects_bad_shapes(self):
        with pytest.raises(ConfigurationError):
            DEFAULT_MODEL.fully_associative_access_ns(3, 32)

    def test_custom_model_is_usable(self):
        slow = CactiModel(scale=2.0)
        assert slow.direct_mapped_access_ns(
            CacheGeometry(16 * 1024, 32)
        ) > DEFAULT_MODEL.direct_mapped_access_ns(CacheGeometry(16 * 1024, 32))
