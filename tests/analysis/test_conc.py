"""CONC rules over the edge-case fixtures: detection where a race is
real, silence where the discipline holds."""

from __future__ import annotations

from pathlib import Path

from repro.analysis.linter import Linter

FIXTURES = Path(__file__).resolve().parent / "fixtures"


def lint(name, *codes):
    report = Linter(select=codes or ("CONC001", "CONC002", "CONC003")).lint_paths(
        [FIXTURES / f"{name}.py"]
    )
    return report.findings


class TestConc001:
    def test_unguarded_shared_write_is_found(self):
        findings = lint("conc001_unguarded")
        assert [(f.code, f.line) for f in findings] == [("CONC001", 17)]
        assert "Counter.count" in findings[0].message

    def test_guarded_write_is_silent(self):
        assert lint("conc001_guarded") == []

    def test_lambda_and_decorated_thread_targets_are_contexts(self):
        findings = lint("conc_lambda_decorated")
        assert [(f.code, f.line) for f in findings] == [("CONC001", 27)]
        assert "State.hits" in findings[0].message

    def test_consistent_dict_locks_are_silent(self):
        assert lint("conc_dict_locks") == []


class TestConc002:
    def test_disjoint_locks_for_one_attribute_are_found(self):
        findings = lint("conc002_mixed_locks")
        assert [(f.code, f.line) for f in findings] == [("CONC002", 19)]
        message = findings[0].message
        assert "_debit_lock" in message and "_credit_lock" in message


class TestConc003:
    def test_blocking_under_with_and_linear_locks_found(self):
        findings = lint("conc003_blocking")
        assert [(f.code, f.line) for f in findings] == [
            ("CONC003", 22),
            ("CONC003", 26),
        ]

    def test_release_before_blocking_is_silent(self):
        # Line 33 (sleep after release) must not appear above.
        lines = {f.line for f in lint("conc003_blocking")}
        assert 33 not in lines
