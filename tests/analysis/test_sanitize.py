"""The runtime sanitizer: invariant checks hold on real simulations,
round-trips hold across every code width, corruption is detected, and a
sanitized parallel run stays bit-identical to an unsanitized sequential
one."""

from __future__ import annotations

import pytest

from repro.analysis import sanitize
from repro.analysis.sanitize import (
    MemoryAudit,
    SanitizeViolation,
    attach_fvc_system,
    check_baseline,
    check_codes_roundtrip,
    check_fvc_system,
    check_stats_conservation,
    sanitized_fvc_config,
)
from repro.cache.direct import DirectMappedCache
from repro.cache.geometry import CacheGeometry
from repro.cache.mainmem import MainMemory
from repro.cache.stats import CacheStats
from repro.fvc.encoding import FrequentValueEncoder
from repro.fvc.system import FvcSystem


@pytest.fixture(autouse=True)
def _fresh_counters():
    sanitize.reset_counters()
    yield
    sanitize.reset_counters()


class TestEnableDisable:
    def test_env_round_trip(self, monkeypatch):
        monkeypatch.delenv(sanitize.ENV_VAR, raising=False)
        assert not sanitize.enabled()
        sanitize.enable()
        assert sanitize.enabled()
        sanitize.disable()
        assert not sanitize.enabled()

    def test_truthy_spellings(self, monkeypatch):
        for value in ("1", "true", "YES", " on "):
            monkeypatch.setenv(sanitize.ENV_VAR, value)
            assert sanitize.enabled()
        for value in ("", "0", "off", "no"):
            monkeypatch.setenv(sanitize.ENV_VAR, value)
            assert not sanitize.enabled()


class TestRoundTrip:
    """Property: for every code width and line width, every code an
    encoder can emit survives decode→encode unchanged."""

    @pytest.mark.parametrize("code_bits", (1, 2, 3))
    @pytest.mark.parametrize("words_per_line", (1, 2, 4, 8))
    def test_all_codes_round_trip(self, code_bits, words_per_line):
        capacity = FrequentValueEncoder.capacity(code_bits)
        values = [i * 0x1111 for i in range(capacity)]
        encoder = FrequentValueEncoder(values, code_bits)
        # Lines cycling through every frequent code plus the
        # infrequent code (which round-trip skips by definition).
        all_codes = [encoder.encode(v) for v in values] + [
            encoder.infrequent_code
        ]
        for start in range(len(all_codes)):
            line = [
                all_codes[(start + i) % len(all_codes)]
                for i in range(words_per_line)
            ]
            check_codes_roundtrip(encoder, line)
        assert sanitize.counters()["fvc_code_roundtrip"] > 0

    def test_corrupt_code_detected(self):
        encoder = FrequentValueEncoder([0, 1, 2], 2)
        out_of_range = encoder.infrequent_code + 1
        with pytest.raises(SanitizeViolation, match="does not decode"):
            check_codes_roundtrip(encoder, [out_of_range])


class TestMemoryAudit:
    def test_transparent_and_counted(self):
        memory = MainMemory()
        audit = MemoryAudit(memory)
        audit.write_word(0x40, 7)
        assert memory.read_word(0x40) == 7
        assert audit.read_word(0x40) == 7
        audit.write_line(2, [1, 2, 3, 4])
        assert audit.read_line(2, 4) == [1, 2, 3, 4]
        assert audit.words_written == 5
        assert audit.words_read == 5
        assert len(audit) == len(memory)


class TestStatsConservation:
    def test_holds(self):
        stats = CacheStats()
        stats.read_hits = 3
        stats.read_misses = 2
        check_stats_conservation(stats, accesses=5)

    def test_access_count_mismatch(self):
        stats = CacheStats()
        stats.read_hits = 3
        with pytest.raises(SanitizeViolation, match="3 accesses recorded"):
            check_stats_conservation(stats, accesses=4)


class TestBaselineInvariants:
    def test_real_simulation_passes(self, store):
        trace = store.get("compress", "test")
        cache = DirectMappedCache(CacheGeometry(4 * 1024, 32))
        cache.simulate_batch(trace.records)
        check_baseline(cache, len(trace.records))
        assert sanitize.counters()["baseline_conservation"] == 1

    def test_fill_drift_detected(self, store):
        trace = store.get("compress", "test")
        cache = DirectMappedCache(CacheGeometry(4 * 1024, 32))
        cache.simulate_batch(trace.records)
        cache.stats.fills += 1
        with pytest.raises(SanitizeViolation, match="fill conservation"):
            check_baseline(cache, len(trace.records))


class TestFvcSystemInvariants:
    def _system(self, store, **config_kwargs):
        trace = store.get("compress", "test")
        encoder = FrequentValueEncoder([0, 1, 0xFFFFFFFF], 2)
        config = sanitized_fvc_config()
        if config_kwargs:
            import dataclasses

            config = dataclasses.replace(config, **config_kwargs)
        system = FvcSystem(
            CacheGeometry(4 * 1024, 32), 256, encoder, config=config
        )
        return system, trace

    def test_real_simulation_passes(self, store):
        system, trace = self._system(store)
        audit = attach_fvc_system(system)
        system.simulate_batch(trace.records)
        check_fvc_system(system, len(trace.records), audit)
        counts = sanitize.counters()
        assert counts["dmc_fvc_exclusion"] == 1
        assert counts["fvc_occupancy"] == 1
        assert counts["writeback_conservation"] == 1
        assert counts["fvc_code_roundtrip"] > 0

    def test_audit_is_observational(self, store):
        plain, trace = self._system(store)
        plain.simulate_batch(trace.records)
        audited, _ = self._system(store)
        attach_fvc_system(audited)
        audited.simulate_batch(trace.records)
        assert audited.stats.as_dict() == plain.stats.as_dict()
        assert audited.fvc_hits == plain.fvc_hits

    def test_conservation_identities(self, store):
        system, trace = self._system(store)
        audit = attach_fvc_system(system)
        system.simulate_batch(trace.records)
        assert audit.words_read == system.stats.fill_words
        assert audit.words_written == system.stats.writeback_words

    def test_exclusion_violation_detected(self, store):
        system, trace = self._system(store)
        system.simulate_batch(trace.records)
        # Force a double residency: install an FVC entry for a line the
        # main cache already holds.
        resident = system.main_resident_lines()[0]
        codes = system.encoder.encode_line([0] * 8)
        system.fvc.install(resident, codes)
        with pytest.raises(SanitizeViolation, match="exclusion broken"):
            check_fvc_system(system, len(trace.records))

    def test_occupancy_violation_detected(self, store):
        system, trace = self._system(store)
        system.simulate_batch(trace.records)
        assert system.fvc.valid_entries > 0
        system.fvc.frequent_words += 1
        with pytest.raises(SanitizeViolation, match="occupancy broken"):
            check_fvc_system(system, len(trace.records))

    def test_corrupt_installation_detected(self, store):
        system, trace = self._system(store)
        attach_fvc_system(system)
        with pytest.raises(SanitizeViolation, match="round-trip|does not decode"):
            system.fvc.install(0x40, [system.encoder.infrequent_code + 1] * 8)

    def test_wrong_width_installation_detected(self, store):
        system, trace = self._system(store)
        attach_fvc_system(system)
        with pytest.raises(SanitizeViolation, match="codes"):
            system.fvc.install(0x40, [0, 0])

    def test_sanitized_config_only_flips_verify(self):
        from repro.fvc.system import FvcSystemConfig

        base = FvcSystemConfig()
        armed = sanitized_fvc_config()
        assert armed.verify_values and not base.verify_values
        assert armed.exclusive == base.exclusive
        assert (
            armed.occupancy_sample_interval == base.occupancy_sample_interval
        )


class TestRunCellIntegration:
    def test_cells_pass_with_sanitizer_on(self, store, monkeypatch):
        from repro.engine.cells import SimCell, run_cell

        monkeypatch.setenv(sanitize.ENV_VAR, "1")
        for kind in ("baseline", "fvc", "classify"):
            run_cell(
                SimCell(workload="compress", input_name="test", kind=kind),
                store=store,
            )
        counts = sanitize.counters()
        assert counts["baseline_conservation"] == 1
        assert counts["writeback_conservation"] == 1
        assert counts["access_count"] == 1

    def test_cell_results_identical_with_and_without(self, store, monkeypatch):
        from repro.engine.cells import SimCell, run_cell

        cell = SimCell(workload="compress", input_name="test", kind="fvc")
        monkeypatch.delenv(sanitize.ENV_VAR, raising=False)
        plain = run_cell(cell, store=store)
        monkeypatch.setenv(sanitize.ENV_VAR, "1")
        checked = run_cell(cell, store=store)
        assert checked.stats == plain.stats
        assert checked.extras == plain.extras


@pytest.mark.slow
class TestBitIdentityRegression:
    def test_fig13_parallel_sanitized_equals_sequential_plain(self, store):
        """The acceptance contract: `run fig13 --jobs 2 --sanitize` is
        bit-identical to an unsanitized sequential run."""
        from repro.experiments.registry import run_experiment
        from repro.experiments.render import (
            dumps_canonical,
            experiment_payload,
        )

        plain = run_experiment("fig13", store, fast=True)
        try:
            sanitize.enable()
            checked = run_experiment("fig13", store, fast=True, jobs=2)
        finally:
            sanitize.disable()
        assert dumps_canonical(experiment_payload(checked)) == dumps_canonical(
            experiment_payload(plain)
        )
