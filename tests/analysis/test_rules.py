"""Each lint rule against fixture trees that violate it, asserting the
exact code and line of every finding plus suppression behaviour."""

from __future__ import annotations

import textwrap
from pathlib import Path

from repro.analysis.linter import Linter


def _lint(tmp_path: Path, files: dict, select=None):
    root = tmp_path / "repro"
    for relpath, source in files.items():
        path = root / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    return Linter(select=select).lint_paths([root])


def _codes_lines(report):
    return sorted((f.code, f.line) for f in report.findings)


class TestDet001Randomness:
    def test_import_and_calls(self, tmp_path):
        report = _lint(
            tmp_path,
            {
                "fvc/cache.py": """\
                import random

                def jitter():
                    return random.random()
                """
            },
            select=["DET001"],
        )
        assert _codes_lines(report) == [("DET001", 1), ("DET001", 4)]

    def test_os_urandom_and_uuid4(self, tmp_path):
        report = _lint(
            tmp_path,
            {
                "engine/ids.py": """\
                import os
                import uuid

                def fresh():
                    return os.urandom(8), uuid.uuid4()
                """
            },
            select=["DET001"],
        )
        assert _codes_lines(report) == [("DET001", 5), ("DET001", 5)]

    def test_from_import(self, tmp_path):
        report = _lint(
            tmp_path,
            {"trace/gen.py": "from random import randint\n"},
            select=["DET001"],
        )
        assert _codes_lines(report) == [("DET001", 1)]

    def test_rng_module_exempt(self, tmp_path):
        report = _lint(
            tmp_path,
            {"common/rng.py": "import random\n"},
            select=["DET001"],
        )
        assert report.findings == []

    def test_suppression(self, tmp_path):
        report = _lint(
            tmp_path,
            {
                "service/jobs.py": (
                    "import uuid\n"
                    "ID = uuid.uuid4().hex  # repro: allow[DET001] not a result\n"
                )
            },
            select=["DET001"],
        )
        # `import uuid` alone is fine (only uuid1/uuid4 calls draw
        # entropy); the call on line 2 is suppressed.
        assert report.findings == []
        assert len(report.suppressed) == 1
        assert report.suppressed[0].line == 2


class TestDet002UnorderedIteration:
    def test_for_over_set_literal(self, tmp_path):
        report = _lint(
            tmp_path,
            {
                "cache/scan.py": """\
                def scan():
                    for x in {1, 2, 3}:
                        yield x
                """
            },
            select=["DET002"],
        )
        assert _codes_lines(report) == [("DET002", 2)]

    def test_list_over_set_call(self, tmp_path):
        report = _lint(
            tmp_path,
            {"fvc/order.py": "def f(xs):\n    return list(set(xs))\n"},
            select=["DET002"],
        )
        assert _codes_lines(report) == [("DET002", 2)]

    def test_comprehension_over_set(self, tmp_path):
        report = _lint(
            tmp_path,
            {"engine/c.py": "def f(xs):\n    return [x for x in set(xs)]\n"},
            select=["DET002"],
        )
        assert _codes_lines(report) == [("DET002", 2)]

    def test_id_call(self, tmp_path):
        report = _lint(
            tmp_path,
            {"workloads/memo.py": "def key(obj):\n    return id(obj)\n"},
            select=["DET002"],
        )
        assert _codes_lines(report) == [("DET002", 2)]

    def test_sorted_set_is_fine(self, tmp_path):
        report = _lint(
            tmp_path,
            {
                "cache/ok.py": """\
                def f(xs):
                    for x in sorted(set(xs)):
                        yield x
                    return 3 in {1, 2, 3}
                """
            },
            select=["DET002"],
        )
        assert report.findings == []

    def test_out_of_scope_paths_unchecked(self, tmp_path):
        report = _lint(
            tmp_path,
            {"experiments/fig99.py": "for x in {1, 2}:\n    pass\n"},
            select=["DET002"],
        )
        assert report.findings == []


class TestDet003WallClock:
    def test_time_time_flagged(self, tmp_path):
        report = _lint(
            tmp_path,
            {"engine/runner.py": "import time\nNOW = time.time()\n"},
            select=["DET003"],
        )
        assert _codes_lines(report) == [("DET003", 2)]

    def test_datetime_now_flagged(self, tmp_path):
        report = _lint(
            tmp_path,
            {
                "experiments/stamp.py": (
                    "import datetime\nT = datetime.datetime.now()\n"
                )
            },
            select=["DET003"],
        )
        assert _codes_lines(report) == [("DET003", 2)]

    def test_perf_counter_allowed(self, tmp_path):
        report = _lint(
            tmp_path,
            {
                "cli.py": (
                    "import time\n"
                    "T0 = time.perf_counter()\n"
                    "M = time.monotonic()\n"
                )
            },
            select=["DET003"],
        )
        assert report.findings == []

    def test_service_exempt(self, tmp_path):
        report = _lint(
            tmp_path,
            {"service/jobs.py": "import time\nNOW = time.time()\n"},
            select=["DET003"],
        )
        assert report.findings == []


class TestReg001Registry:
    def test_module_never_imported(self, tmp_path):
        report = _lint(
            tmp_path,
            {
                "experiments/registry.py": "EXPERIMENTS = {}\n",
                "experiments/fig99_orphan.py": "class Fig99:\n    pass\n",
            },
            select=["REG001"],
        )
        assert _codes_lines(report) == [("REG001", 1)]
        assert "fig99_orphan" in report.findings[0].message

    def test_import_without_module_file(self, tmp_path):
        report = _lint(
            tmp_path,
            {
                "experiments/registry.py": (
                    "from repro.experiments.fig98_ghost import Fig98\n"
                    "EXPERIMENTS = {1: Fig98()}\n"
                ),
                "experiments/fig97_real.py": "class Fig97:\n    pass\n",
            },
            select=["REG001"],
        )
        codes = _codes_lines(report)
        # fig97_real never imported + fig98_ghost has no file behind it.
        assert ("REG001", 1) in codes and len(codes) == 2

    def test_imported_but_never_registered(self, tmp_path):
        report = _lint(
            tmp_path,
            {
                "experiments/registry.py": (
                    "from repro.experiments.fig96_idle import Fig96\n"
                    "EXPERIMENTS = {}\n"
                ),
                "experiments/fig96_idle.py": "class Fig96:\n    pass\n",
            },
            select=["REG001"],
        )
        assert _codes_lines(report) == [("REG001", 1)]
        assert "never registered" in report.findings[0].message

    def test_consistent_registry_is_clean(self, tmp_path):
        report = _lint(
            tmp_path,
            {
                "experiments/registry.py": (
                    "from repro.experiments.fig95_ok import Fig95\n"
                    "EXPERIMENTS = {e.experiment_id: e for e in (Fig95(),)}\n"
                ),
                "experiments/fig95_ok.py": "class Fig95:\n    pass\n",
            },
            select=["REG001"],
        )
        assert report.findings == []

    def test_no_registry_in_lint_set_is_silent(self, tmp_path):
        report = _lint(
            tmp_path,
            {"experiments/fig94_alone.py": "class Fig94:\n    pass\n"},
            select=["REG001"],
        )
        assert report.findings == []


class TestApi001CanonicalJson:
    def test_json_dumps_flagged(self, tmp_path):
        report = _lint(
            tmp_path,
            {
                "service/server.py": (
                    "import json\n"
                    "def body(payload):\n"
                    "    return json.dumps(payload).encode()\n"
                )
            },
            select=["API001"],
        )
        assert _codes_lines(report) == [("API001", 3)]

    def test_from_json_import_dumps_flagged(self, tmp_path):
        report = _lint(
            tmp_path,
            {"service/x.py": "from json import dumps\n"},
            select=["API001"],
        )
        assert _codes_lines(report) == [("API001", 1)]

    def test_json_loads_is_fine(self, tmp_path):
        report = _lint(
            tmp_path,
            {
                "service/reader.py": (
                    "import json\n"
                    "def parse(raw):\n"
                    "    return json.loads(raw)\n"
                )
            },
            select=["API001"],
        )
        assert report.findings == []

    def test_outside_service_unchecked(self, tmp_path):
        report = _lint(
            tmp_path,
            {"experiments/render.py": "import json\nX = json.dumps({})\n"},
            select=["API001"],
        )
        assert report.findings == []


class TestStat001Counters:
    def test_undeclared_self_counter(self, tmp_path):
        report = _lint(
            tmp_path,
            {
                "cache/victim.py": """\
                class VictimCache:
                    def __init__(self):
                        self.hits = 0

                    def access(self):
                        self.hits += 1
                        self.probes += 1
                """
            },
            select=["STAT001"],
        )
        assert _codes_lines(report) == [("STAT001", 7)]
        assert "self.probes" in report.findings[0].message

    def test_unknown_stats_field(self, tmp_path):
        report = _lint(
            tmp_path,
            {
                "fvc/extra.py": """\
                class Sim:
                    def __init__(self, stats):
                        self.stats = stats

                    def touch(self):
                        self.stats.read_hits += 1
                        self.stats.bogus_counter += 1
                """
            },
            select=["STAT001"],
        )
        assert _codes_lines(report) == [("STAT001", 7)]
        assert "bogus_counter" in report.findings[0].message

    def test_slots_declaration_counts(self, tmp_path):
        report = _lint(
            tmp_path,
            {
                "cache/slotted.py": """\
                class Slotted:
                    __slots__ = ("fills",)

                    def access(self):
                        self.fills += 1
                """
            },
            select=["STAT001"],
        )
        assert report.findings == []

    def test_real_cachestats_fields_pass(self, tmp_path):
        report = _lint(
            tmp_path,
            {
                "cache/ok.py": """\
                class Sim:
                    def __init__(self, stats):
                        self.stats = stats
                        self.local = 0

                    def hit(self):
                        self.stats.read_hits += 1
                        self.stats.writeback_words += 4
                        self.local += 1
                """
            },
            select=["STAT001"],
        )
        assert report.findings == []


class TestFlt001FaultCoverage:
    def test_unguarded_open_flagged(self, tmp_path):
        report = _lint(
            tmp_path,
            {
                "engine/trace_cache.py": """\
                def load(path):
                    with open(path, "rb") as handle:
                        return handle.read()
                """
            },
            select=["FLT001"],
        )
        assert _codes_lines(report) == [("FLT001", 2)]
        assert "fault" in report.findings[0].message

    def test_unguarded_write_bytes_flagged(self, tmp_path):
        report = _lint(
            tmp_path,
            {
                "engine/checkpoint.py": """\
                def save(path, payload):
                    path.write_bytes(payload)
                """
            },
            select=["FLT001"],
        )
        assert _codes_lines(report) == [("FLT001", 2)]

    def test_enveloped_helpers_count_as_guards(self, tmp_path):
        report = _lint(
            tmp_path,
            {
                "engine/trace_cache.py": """\
                from repro.common.integrity import read_enveloped

                def load(path):
                    return read_enveloped(path, site="trace_cache.read")
                """
            },
            select=["FLT001"],
        )
        assert report.findings == []

    def test_fault_point_beside_raw_io_passes(self, tmp_path):
        report = _lint(
            tmp_path,
            {
                "service/result_store.py": """\
                from repro.faults.sites import fault_point

                def read_raw(path):
                    fault_point("result_store.read")
                    with open(path, "rb") as handle:
                        return handle.read()
                """
            },
            select=["FLT001"],
        )
        assert report.findings == []

    def test_unhardened_modules_out_of_scope(self, tmp_path):
        report = _lint(
            tmp_path,
            {
                "trace/io.py": """\
                def read(path):
                    with open(path, "rb") as handle:
                        return handle.read()
                """
            },
            select=["FLT001"],
        )
        assert report.findings == []


class TestRealTreeCalibration:
    """The rules' scopes against the actual source tree (kept here so a
    scope regression fails loudly with the rule that drifted)."""

    def test_stat001_knows_every_cachestats_slot(self):
        from repro.cache.stats import CacheStats

        # The rule reads __slots__ at lint time; this pins the contract
        # that every slot is reported by as_dict() (which also adds
        # derived aggregates like accesses/miss_rate on top).
        stats = CacheStats()
        assert set(CacheStats.__slots__) <= set(stats.as_dict())

    def test_registry_helper_matches_disk(self):
        from repro.experiments.registry import registered_module_names

        src = Path(__file__).resolve().parents[2] / "src" / "repro" / "experiments"
        on_disk = {
            p.stem
            for p in src.glob("*.py")
            if p.stem.startswith(("fig", "table"))
        }
        assert on_disk <= set(registered_module_names())


class TestObs001MetricNames:
    def test_registered_literal_names_pass(self, tmp_path):
        report = _lint(
            tmp_path,
            {
                "engine/cells.py": """\
                def record(registry):
                    registry.counter("engine_cells_total").inc()
                    registry.histogram("engine_cell_seconds").observe(0.1)
                    registry.gauge("queue_depth").set(3)
                """
            },
            select=["OBS001"],
        )
        assert report.findings == []

    def test_unregistered_name_flagged(self, tmp_path):
        report = _lint(
            tmp_path,
            {
                "engine/cells.py": """\
                def record(registry):
                    registry.counter("engine_cellz_total").inc()
                """
            },
            select=["OBS001"],
        )
        assert _codes_lines(report) == [("OBS001", 2)]
        assert "METRIC_NAMES" in report.findings[0].message

    def test_non_snake_case_flagged(self, tmp_path):
        report = _lint(
            tmp_path,
            {
                "service/server.py": """\
                def record(registry):
                    registry.counter("Engine-Cells").inc()
                """
            },
            select=["OBS001"],
        )
        assert _codes_lines(report) == [("OBS001", 2)]
        assert "snake_case" in report.findings[0].message

    def test_non_literal_name_flagged(self, tmp_path):
        report = _lint(
            tmp_path,
            {
                "service/server.py": """\
                def record(registry, name):
                    registry.counter(name).inc()
                """
            },
            select=["OBS001"],
        )
        assert _codes_lines(report) == [("OBS001", 2)]
        assert "literal" in report.findings[0].message

    def test_obs_package_is_excluded(self, tmp_path):
        report = _lint(
            tmp_path,
            {
                "obs/metrics.py": """\
                def helper(registry, name):
                    return registry.counter(name)
                """
            },
            select=["OBS001"],
        )
        assert report.findings == []

    def test_catalog_names_are_well_formed(self):
        from repro.obs.names import METRIC_NAMES, is_metric_name

        assert METRIC_NAMES
        assert all(is_metric_name(name) for name in METRIC_NAMES)
