"""PROTO rules: route extraction, matching, and the skip-when-absent
contract."""

from __future__ import annotations

import ast
from pathlib import Path

from repro.analysis.linter import Linter
from repro.analysis.rules.base import SourceFile, package_relpath
from repro.analysis.rules.proto import (
    WILD,
    Route,
    _extract_client_calls,
    _extract_server_routes,
    _matches,
)

FIXTURES = Path(__file__).resolve().parent / "fixtures"


def load(name):
    path = FIXTURES / f"{name}.py"
    source = path.read_text(encoding="utf-8")
    return SourceFile(
        path=path,
        relpath=package_relpath(path),
        source=source,
        tree=ast.parse(source, filename=str(path)),
    )


class TestExtraction:
    def test_server_routes_cover_equality_and_prefix_branches(self):
        routes = {
            b.route for b in _extract_server_routes([load("proto_routes")])
        }
        assert Route("GET", ("v1", "ping")) in routes
        assert Route("GET", ("v1", "items", WILD)) in routes

    def test_client_calls_cover_literal_and_fstring_paths(self):
        calls = {
            c.route for c in _extract_client_calls([load("proto_routes")])
        }
        assert Route("GET", ("v1", "ping")) in calls
        assert Route("GET", ("v1", "items", WILD)) in calls
        assert Route("GET", ("v1", "gone")) in calls


class TestMatching:
    def test_fixed_client_segment_matches_server_wildcard(self):
        assert _matches(
            Route("GET", ("v1", "items", "abc")),
            Route("GET", ("v1", "items", WILD)),
        )

    def test_dynamic_client_segment_needs_server_wildcard(self):
        assert not _matches(
            Route("GET", ("v1", WILD)), Route("GET", ("v1", "ping"))
        )

    def test_method_and_length_must_agree(self):
        assert not _matches(
            Route("POST", ("v1", "ping")), Route("GET", ("v1", "ping"))
        )
        assert not _matches(
            Route("GET", ("v1", "ping", "x")), Route("GET", ("v1", "ping"))
        )


class TestRules:
    def test_unknown_route_is_found_dynamic_route_is_not(self):
        report = Linter(select=("PROTO001",)).lint_paths(
            [FIXTURES / "proto_routes.py"]
        )
        assert [(f.code, f.line) for f in report.findings] == [("PROTO001", 41)]
        assert "/v1/gone" in report.findings[0].message

    def test_no_handler_in_set_means_no_proto_findings(self):
        # A client-only file set has no reference half: stay silent.
        report = Linter(select=("PROTO001", "PROTO002")).lint_paths(
            [FIXTURES / "conc001_unguarded.py"]
        )
        assert report.findings == []

    def test_fixture_set_skips_documentation_check(self):
        # Fixtures live outside any src/repro tree, so the docs/API.md
        # half of PROTO002 must not fire even though the fixture's
        # routes are documented nowhere.
        report = Linter(select=("PROTO002",)).lint_paths(
            [FIXTURES / "proto_routes.py"]
        )
        assert report.findings == []
