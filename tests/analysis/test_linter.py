"""The lint framework itself: file collection, suppressions, budgets,
scoping and exit codes (rule-specific behaviour lives in
test_rules.py)."""

from __future__ import annotations

import io
import json
from pathlib import Path

from repro.analysis.linter import (
    DEFAULT_SUPPRESSION_BUDGET,
    Finding,
    Linter,
    PARSE_ERROR_CODE,
    _parse_suppressions,
    main,
    merge_selected_codes,
    run,
)
from repro.analysis.rules.base import Rule, package_relpath


def _tree(tmp_path: Path, files: dict) -> Path:
    """Materialise ``{relpath: source}`` under a ``repro/`` package."""
    root = tmp_path / "repro"
    for relpath, source in files.items():
        path = root / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source)
    return root


class TestPackageRelpath:
    def test_inside_repro(self, tmp_path):
        path = tmp_path / "src" / "repro" / "fvc" / "cache.py"
        assert package_relpath(path) == "repro/fvc/cache.py"

    def test_innermost_repro_wins(self, tmp_path):
        path = tmp_path / "repro" / "vendor" / "repro" / "x.py"
        assert package_relpath(path) == "repro/x.py"

    def test_outside_any_repro(self, tmp_path):
        assert package_relpath(tmp_path / "script.py") == "repro/script.py"


class TestSuppressionParsing:
    def test_trailing_comment_covers_own_line(self):
        allowed, comments = _parse_suppressions(
            "import random  # repro: allow[DET001] seeded elsewhere\n"
        )
        assert allowed == {1: {"DET001"}}
        assert comments[0][2] == [1]

    def test_standalone_comment_covers_next_line(self):
        allowed, _ = _parse_suppressions(
            "# repro: allow[DET001] the id is never persisted\nimport random\n"
        )
        assert allowed[1] == {"DET001"}
        assert allowed[2] == {"DET001"}

    def test_multiple_codes(self):
        allowed, _ = _parse_suppressions("x = 1  # repro: allow[DET001, API001]\n")
        assert allowed[1] == {"DET001", "API001"}

    def test_docstring_examples_do_not_count(self):
        allowed, comments = _parse_suppressions(
            '"""Example::\n\n    x  # repro: allow[DET001]\n"""\nx = 1\n'
        )
        assert allowed == {} and comments == []

    def test_unparsable_source_yields_nothing(self):
        allowed, comments = _parse_suppressions("'unterminated\n")
        assert allowed == {} and comments == []


class TestLinter:
    def test_clean_tree_exits_zero(self, tmp_path):
        root = _tree(tmp_path, {"ok.py": "VALUE = 1\n"})
        report = Linter().lint_paths([root])
        assert report.findings == []
        assert report.exit_code == 0
        assert report.files_checked == 1

    def test_finding_has_path_line_code(self, tmp_path):
        root = _tree(tmp_path, {"bad.py": "import random\n"})
        report = Linter().lint_paths([root])
        [finding] = [f for f in report.findings if f.code == "DET001"]
        assert finding.line == 1
        assert finding.path.endswith("bad.py")
        assert report.exit_code == 1

    def test_render_format(self):
        finding = Finding("src/repro/x.py", 12, "DET001", "boom")
        assert finding.render() == "src/repro/x.py:12 DET001 boom"

    def test_suppression_removes_finding(self, tmp_path):
        root = _tree(
            tmp_path, {"bad.py": "import random  # repro: allow[DET001] why\n"}
        )
        report = Linter().lint_paths([root])
        assert report.findings == []
        assert len(report.suppressed) == 1
        assert report.exit_code == 0

    def test_suppression_is_code_specific(self, tmp_path):
        root = _tree(
            tmp_path, {"bad.py": "import random  # repro: allow[API001]\n"}
        )
        report = Linter().lint_paths([root])
        assert [f.code for f in report.findings] == ["DET001"]
        # The mismatched allow-comment is reported as unused.
        assert len(report.unused_suppressions) == 1

    def test_unused_suppression_reported(self, tmp_path):
        root = _tree(
            tmp_path, {"ok.py": "X = 1  # repro: allow[DET001] stale\n"}
        )
        report = Linter().lint_paths([root])
        assert len(report.unused_suppressions) == 1
        path, line, codes = report.unused_suppressions[0]
        assert line == 1 and "DET001" in codes

    def test_budget_exceeded_fails_even_when_all_suppressed(self, tmp_path):
        source = "import random  # repro: allow[DET001] reason\n"
        root = _tree(
            tmp_path, {f"mod{i}.py": source for i in range(3)}
        )
        report = Linter(budget=2).lint_paths([root])
        assert report.findings == []
        assert len(report.suppressed) == 3
        assert report.over_budget
        assert report.exit_code == 1

    def test_default_budget(self):
        assert Linter().budget == DEFAULT_SUPPRESSION_BUDGET == 5

    def test_select_narrows_rules(self, tmp_path):
        root = _tree(
            tmp_path,
            {"cache/bad.py": "import random\nfor x in {1, 2}:\n    pass\n"},
        )
        report = Linter(select=["DET002"]).lint_paths([root])
        assert {f.code for f in report.findings} == {"DET002"}

    def test_syntax_error_reported_not_fatal(self, tmp_path):
        root = _tree(tmp_path, {"broken.py": "def f(:\n", "ok.py": "X = 1\n"})
        report = Linter().lint_paths([root])
        assert [f.code for f in report.findings] == [PARSE_ERROR_CODE]
        assert report.files_checked == 1

    def test_pycache_and_hidden_skipped(self, tmp_path):
        root = _tree(
            tmp_path,
            {
                "__pycache__/junk.py": "import random\n",
                ".hidden/x.py": "import random\n",
                "ok.py": "X = 1\n",
            },
        )
        report = Linter().lint_paths([root])
        assert report.findings == []
        assert report.files_checked == 1

    def test_scoping_uses_package_relative_paths(self, tmp_path):
        # DET002 is scoped to simulation dirs: the same source is
        # flagged under repro/cache/ but not under repro/experiments/.
        source = "for x in {1, 2}:\n    pass\n"
        root = _tree(
            tmp_path,
            {"cache/a.py": source, "experiments/a.py": source},
        )
        report = Linter(select=["DET002"]).lint_paths([root])
        assert len(report.findings) == 1
        assert "cache" in report.findings[0].path


class TestRunEntryPoint:
    def test_exit_codes_and_output(self, tmp_path):
        root = _tree(tmp_path, {"bad.py": "import random\n"})
        out = io.StringIO()
        assert run(paths=[str(root)], out=out) == 1
        text = out.getvalue()
        assert "DET001" in text
        assert "1 finding(s)" in text

    def test_clean_run(self, tmp_path):
        root = _tree(tmp_path, {"ok.py": "X = 1\n"})
        out = io.StringIO()
        assert run(paths=[str(root)], out=out) == 0
        assert "0 finding(s)" in out.getvalue()

    def test_list_rules(self):
        out = io.StringIO()
        assert run(list_rules=True, out=out) == 0
        text = out.getvalue()
        for code in (
            "DET001", "DET002", "DET003", "REG001", "API001", "STAT001",
            "FLT001",
        ):
            assert code in text

    def test_max_suppressions_flag(self, tmp_path):
        root = _tree(
            tmp_path, {"bad.py": "import random  # repro: allow[DET001] ok\n"}
        )
        out = io.StringIO()
        assert run(paths=[str(root)], max_suppressions=0, out=out) == 1
        assert "budget exceeded" in out.getvalue()


class TestRuleScoping:
    def test_include_exclude(self):
        class Scoped(Rule):
            code = "TST001"
            include = ("repro/fvc/",)
            exclude = ("repro/fvc/vendored/",)

        rule = Scoped()
        assert rule.applies_to("repro/fvc/cache.py")
        assert not rule.applies_to("repro/cache/direct.py")
        assert not rule.applies_to("repro/fvc/vendored/x.py")

    def test_every_registered_rule_has_code_and_title(self):
        from repro.analysis.rules import ALL_RULES

        codes = [rule.code for rule in ALL_RULES]
        assert len(codes) == len(set(codes)) == 17
        assert all(rule.title for rule in ALL_RULES)


class TestFormatsAndExitCodes:
    def test_json_format_emits_only_the_document(self, tmp_path):
        root = _tree(tmp_path, {"bad.py": "import random\n"})
        out = io.StringIO()
        assert run(paths=[str(root)], out=out, output_format="json") == 1
        document = json.loads(out.getvalue())
        assert document["exit_code"] == 1
        assert document["findings"][0]["code"] == "DET001"

    def test_sarif_format_emits_only_the_document(self, tmp_path):
        root = _tree(tmp_path, {"bad.py": "import random\n"})
        out = io.StringIO()
        assert run(paths=[str(root)], out=out, output_format="sarif") == 1
        document = json.loads(out.getvalue())
        assert document["version"] == "2.1.0"
        assert document["runs"][0]["results"][0]["ruleId"] == "DET001"

    def test_unknown_format_is_an_internal_error(self):
        # An unknown format reaching run() raises, which main() maps
        # to exit code 2.
        assert main_with_bad_format() == 2

    def test_rules_flag_merges_with_select(self, tmp_path):
        root = _tree(
            tmp_path,
            {"bad.py": "import random\nimport time\ntime.time()\n"},
        )
        out = io.StringIO()
        # DET001 (random import) + DET002 (wall clock) both present;
        # selecting one code at a time must partition the findings.
        assert run(paths=[str(root)], select=["DET001"], out=out) == 1
        only_det001 = out.getvalue()
        assert "DET001" in only_det001 and "DET002" not in only_det001

    def test_merge_selected_codes(self):
        assert merge_selected_codes(None, None) is None
        assert merge_selected_codes("DET001", None) == ["DET001"]
        assert merge_selected_codes(None, "CONC001, CONC002") == [
            "CONC001",
            "CONC002",
        ]
        assert merge_selected_codes("DET001", "CONC001") == [
            "DET001",
            "CONC001",
        ]

    def test_cli_exit_codes_zero_one_two(self, tmp_path):
        clean = _tree(tmp_path / "clean", {"ok.py": "X = 1\n"})
        dirty = _tree(tmp_path / "dirty", {"bad.py": "import random\n"})
        assert main([str(clean)]) == 0
        assert main([str(dirty)]) == 1

    def test_internal_error_exits_two(self, tmp_path, monkeypatch, capsys):
        import repro.analysis.linter as linter_mod

        def boom(self, paths):
            raise RuntimeError("synthetic analyzer crash")

        monkeypatch.setattr(linter_mod.Linter, "lint_paths", boom)
        assert main([str(tmp_path)]) == 2
        assert "internal error" in capsys.readouterr().err

    def test_output_flag_writes_file_and_keeps_exit_code(self, tmp_path):
        root = _tree(tmp_path, {"bad.py": "import random\n"})
        target = tmp_path / "report.json"
        out = io.StringIO()
        assert (
            run(
                paths=[str(root)],
                out=out,
                output_format="json",
                output_path=str(target),
            )
            == 1
        )
        assert out.getvalue() == ""
        assert json.loads(target.read_text())["exit_code"] == 1


def main_with_bad_format():
    try:
        run(paths=["."], output_format="yaml")
    except ValueError:
        return 2
    return 0
