"""The linter against the real source tree: the repo must lint clean
within the suppression budget, and an injected violation must be
caught.  This is the same gate CI's lint job enforces."""

from __future__ import annotations

import shutil
from pathlib import Path

from repro.analysis.linter import DEFAULT_SUPPRESSION_BUDGET, Linter

SRC = Path(__file__).resolve().parents[2] / "src"


class TestRepoLintsClean:
    def test_zero_findings(self):
        report = Linter().lint_paths([SRC])
        assert report.findings == [], "\n".join(
            f.render() for f in report.findings
        )
        assert report.exit_code == 0

    def test_suppressions_within_budget(self):
        report = Linter().lint_paths([SRC])
        assert len(report.suppressed) <= DEFAULT_SUPPRESSION_BUDGET
        assert not report.over_budget

    def test_no_stale_suppressions(self):
        report = Linter().lint_paths([SRC])
        assert report.unused_suppressions == []

    def test_whole_package_was_checked(self):
        report = Linter().lint_paths([SRC])
        actual = sum(
            1
            for p in SRC.rglob("*.py")
            if "__pycache__" not in p.parts
        )
        assert report.files_checked == actual >= 100


class TestInjectedViolationCaught:
    def test_seeded_random_in_fvc_cache_fails_lint(self, tmp_path):
        """The ISSUE's acceptance probe: copy the tree, plant a seeded
        ``random.random()`` in ``fvc/cache.py``, and the lint run must
        go non-zero with DET001 at the planted line."""
        root = tmp_path / "repro"
        shutil.copytree(
            SRC / "repro",
            root,
            ignore=shutil.ignore_patterns("__pycache__"),
        )
        target = root / "fvc" / "cache.py"
        source = target.read_text()
        lines = source.splitlines()
        planted_line = len(lines) + 2
        target.write_text(
            source
            + "\nimport random\nrandom.seed(42)\n_JITTER = random.random()\n"
        )
        report = Linter().lint_paths([root])
        det001 = [f for f in report.findings if f.code == "DET001"]
        assert report.exit_code == 1
        assert {f.line for f in det001} >= {planted_line, planted_line + 1}
        assert all(f.path.endswith("fvc/cache.py") for f in det001)

    def test_planted_unguarded_shared_write_fails_lint(self, tmp_path):
        """The CI lint gate's concurrency probe: copy the tree, strip
        the lock from a known-shared write in ``service/client.py``,
        and the lint run must go non-zero with CONC001 at that line."""
        root = tmp_path / "repro"
        shutil.copytree(
            SRC / "repro",
            root,
            ignore=shutil.ignore_patterns("__pycache__"),
        )
        target = root / "service" / "client.py"
        source = target.read_text()
        planted = source.replace(
            "                with self._stats_lock:\n"
            "                    self.retries_attempted += 1\n",
            "                self.retries_attempted += 1\n",
        )
        assert planted != source, "the guarded increment moved; update me"
        target.write_text(planted)
        report = Linter().lint_paths([root])
        conc001 = [f for f in report.findings if f.code == "CONC001"]
        assert report.exit_code == 1
        assert conc001, "stripping the lock must surface CONC001"
        assert all(
            f.path.endswith("service/client.py") for f in conc001
        )
