"""SARIF 2.1.0 output: structure, suppressions, and byte-for-byte
determinism."""

from __future__ import annotations

import io
import json
from pathlib import Path

from repro.analysis.linter import Linter, run
from repro.analysis.sarif import SARIF_VERSION, render_sarif, report_to_sarif

FIXTURES = Path(__file__).resolve().parent / "fixtures"


def lint_fixture(name, select=None):
    return Linter(select=select).lint_paths([FIXTURES / f"{name}.py"])


class TestDocument:
    def test_version_and_driver_rules(self):
        report = lint_fixture("conc001_unguarded")
        doc = report_to_sarif(report)
        assert doc["version"] == SARIF_VERSION
        driver = doc["runs"][0]["tool"]["driver"]
        codes = [rule["id"] for rule in driver["rules"]]
        assert "CONC001" in codes and "PROTO001" in codes

    def test_result_carries_physical_location(self):
        report = lint_fixture("conc001_unguarded", select=("CONC001",))
        doc = report_to_sarif(report)
        (result,) = doc["runs"][0]["results"]
        assert result["ruleId"] == "CONC001"
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"].endswith(
            "conc001_unguarded.py"
        )
        assert location["region"]["startLine"] == 17
        assert "suppressions" not in result

    def test_suppressed_findings_are_marked_in_source(self, tmp_path):
        source = (FIXTURES / "conc001_unguarded.py").read_text()
        planted = source.replace(
            "self.count += 1  # <- CONC001 fires here",
            "self.count += 1  # repro: allow[CONC001] fixture budget probe",
        )
        target = tmp_path / "allowed.py"
        target.write_text(planted)
        report = Linter(select=("CONC001",)).lint_paths([target])
        assert report.findings == [] and len(report.suppressed) == 1
        doc = report_to_sarif(report)
        (result,) = doc["runs"][0]["results"]
        assert result["suppressions"][0]["kind"] == "inSource"

    def test_rule_table_follows_selection(self):
        linter = Linter(select=("CONC001",))
        report = linter.lint_paths([FIXTURES / "conc001_unguarded.py"])
        doc = report_to_sarif(report, rules=linter.rules)
        driver = doc["runs"][0]["tool"]["driver"]
        assert [rule["id"] for rule in driver["rules"]] == ["CONC001"]


class TestDeterminism:
    def test_two_renders_are_byte_identical(self):
        first = render_sarif(lint_fixture("conc003_blocking"))
        second = render_sarif(lint_fixture("conc003_blocking"))
        assert first == second
        assert first.endswith("\n")

    def test_two_cli_runs_are_byte_identical(self):
        outputs = []
        for _ in range(2):
            out = io.StringIO()
            code = run(
                paths=[str(FIXTURES / "conc003_blocking.py")],
                out=out,
                output_format="sarif",
            )
            assert code == 1
            outputs.append(out.getvalue())
        assert outputs[0] == outputs[1]
        json.loads(outputs[0])  # and it is valid JSON

    def test_output_flag_writes_the_same_bytes(self, tmp_path):
        target = tmp_path / "report.sarif"
        out = io.StringIO()
        run(
            paths=[str(FIXTURES / "conc003_blocking.py")],
            out=out,
            output_format="sarif",
            output_path=str(target),
        )
        assert out.getvalue() == ""
        assert target.read_text() == render_sarif(
            lint_fixture("conc003_blocking")
        )
