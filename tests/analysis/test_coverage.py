"""COV rules: catalog-driven coverage checks and their
skip-when-absent contract, exercised over synthetic mini-repos."""

from __future__ import annotations

from pathlib import Path

from repro.analysis.linter import Linter


def make_repo(tmp_path, *, sites=(), tested=(), metrics=(), emitted=()):
    """A minimal ``src/repro`` tree with a fault-site catalog, a metric
    catalog, and a tests/ directory referencing ``tested`` sites."""
    src = tmp_path / "src" / "repro"
    (src / "faults").mkdir(parents=True)
    (src / "obs").mkdir(parents=True)
    site_lines = ["class Site:", "    def __init__(self, name):", "        self.name = name", ""]
    site_lines += [f'SITE_{i} = Site("{name}")' for i, name in enumerate(sites)]
    (src / "faults" / "sites.py").write_text("\n".join(site_lines) + "\n")
    names = ", ".join(f'"{name}"' for name in metrics)
    (src / "obs" / "names.py").write_text(f"METRIC_NAMES = ({names})\n")
    emits = "\n".join(f'EMIT_{i} = "{name}"' for i, name in enumerate(emitted))
    (src / "obs" / "metrics.py").write_text(emits + "\n")
    tests = tmp_path / "tests"
    tests.mkdir()
    body = "\n".join(f'PLAN_{i} = "{name}:io_error@1"' for i, name in enumerate(tested))
    (tests / "test_sites.py").write_text(body + "\n")
    return src


class TestCov001:
    def test_untested_site_is_found_tested_site_is_not(self, tmp_path):
        src = make_repo(
            tmp_path,
            sites=("alpha.write", "beta.read"),
            tested=("alpha.write",),
        )
        report = Linter(select=("COV001",)).lint_paths([src])
        assert [f.code for f in report.findings] == ["COV001"]
        assert "beta.read" in report.findings[0].message

    def test_boundary_guard_rejects_prefix_credit(self, tmp_path):
        # A test naming only 'alpha.write.publish' does NOT exercise
        # the bare 'alpha.write' site.
        src = make_repo(
            tmp_path,
            sites=("alpha.write",),
            tested=("alpha.write.publish",),
        )
        report = Linter(select=("COV001",)).lint_paths([src])
        assert [f.code for f in report.findings] == ["COV001"]

    def test_skips_without_tests_directory(self, tmp_path):
        src = make_repo(tmp_path, sites=("alpha.write",))
        (tmp_path / "tests" / "test_sites.py").unlink()
        (tmp_path / "tests").rmdir()
        report = Linter(select=("COV001",)).lint_paths([src])
        assert report.findings == []

    def test_skips_without_catalog_in_linted_set(self, tmp_path):
        src = make_repo(tmp_path, sites=("alpha.write",))
        report = Linter(select=("COV001",)).lint_paths([src / "obs"])
        assert report.findings == []


class TestCov002:
    def test_unemitted_metric_is_found_emitted_is_not(self, tmp_path):
        src = make_repo(
            tmp_path,
            metrics=("jobs_done_total", "ghost_total"),
            emitted=("jobs_done_total",),
        )
        report = Linter(select=("COV002",)).lint_paths([src])
        assert [f.code for f in report.findings] == ["COV002"]
        assert "ghost_total" in report.findings[0].message

    def test_catalog_file_itself_does_not_count_as_emission(self, tmp_path):
        src = make_repo(tmp_path, metrics=("ghost_total",))
        report = Linter(select=("COV002",)).lint_paths([src])
        assert [f.code for f in report.findings] == ["COV002"]

    def test_skips_without_catalog_in_linted_set(self, tmp_path):
        src = make_repo(tmp_path, metrics=("ghost_total",))
        report = Linter(select=("COV002",)).lint_paths([src / "faults"])
        assert report.findings == []


class TestRealCatalogs:
    SRC = Path(__file__).resolve().parents[2] / "src"

    def test_every_real_fault_site_is_exercised(self):
        report = Linter(select=("COV001",)).lint_paths([self.SRC])
        assert report.findings == [], "\n".join(
            f.render() for f in report.findings
        )

    def test_every_real_metric_is_emitted(self):
        report = Linter(select=("COV002",)).lint_paths([self.SRC])
        assert report.findings == [], "\n".join(
            f.render() for f in report.findings
        )
