"""SWEEP001 against fixture registry/catalog trees.

The rule is a static audit: every ``experiment_id = "fig*"|"table*"``
class attribute under ``repro/experiments/`` must be backed by a sweep
catalog entry (``_BUILDERS`` or ``WRAPPER_FIELDS``) that declares at
least one report field.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

from repro.analysis.linter import Linter


def _lint(tmp_path: Path, files: dict):
    root = tmp_path / "repro"
    for relpath, source in files.items():
        path = root / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    return Linter(select=["SWEEP001"]).lint_paths([root])


REGISTRY = """\
EXPERIMENTS = {}
"""

FIG1_MODULE = """\
class Fig1Study:
    experiment_id = "fig1"
"""


class TestSweep001:
    def test_unbacked_experiment_flagged_at_declaration(self, tmp_path):
        report = _lint(
            tmp_path,
            {
                "experiments/registry.py": REGISTRY,
                "experiments/fig1_study.py": FIG1_MODULE,
                "sweeps/catalog.py": """\
                _BUILDERS = {}
                WRAPPER_FIELDS = {}
                """,
            },
        )
        assert [(f.code, f.line) for f in report.findings] == [("SWEEP001", 2)]
        finding = report.findings[0]
        assert finding.path.endswith("fig1_study.py")
        assert "'fig1'" in finding.message
        assert "catalog" in finding.message

    def test_builder_with_fields_backs_the_experiment(self, tmp_path):
        report = _lint(
            tmp_path,
            {
                "experiments/registry.py": REGISTRY,
                "experiments/fig1_study.py": FIG1_MODULE,
                "sweeps/catalog.py": """\
                def _fig1(fast):
                    return {
                        "schema": "sweep/v1",
                        "report": {
                            "fields": ["miss_rate_percent"],
                            "aggregates": ["mean"],
                        },
                    }

                _BUILDERS = {"fig1": _fig1}
                WRAPPER_FIELDS = {}
                """,
            },
        )
        assert report.findings == []

    def test_builder_without_fields_flagged_on_catalog(self, tmp_path):
        report = _lint(
            tmp_path,
            {
                "experiments/registry.py": REGISTRY,
                "experiments/fig1_study.py": FIG1_MODULE,
                "sweeps/catalog.py": """\
                def _fig1(fast):
                    return {"schema": "sweep/v1", "report": {"fields": []}}

                _BUILDERS = {"fig1": _fig1}
                WRAPPER_FIELDS = {}
                """,
            },
        )
        assert [(f.code, f.line) for f in report.findings] == [("SWEEP001", 1)]
        finding = report.findings[0]
        assert finding.path.endswith("catalog.py")
        assert "no" in finding.message and "fields" in finding.message

    def test_wrapper_fields_entry_backs_the_experiment(self, tmp_path):
        report = _lint(
            tmp_path,
            {
                "experiments/registry.py": REGISTRY,
                "experiments/table2_study.py": """\
                class Table2Study:
                    experiment_id = "table2"
                """,
                "sweeps/catalog.py": """\
                _BUILDERS = {}
                WRAPPER_FIELDS = {"table2": ["value", "share_percent"]}
                """,
            },
        )
        assert report.findings == []

    def test_empty_wrapper_fields_flagged_on_catalog(self, tmp_path):
        report = _lint(
            tmp_path,
            {
                "experiments/registry.py": REGISTRY,
                "experiments/table2_study.py": """\
                class Table2Study:
                    experiment_id = "table2"
                """,
                "sweeps/catalog.py": """\
                _BUILDERS = {}
                WRAPPER_FIELDS = {"table2": []}
                """,
            },
        )
        assert [(f.code, f.line) for f in report.findings] == [("SWEEP001", 1)]

    def test_non_gated_ids_ignored(self, tmp_path):
        report = _lint(
            tmp_path,
            {
                "experiments/registry.py": REGISTRY,
                "experiments/smoke.py": """\
                class SmokeStudy:
                    experiment_id = "smoke"
                """,
                "sweeps/catalog.py": """\
                _BUILDERS = {}
                WRAPPER_FIELDS = {}
                """,
            },
        )
        assert report.findings == []

    def test_skips_when_catalog_absent(self, tmp_path):
        report = _lint(
            tmp_path,
            {
                "experiments/registry.py": REGISTRY,
                "experiments/fig1_study.py": FIG1_MODULE,
            },
        )
        assert report.findings == []

    def test_skips_when_registry_absent(self, tmp_path):
        report = _lint(
            tmp_path,
            {
                "experiments/fig1_study.py": FIG1_MODULE,
                "sweeps/catalog.py": """\
                _BUILDERS = {}
                WRAPPER_FIELDS = {}
                """,
            },
        )
        assert report.findings == []

    def test_suppression_comment_is_honoured(self, tmp_path):
        report = _lint(
            tmp_path,
            {
                "experiments/registry.py": REGISTRY,
                "experiments/fig1_study.py": """\
                class Fig1Study:
                    experiment_id = "fig1"  # repro: allow[SWEEP001] staged
                """,
                "sweeps/catalog.py": """\
                _BUILDERS = {}
                WRAPPER_FIELDS = {}
                """,
            },
        )
        assert report.findings == []
