"""The whole-program semantic model: indexing, thread roots, lock
tracking, entry-lock and blocking fixpoints."""

from __future__ import annotations

import ast
from pathlib import Path

from repro.analysis.model import get_model, iter_shared_writes
from repro.analysis.rules.base import SourceFile, package_relpath

FIXTURES = Path(__file__).resolve().parent / "fixtures"


def load(*names):
    files = []
    for name in names:
        path = FIXTURES / f"{name}.py"
        source = path.read_text(encoding="utf-8")
        files.append(
            SourceFile(
                path=path,
                relpath=package_relpath(path),
                source=source,
                tree=ast.parse(source, filename=str(path)),
            )
        )
    return files


def synthetic(source, name="synthetic"):
    tree = ast.parse(source)
    return SourceFile(
        path=Path(f"{name}.py"),
        relpath=f"repro/{name}.py",
        source=source,
        tree=tree,
    )


class TestIndexing:
    def test_functions_and_methods_are_indexed_by_qualname(self):
        model = get_model(load("conc001_unguarded"))
        names = set(model.functions)
        assert "repro.conc001_unguarded.Counter.bump" in names
        assert "repro.conc001_unguarded.Counter.__init__" in names
        assert "repro.conc001_unguarded.spawn" in names

    def test_init_writes_are_not_shared_writes(self):
        model = get_model(load("conc001_unguarded"))
        shared = {attr for (_owner, attr), _writes in iter_shared_writes(model)}
        # __init__ assigns count and _lock; only the bump() write to
        # count survives as a shared write.
        assert "_lock" not in shared
        assert "count" in shared


class TestThreadRoots:
    def test_thread_targets_become_roots(self):
        model = get_model(load("conc001_unguarded"))
        roots = {root.qualname for root in model.roots}
        assert "repro.conc001_unguarded.Counter.bump" in roots
        # The spawning function keeps running concurrently.
        assert "repro.conc001_unguarded.spawn" in roots

    def test_lambda_and_partial_targets_resolve(self):
        model = get_model(load("conc_lambda_decorated"))
        roots = {root.qualname for root in model.roots}
        assert any("<lambda@" in root for root in roots)
        assert "repro.conc_lambda_decorated.decorated_worker" in roots

    def test_http_do_methods_are_multi_roots(self):
        model = get_model(load("proto_routes"))
        multi = {
            root.qualname for root in model.roots if root.multi
        }
        assert "repro.proto_routes.Handler.do_GET" in multi

    def test_loop_created_threads_are_multi(self):
        source = (
            "import threading\n"
            "def worker():\n"
            "    pass\n"
            "def pool():\n"
            "    for _ in range(4):\n"
            "        threading.Thread(target=worker).start()\n"
        )
        model = get_model([synthetic(source)])
        multi = {root.qualname for root in model.roots if root.multi}
        assert "repro.synthetic.worker" in multi


class TestLockTracking:
    def test_with_lock_guard_is_recorded(self):
        model = get_model(load("conc001_guarded"))
        info = model.functions["repro.conc001_guarded.Counter.bump"]
        (write,) = [w for w in info.writes if w.attr == "count"]
        assert write.locks, "the with-guarded write must carry its lock"

    def test_dict_locks_collapse_to_one_identity(self):
        model = get_model(load("conc_dict_locks"))
        bump = model.functions["repro.conc_dict_locks.Sharded.bump"]
        drop = model.functions["repro.conc_dict_locks.Sharded.drop"]
        bump_locks = {w.locks for w in bump.writes if w.attr == "slots"}
        drop_locks = {w.locks for w in drop.writes if w.attr == "slots"}
        assert bump_locks == drop_locks
        (locks,) = bump_locks
        assert any(attr.endswith("[*]") for _owner, attr in locks)

    def test_acquire_release_window_tracked(self):
        model = get_model(load("conc003_blocking"))
        linear = model.functions["repro.conc003_blocking.Poller.slow_linear"]
        assert any(b.locks for b in linear.blocking)
        clean = model.functions[
            "repro.conc003_blocking.Poller.clean_release_first"
        ]
        assert all(not b.locks for b in clean.blocking)


class TestFixpoints:
    def test_blocking_bit_propagates_through_helpers(self):
        source = (
            "import time\n"
            "def leaf():\n"
            "    time.sleep(1)\n"
            "def middle():\n"
            "    leaf()\n"
            "def top():\n"
            "    middle()\n"
        )
        model = get_model([synthetic(source)])
        assert model.functions["repro.synthetic.leaf"].blocks
        assert model.functions["repro.synthetic.middle"].blocks
        assert model.functions["repro.synthetic.top"].blocks

    def test_entry_locks_cover_caller_held_helpers(self):
        source = (
            "import threading\n"
            "class Box:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self.value = 0\n"
            "    def _store(self, value):\n"
            "        self.value = value\n"
            "    def put(self, value):\n"
            "        with self._lock:\n"
            "            self._store(value)\n"
        )
        model = get_model([synthetic(source)])
        store = model.functions["repro.synthetic.Box._store"]
        assert store.entry_locks, (
            "every caller holds the lock, so _store inherits it"
        )

    def test_model_cache_hits_for_identical_input(self):
        files = load("conc001_unguarded")
        assert get_model(files) is get_model(files)
