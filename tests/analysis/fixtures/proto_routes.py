"""PROTO fixture: a handler class and its client in one file.

The handler serves ``GET /v1/ping`` and ``GET /v1/items/<id>``; the
client makes three requests:

* ``GET /v1/ping`` — served exactly: no finding;
* ``GET /v1/items/{item_id}`` — the dynamic segment matches the
  server wildcard: no finding;
* ``GET /v1/gone`` — no branch serves it: **PROTO001** fires at the
  call line.
"""


from http.server import BaseHTTPRequestHandler


class Handler(BaseHTTPRequestHandler):
    def _split(self, path):
        return tuple(part for part in path.split("/") if part)

    def do_GET(self):  # noqa: N802 - http.server naming contract
        route = self._split("/v1/ping")
        if route == ("v1", "ping"):
            return "pong"
        if len(route) == 3 and route[:2] == ("v1", "items"):
            return route[2]
        return None


class Client:
    def _json(self, method, path):
        return (method, path)

    def ping(self):
        return self._json("GET", "/v1/ping")

    def item(self, item_id):
        return self._json("GET", f"/v1/items/{item_id}")

    def gone(self):
        return self._json("GET", "/v1/gone")  # <- PROTO001 fires here
