"""CONC003 detection fixture: locks held across blocking calls, in
both ``with`` and linear ``acquire()``/``release()`` form — plus one
clean method that releases before blocking (no finding).

Expected findings: CONC003 at the ``time.sleep`` inside ``slow_with``
and at the ``time.sleep`` between ``acquire``/``release`` in
``slow_linear``; nothing for ``clean_release_first``.
"""

import threading
import time


class Poller:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.polls = 0

    def slow_with(self) -> None:
        with self._lock:
            self.polls += 1
            time.sleep(0.1)  # <- CONC003: sleep under the lock

    def slow_linear(self) -> None:
        self._lock.acquire()
        time.sleep(0.1)  # <- CONC003: sleep between acquire/release
        self._lock.release()

    def clean_release_first(self) -> None:
        self._lock.acquire()
        self.polls += 1
        self._lock.release()
        time.sleep(0.1)  # lock already released: no finding
