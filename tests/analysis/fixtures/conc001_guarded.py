"""CONC001 non-detection fixture: the same shared counter, every
write under one lock.

Expected: zero findings — both thread contexts write ``count`` while
holding ``self._lock``.
"""

import threading


class Counter:
    def __init__(self) -> None:
        self.count = 0
        self._lock = threading.Lock()

    def bump(self) -> None:
        with self._lock:
            self.count += 1  # guarded: no finding


def spawn(counter: Counter) -> None:
    first = threading.Thread(target=counter.bump)
    second = threading.Thread(target=counter.bump)
    first.start()
    second.start()
    first.join()
    second.join()
