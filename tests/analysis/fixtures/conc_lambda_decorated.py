"""Edge-case fixture: thread targets that are a lambda and a
decorated function.

Expected finding: CONC001 at the unguarded ``state.hits += 1`` write
inside ``worker`` — the lambda target and the decorated-function
target are two concurrent contexts reaching the same write.
"""

import functools
import threading


def logged(func):
    @functools.wraps(func)
    def wrapper(*args, **kwargs):
        return func(*args, **kwargs)

    return wrapper


class State:
    def __init__(self) -> None:
        self.hits = 0


def worker(state: State) -> None:
    state.hits += 1  # <- CONC001 fires here


@logged
def decorated_worker(state: State) -> None:
    worker(state)


def spawn(state: State) -> None:
    first = threading.Thread(target=lambda: worker(state))
    second = threading.Thread(target=functools.partial(decorated_worker, state))
    first.start()
    second.start()
