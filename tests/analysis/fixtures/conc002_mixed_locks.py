"""CONC002 detection fixture: one attribute, two write paths, two
different locks — the guard is an illusion.

Expected finding: one CONC002 anchored at the ``self.total`` write in
``Ledger.debit``, naming the disagreeing lock in ``Ledger.credit``.
"""

import threading


class Ledger:
    def __init__(self) -> None:
        self.total = 0
        self._debit_lock = threading.Lock()
        self._credit_lock = threading.Lock()

    def debit(self, amount: int) -> None:
        with self._debit_lock:
            self.total -= amount  # <- CONC002 fires here

    def credit(self, amount: int) -> None:
        with self._credit_lock:
            self.total += amount


def spawn(ledger: Ledger) -> None:
    first = threading.Thread(target=ledger.debit)
    second = threading.Thread(target=ledger.credit)
    first.start()
    second.start()
