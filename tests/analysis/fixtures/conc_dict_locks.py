"""Non-detection fixture: a dict-of-locks container used
consistently.

Every write to ``self.slots`` happens under ``self._locks[key]`` —
the analyzer models the whole container as one lock identity, so the
guard is consistent and nothing fires.
"""

import threading


class Sharded:
    def __init__(self) -> None:
        self.slots = 0
        self._locks = {
            "a": threading.Lock(),
            "b": threading.Lock(),
        }

    def bump(self, key: str) -> None:
        with self._locks[key]:
            self.slots += 1  # dict lock held consistently: no finding

    def drop(self, key: str) -> None:
        with self._locks[key]:
            self.slots -= 1


def spawn(shard: Sharded) -> None:
    first = threading.Thread(target=shard.bump)
    second = threading.Thread(target=shard.drop)
    first.start()
    second.start()
