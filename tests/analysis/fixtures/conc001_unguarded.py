"""CONC001 detection fixture: a shared counter written from two
thread contexts with no lock held.

Expected finding: CONC001 at the ``self.count += 1`` line inside
``Counter.bump`` (two Thread targets reach it; no lock is held).
"""

import threading


class Counter:
    def __init__(self) -> None:
        self.count = 0
        self._lock = threading.Lock()

    def bump(self) -> None:
        self.count += 1  # <- CONC001 fires here


def spawn(counter: Counter) -> None:
    first = threading.Thread(target=counter.bump)
    second = threading.Thread(target=counter.bump)
    first.start()
    second.start()
    first.join()
    second.join()
