"""Byte-identity regression gate for every fig*/table* payload.

The golden files were captured from the experiment implementations
before they were re-expressed over the declarative sweep layer
(``repro.sweeps``); this test pins that the sweep-spec-backed path
still produces the exact same canonical ``repro.experiment/1`` bytes.
Any intentional payload change must re-capture the goldens and say
why.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments.registry import EXPERIMENTS, run_experiment
from repro.experiments.render import dumps_canonical, experiment_payload

GOLDEN_DIR = Path(__file__).parent / "golden"
GATED = sorted(
    experiment_id
    for experiment_id in EXPERIMENTS
    if experiment_id.startswith(("fig", "table"))
)


def test_every_gated_experiment_has_a_golden():
    assert len(GATED) == 16
    missing = [
        experiment_id
        for experiment_id in GATED
        if not (GOLDEN_DIR / f"{experiment_id}.json").is_file()
    ]
    assert missing == []


@pytest.mark.slow
@pytest.mark.parametrize("experiment_id", GATED)
def test_payload_byte_identical_to_golden(experiment_id):
    golden = (GOLDEN_DIR / f"{experiment_id}.json").read_text(encoding="utf-8")
    result = run_experiment(experiment_id, fast=True)
    assert dumps_canonical(experiment_payload(result)) == golden
