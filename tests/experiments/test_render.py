"""Tests for CSV export and ASCII chart rendering."""

import csv
import io

from repro.experiments.base import ExperimentResult
from repro.experiments.render import bar_chart, multi_bar_chart, to_csv


def _result():
    return ExperimentResult(
        experiment_id="figX",
        title="demo",
        headers=["benchmark", "red_%", "note"],
        rows=[
            {"benchmark": "go", "red_%": 50.0, "note": "a"},
            {"benchmark": "li", "red_%": 12.5, "note": "b"},
        ],
    )


class TestCsv:
    def test_roundtrips_through_csv_reader(self):
        text = to_csv(_result())
        rows = list(csv.DictReader(io.StringIO(text)))
        assert rows[0]["benchmark"] == "go"
        assert float(rows[0]["red_%"]) == 50.0
        assert rows[1]["note"] == "b"

    def test_missing_cells_render_empty(self):
        result = _result()
        del result.rows[1]["note"]
        text = to_csv(result)
        assert text.splitlines()[2].endswith(",")


class TestBarChart:
    def test_scales_to_peak(self):
        chart = bar_chart(_result(), width=40)
        lines = chart.splitlines()
        assert lines[1].count("#") == 40  # go = peak
        assert lines[2].count("#") == 10  # 12.5/50 * 40

    def test_picks_first_numeric_column(self):
        assert "red_%" in bar_chart(_result()).splitlines()[0]

    def test_empty_result(self):
        empty = ExperimentResult("x", "t", ["a"], [])
        assert "no rows" in bar_chart(empty)

    def test_non_numeric_only(self):
        result = ExperimentResult(
            "x", "t", ["a"], [{"a": "text"}]
        )
        assert "no numeric" in bar_chart(result)


class TestMultiBarChart:
    def test_groups_per_row(self):
        result = ExperimentResult(
            experiment_id="fig10",
            title="demo",
            headers=["benchmark", "red_64e_%", "red_512e_%"],
            rows=[{"benchmark": "go", "red_64e_%": 10, "red_512e_%": 40}],
        )
        chart = multi_bar_chart(result, width=40)
        assert "go:" in chart
        assert chart.count("|") == 2
        lines = chart.splitlines()
        assert lines[-1].count("#") == 40
        assert lines[-2].count("#") == 10
