"""Unit tests of individual experiment computations on controlled traces.

A fake trace store injects synthetic traces whose cache behaviour is
known exactly, so each experiment's arithmetic (reductions, shares,
pairings) can be asserted precisely rather than statistically.
"""

from __future__ import annotations

import pytest

from repro.experiments.fig04_miss_attribution import Fig04MissAttribution
from repro.experiments.fig10_fvc_size import Fig10FvcSize
from repro.experiments.fig13_dmc_vs_fvc import _fvc_data_kb
from repro.experiments.fig12_value_count import admissible_configs
from repro.trace.synth import ping_pong_trace, zipf_value_trace
from repro.trace.trace import Trace


class FakeStore:
    """Trace store double returning pre-registered traces."""

    def __init__(self, traces):
        self._traces = traces

    def get(self, workload_name: str, input_name: str = "ref") -> Trace:
        return self._traces[workload_name]


def _fvl_traces(make):
    names = ("go", "m88ksim", "gcc", "li", "perl", "vortex")
    return FakeStore({name: make(seed) for seed, name in enumerate(names)})


class TestFig10Math:
    def test_ping_pong_conflicts_fully_removed(self):
        # All-zero ping-pong at 16KB: every FVC size should remove
        # nearly all non-compulsory misses.
        store = _fvl_traces(
            lambda seed: ping_pong_trace(400, geometry_size_bytes=16 * 1024)
        )
        result = Fig10FvcSize().run(store, fast=True)
        for row in result.rows:
            assert row["base_miss_%"] > 40  # the pair thrashes
            for key, value in row.items():
                if key.startswith("red_"):
                    assert value > 90

    def test_no_locality_no_reduction(self):
        store = _fvl_traces(
            lambda seed: zipf_value_trace(
                3000,
                footprint_words=16384,
                frequent_fraction=0.0,
                seed=seed,
            )
        )
        result = Fig10FvcSize().run(store, fast=True)
        for row in result.rows:
            for key, value in row.items():
                if key.startswith("red_"):
                    assert value < 20


class TestFig04Math:
    def test_all_zero_trace_fully_attributed(self):
        store = _fvl_traces(
            lambda seed: ping_pong_trace(200, geometry_size_bytes=16 * 1024)
        )
        result = Fig04MissAttribution().run(store, fast=True)
        for row in result.rows:
            assert row["miss_top10_accessed_%"] == 100.0


class TestFig13Plumbing:
    def test_fvc_data_kb_matches_paper_figures(self):
        # The paper's table captions: .375KB for 8B lines top-7, 1.5KB
        # for 32B lines top-7, 3KB for 64B lines top-7.
        assert _fvc_data_kb(8, 3) == pytest.approx(0.375)
        assert _fvc_data_kb(32, 3) == pytest.approx(1.5)
        assert _fvc_data_kb(64, 3) == pytest.approx(3.0)
        assert _fvc_data_kb(8, 1) == pytest.approx(0.125)

    def test_pairings_cover_paper_line_sizes(self):
        # The catalogued pairing table drives the experiment.
        from repro.sweeps.catalog import FIG13_PAIRS

        lines = {line for line, _, _ in FIG13_PAIRS}
        assert lines == {8, 16, 32, 64}
        for line, small, big in FIG13_PAIRS:
            assert big == 2 * small


class TestFig12Admissibility:
    def test_twelve_admissible_configs(self):
        configs = admissible_configs()
        assert len(configs) == 12
        described = {geometry.describe() for geometry in configs}
        assert "4KB/32B/direct" not in described
        assert "64KB/16B/direct" in described
