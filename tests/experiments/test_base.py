"""Tests for the experiment base classes and table rendering."""

from repro.experiments.base import ExperimentResult, render_table


class TestRenderTable:
    def test_alignment_and_separator(self):
        text = render_table(["name", "value"], [["a", 1.5], ["bb", 20]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "name" in lines[0]
        assert set(lines[1]) <= {"-", " "}
        assert "1.500" in lines[2]

    def test_empty_rows(self):
        text = render_table(["x"], [])
        assert "x" in text


class TestExperimentResult:
    def _result(self):
        return ExperimentResult(
            experiment_id="figX",
            title="demo",
            headers=["benchmark", "value"],
            rows=[{"benchmark": "go", "value": 1},
                  {"benchmark": "li", "value": 2}],
            notes=["methodology"],
        )

    def test_format_table(self):
        text = self._result().format_table()
        assert "figX" in text
        assert "note: methodology" in text
        assert "go" in text

    def test_column(self):
        assert self._result().column("value") == [1, 2]

    def test_row_for(self):
        assert self._result().row_for("benchmark", "li") == {
            "benchmark": "li",
            "value": 2,
        }
        assert self._result().row_for("benchmark", "zz") is None
