"""Tests for the shared experiment plumbing."""

import pytest

from repro.cache.geometry import CacheGeometry
from repro.cache.stats import CacheStats
from repro.experiments.common import (
    CODE_BITS_BY_COUNT,
    FVL_NAMES,
    INT_NAMES,
    access_profile,
    baseline_stats,
    encoder_for,
    fvc_stats,
    input_for,
    reduction_percent,
)
from repro.trace.synth import zipf_value_trace


class TestConstants:
    def test_name_groups(self):
        assert len(FVL_NAMES) == 6
        assert set(INT_NAMES) - set(FVL_NAMES) == {"compress", "ijpeg"}

    def test_code_bits_match_paper(self):
        assert CODE_BITS_BY_COUNT == {1: 1, 3: 2, 7: 3}

    def test_input_for(self):
        assert input_for(True) == "test"
        assert input_for(False) == "ref"


class TestProfiles:
    def test_access_profile_memoised(self):
        trace = zipf_value_trace(2000, seed=5)
        first = access_profile(trace)
        assert access_profile(trace) is first

    def test_encoder_for_uses_top_values(self):
        trace = zipf_value_trace(
            4000, values=(7, 8, 9), frequent_fraction=0.95, seed=1
        )
        encoder = encoder_for(trace, 3)
        assert encoder.code_bits == 2
        assert {7, 8, 9} & set(encoder.values)

    def test_encoder_width_by_count(self):
        trace = zipf_value_trace(1000, seed=2)
        assert encoder_for(trace, 1).code_bits == 1
        assert encoder_for(trace, 7).code_bits == 3


class TestSimulationHelpers:
    def test_baseline_dispatches_on_ways(self):
        trace = zipf_value_trace(2000, seed=3)
        direct = baseline_stats(trace, CacheGeometry(4096, 32))
        assoc = baseline_stats(trace, CacheGeometry(4096, 32, ways=2))
        assert direct.accesses == assoc.accesses == len(trace)

    def test_fvc_stats_returns_system(self):
        trace = zipf_value_trace(2000, seed=4)
        stats, system = fvc_stats(trace, CacheGeometry(4096, 32), 64, 7)
        assert stats is system.stats
        assert system.check_exclusive()

    def test_reduction_percent(self):
        base = CacheStats()
        base.read_misses = 10
        base.read_hits = 90
        improved = CacheStats()
        improved.read_misses = 5
        improved.read_hits = 95
        assert reduction_percent(base, improved) == pytest.approx(50.0)
        assert reduction_percent(CacheStats(), CacheStats()) == 0.0
