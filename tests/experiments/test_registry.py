"""Tests for the experiment registry."""

import pytest

from repro.common.errors import ConfigurationError
from repro.experiments.base import Experiment
from repro.experiments.registry import EXPERIMENTS, experiment_ids, get_experiment

_PAPER_IDS = [
    "fig1", "fig2", "fig3", "fig4", "fig5",
    "table1", "table2", "table3", "table4",
    "fig9", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15",
]
_ABLATION_IDS = [
    "ablation-waf", "ablation-exclusive", "ablation-insert-empty",
    "ablation-dynamic",
]


class TestRegistry:
    def test_every_paper_artifact_registered(self):
        for experiment_id in _PAPER_IDS + _ABLATION_IDS:
            assert experiment_id in EXPERIMENTS

    def test_ids_match_instances(self):
        for experiment_id, experiment in EXPERIMENTS.items():
            assert isinstance(experiment, Experiment)
            assert experiment.experiment_id == experiment_id
            assert experiment.title
            assert experiment.paper_reference

    def test_lookup(self):
        assert get_experiment("fig10").experiment_id == "fig10"
        with pytest.raises(ConfigurationError):
            get_experiment("fig99")

    def test_experiment_ids_order(self):
        ids = experiment_ids()
        assert ids[: len(_PAPER_IDS)] == _PAPER_IDS
