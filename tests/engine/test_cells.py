"""Tests for the simulation-cell work units."""

import pickle

import pytest

from repro.cache.direct import DirectMappedCache
from repro.cache.setassoc import SetAssociativeCache
from repro.common.errors import ConfigurationError
from repro.engine.cells import CellResult, SimCell, run_cell


class TestSimCell:
    def test_is_picklable(self):
        cell = SimCell(workload="gcc", input_name="test", kind="fvc")
        assert pickle.loads(pickle.dumps(cell)) == cell

    def test_geometry(self):
        cell = SimCell(
            workload="gcc", size_bytes=8 * 1024, line_bytes=16, ways=2
        )
        geometry = cell.geometry()
        assert geometry.size_bytes == 8 * 1024
        assert geometry.line_bytes == 16
        assert geometry.ways == 2


class TestRunCell:
    def test_baseline_matches_direct_simulation(self, store, gcc_trace):
        cell = SimCell(workload="gcc", input_name="test", kind="baseline")
        result = run_cell(cell, store)
        expected = DirectMappedCache(cell.geometry()).simulate(
            gcc_trace.records
        )
        assert result.stats == expected.as_dict()
        assert result.cache_stats().as_dict() == expected.as_dict()

    def test_baseline_two_way_matches_setassoc(self, store, gcc_trace):
        cell = SimCell(
            workload="gcc", input_name="test", kind="baseline", ways=2
        )
        result = run_cell(cell, store)
        expected = SetAssociativeCache(cell.geometry()).simulate(
            gcc_trace.records
        )
        assert result.stats == expected.as_dict()

    def test_fvc_cell_reports_hit_breakdown(self, store, gcc_trace):
        cell = SimCell(
            workload="gcc", input_name="test", kind="fvc", fvc_entries=256
        )
        result = run_cell(cell, store)
        assert result.stats["accesses"] == len(gcc_trace)
        assert (
            result.extras["fvc_hits"]
            == result.extras["fvc_read_hits"] + result.extras["fvc_write_hits"]
        )
        hits = result.stats["read_hits"] + result.stats["write_hits"]
        assert result.extras["main_hits"] + result.extras["fvc_hits"] == hits

    def test_classify_cell_partitions_misses(self, store, gcc_trace):
        cell = SimCell(workload="gcc", input_name="test", kind="classify")
        result = run_cell(cell, store)
        assert result.extras["accesses"] == len(gcc_trace)
        baseline = run_cell(
            SimCell(workload="gcc", input_name="test", kind="baseline"), store
        )
        classified = (
            result.extras["compulsory"]
            + result.extras["capacity"]
            + result.extras["conflict"]
        )
        assert classified == baseline.stats["misses"]

    def test_unknown_kind_rejected(self, store):
        with pytest.raises(ConfigurationError):
            run_cell(
                SimCell(workload="gcc", input_name="test", kind="bogus"),
                store,
            )

    def test_result_is_picklable(self, store):
        cell = SimCell(workload="gcc", input_name="test", kind="baseline")
        result = run_cell(cell, store)
        clone = pickle.loads(pickle.dumps(result))
        assert isinstance(clone, CellResult)
        assert clone == result
