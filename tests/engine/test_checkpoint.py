"""Checkpoint/resume: record addressing, durability, and bit-identical
resumed runs across jobs counts."""

import pytest

from repro.common.integrity import write_enveloped
from repro.engine.cells import SimCell, run_cell
from repro.engine.checkpoint import RunCheckpoint, cell_key
from repro.engine.runner import run_cells
from repro.faults import reset

_CELLS = [
    SimCell(workload="go", input_name="test", size_bytes=4096),
    SimCell(
        workload="go",
        input_name="test",
        kind="fvc",
        size_bytes=4096,
        fvc_entries=128,
        top_values=3,
    ),
    SimCell(workload="compress", input_name="test", size_bytes=4096),
]


@pytest.fixture(autouse=True)
def _clean_plan():
    reset()
    yield
    reset()


class TestAddressing:
    def test_key_is_stable(self):
        again = SimCell(workload="go", input_name="test", size_bytes=4096)
        assert cell_key(_CELLS[0]) == cell_key(again)

    def test_key_separates_cells(self):
        assert len({cell_key(cell) for cell in _CELLS}) == len(_CELLS)

    def test_version_is_part_of_the_address(self, monkeypatch):
        before = cell_key(_CELLS[0])
        monkeypatch.setattr(
            "repro.engine.checkpoint.CHECKPOINT_VERSION", 999
        )
        assert cell_key(_CELLS[0]) != before


class TestRecords:
    def test_save_load_round_trip(self, tmp_path, store):
        checkpoint = RunCheckpoint(tmp_path / "ckpt")
        result = run_cell(_CELLS[1], store)
        checkpoint.save(result)
        assert checkpoint.stats()["saved"] == 1

        fresh = RunCheckpoint(tmp_path / "ckpt")
        loaded = fresh.load(_CELLS[1])
        assert loaded is not None
        assert loaded.cell == result.cell
        assert loaded.stats == result.stats
        assert loaded.extras == result.extras
        assert fresh.stats() == {
            "restored": 1, "saved": 0, "corrupt_quarantined": 0,
        }

    def test_load_missing_record(self, tmp_path):
        assert RunCheckpoint(tmp_path).load(_CELLS[0]) is None

    def test_corrupt_record_is_quarantined(self, tmp_path, store):
        checkpoint = RunCheckpoint(tmp_path)
        path = checkpoint.save(run_cell(_CELLS[0], store))
        path.write_bytes(b"garbage, not an envelope")
        fresh = RunCheckpoint(tmp_path)
        assert fresh.load(_CELLS[0]) is None
        assert fresh.corrupt_quarantined == 1
        assert not path.exists()
        assert path.with_name(path.name + ".corrupt").exists()

    def test_foreign_schema_is_quarantined(self, tmp_path):
        checkpoint = RunCheckpoint(tmp_path)
        path = checkpoint.path_for(_CELLS[0])
        path.parent.mkdir(parents=True, exist_ok=True)
        write_enveloped(path, b'{"schema": "something/else"}')
        assert checkpoint.load(_CELLS[0]) is None
        assert checkpoint.corrupt_quarantined == 1


class TestResume:
    def test_checkpointed_run_matches_plain_run(self, tmp_path, store):
        baseline = run_cells(_CELLS, store=store)
        first = RunCheckpoint(tmp_path / "ckpt")
        assert run_cells(_CELLS, store=store, checkpoint=first) == baseline
        assert first.stats()["saved"] == len(_CELLS)

        resumed = RunCheckpoint(tmp_path / "ckpt")
        assert run_cells(_CELLS, store=store, checkpoint=resumed) == baseline
        assert resumed.stats() == {
            "restored": len(_CELLS), "saved": 0, "corrupt_quarantined": 0,
        }

    def test_partial_checkpoint_reruns_only_missing_cells(
        self, tmp_path, store
    ):
        first = RunCheckpoint(tmp_path / "ckpt")
        baseline = run_cells(_CELLS, store=store, checkpoint=first)
        first.path_for(_CELLS[1]).unlink()

        resumed = RunCheckpoint(tmp_path / "ckpt")
        assert run_cells(_CELLS, store=store, checkpoint=resumed) == baseline
        assert resumed.stats()["restored"] == len(_CELLS) - 1
        assert resumed.stats()["saved"] == 1

    def test_resume_works_across_jobs_counts(self, tmp_path, store):
        first = RunCheckpoint(tmp_path / "ckpt")
        baseline = run_cells(_CELLS, store=store, checkpoint=first)
        first.path_for(_CELLS[0]).unlink()
        first.path_for(_CELLS[2]).unlink()

        resumed = RunCheckpoint(tmp_path / "ckpt")
        parallel = run_cells(
            _CELLS, jobs=2, store=store, checkpoint=resumed
        )
        assert parallel == baseline
        assert resumed.stats()["restored"] == 1
        assert resumed.stats()["saved"] == 2

    def test_progress_counts_restored_cells(self, tmp_path, store):
        run_cells(
            _CELLS, store=store, checkpoint=RunCheckpoint(tmp_path / "c")
        )
        seen = []
        run_cells(
            _CELLS,
            store=store,
            checkpoint=RunCheckpoint(tmp_path / "c"),
            progress=lambda done, total: seen.append((done, total)),
        )
        assert seen == [(len(_CELLS), len(_CELLS))]
