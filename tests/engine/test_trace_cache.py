"""Tests for the content-addressed on-disk trace cache."""

import pytest

from repro.common.integrity import read_enveloped
from repro.engine.trace_cache import (
    TRACE_CACHE_VERSION,
    TraceCache,
    default_cache_dir,
    default_trace_cache,
)
from repro.trace.io import trace_header_from_bytes
from repro.workloads.store import TraceStore


@pytest.fixture()
def cache(tmp_path) -> TraceCache:
    return TraceCache(tmp_path / "traces")


class TestContentAddressing:
    def test_key_is_stable_across_instances(self, tmp_path):
        a = TraceCache(tmp_path / "a")
        b = TraceCache(tmp_path / "b")
        assert a.key("gcc", "test") == b.key("gcc", "test")

    def test_key_separates_workloads_and_inputs(self, cache):
        keys = {
            cache.key("gcc", "test"),
            cache.key("gcc", "ref"),
            cache.key("go", "test"),
        }
        assert len(keys) == 3

    def test_path_embeds_workload_input_and_digest(self, cache):
        path = cache.path_for("gcc", "test")
        assert path.parent == cache.directory
        assert path.name.startswith("gcc-test-")
        assert path.name.endswith(".trcbe")
        assert cache.key("gcc", "test") in path.name

    def test_version_is_part_of_the_address(self, cache, monkeypatch):
        before = cache.key("gcc", "test")
        monkeypatch.setattr(
            "repro.engine.trace_cache.TRACE_CACHE_VERSION",
            TRACE_CACHE_VERSION + 1,
        )
        assert cache.key("gcc", "test") != before


class TestLayers:
    def test_first_get_synthesises_and_persists(self, cache):
        trace = cache.get("go", "test")
        assert len(trace) > 0
        assert cache.stats() == {
            "memory_hits": 0,
            "disk_hits": 0,
            "synthesised": 1,
            "stores": 1,
            "corrupt_quarantined": 0,
        }
        assert cache.path_for("go", "test").exists()

    def test_second_get_hits_the_memo(self, cache):
        first = cache.get("go", "test")
        second = cache.get("go", "test")
        assert second is first
        assert cache.memory_hits == 1
        assert cache.synthesised == 1

    def test_fresh_process_hits_the_disk(self, cache):
        original = cache.get("go", "test")
        fresh = TraceCache(cache.directory)  # simulates a new process
        loaded = fresh.get("go", "test")
        assert loaded == original
        assert loaded.workload == "go"
        assert loaded.instruction_count == original.instruction_count
        assert fresh.stats() == {
            "memory_hits": 0,
            "disk_hits": 1,
            "synthesised": 0,
            "stores": 0,
            "corrupt_quarantined": 0,
        }

    def test_corrupt_entry_is_quarantined_and_regenerated(self, cache):
        cache.get("go", "test")
        path = cache.path_for("go", "test")
        path.write_bytes(b"not a trace file")
        fresh = TraceCache(cache.directory)
        trace = fresh.load("go", "test")
        assert trace is None
        # The poisoned entry was moved aside, not served and not lost.
        assert not path.exists()
        assert path.with_name(path.name + ".corrupt").exists()
        assert fresh.corrupt_quarantined == 1
        assert len(fresh.get("go", "test")) > 0
        assert fresh.synthesised == 1

    def test_entries_and_clear(self, cache):
        cache.get("go", "test")
        cache.get("compress", "test")
        entries = cache.entries()
        assert {(w, i) for _, w, i, _ in entries} == {
            ("go", "test"),
            ("compress", "test"),
        }
        import zlib

        for path, _, _, count in entries:
            payload = zlib.decompress(read_enveloped(path))
            version, workload, _, header_count, _ = trace_header_from_bytes(
                payload
            )
            assert version == 3
            assert header_count == count
        assert cache.clear() == 2
        assert cache.entries() == []

    def test_legacy_compact_entry_is_served(self, cache):
        """An entry persisted by an earlier release (compact v2 bytes
        under ``.trc2e``) still loads at the same content address."""
        import zlib

        from repro.common.integrity import write_enveloped
        from repro.engine.trace_cache import COMPACT_SUFFIX
        from repro.trace.io import trace_to_compact_bytes
        from repro.workloads.registry import get_workload

        trace = get_workload("go").generate_trace("test")
        legacy = cache.path_for("go", "test").with_suffix(COMPACT_SUFFIX)
        cache.directory.mkdir(parents=True, exist_ok=True)
        write_enveloped(
            legacy, zlib.compress(trace_to_compact_bytes(trace), 6)
        )
        loaded = cache.load("go", "test")
        assert loaded == trace
        assert cache.disk_hits == 1
        # Both kinds are visible to maintenance commands.
        assert {(w, i) for _, w, i, _ in cache.entries()} == {("go", "test")}
        assert cache.verify()["ok"] == 1
        assert cache.clear() == 1

    def test_ensure_creates_the_entry(self, cache):
        path = cache.ensure("go", "test")
        assert path.exists()
        # Already present: no further synthesis.
        cache.ensure("go", "test")
        assert cache.synthesised == 1


class TestEnvironment:
    def test_default_dir_honours_env_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_TRACE_CACHE_DIR", str(tmp_path / "here"))
        assert default_cache_dir() == tmp_path / "here"

    def test_default_dir_falls_back_to_xdg(self, monkeypatch, tmp_path):
        monkeypatch.delenv("REPRO_TRACE_CACHE_DIR", raising=False)
        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path / "xdg"))
        assert (
            default_cache_dir() == tmp_path / "xdg" / "repro-fvc" / "traces"
        )

    @pytest.mark.parametrize("value", ["off", "0", "no", "false", "OFF"])
    def test_opt_out(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_TRACE_CACHE", value)
        assert default_trace_cache() is None

    def test_enabled_by_default(self, monkeypatch, tmp_path):
        monkeypatch.delenv("REPRO_TRACE_CACHE", raising=False)
        monkeypatch.setenv("REPRO_TRACE_CACHE_DIR", str(tmp_path))
        cache = default_trace_cache()
        assert isinstance(cache, TraceCache)
        assert cache.directory == tmp_path


class TestStoreIntegration:
    def test_back_to_back_runs_synthesise_once(self, cache):
        """Two 'experiment processes' sharing the machine cache: the
        second run never synthesises, it deserialises."""
        for name in ("go", "compress"):
            TraceStore(disk_cache=cache).get(name, "test")
        assert cache.synthesised == 2

        fresh = TraceCache(cache.directory)
        for name in ("go", "compress"):
            TraceStore(disk_cache=fresh).get(name, "test")
        assert fresh.synthesised == 0
        assert fresh.disk_hits == 2

    def test_store_falls_back_to_disk_after_lru_eviction(self, cache):
        store = TraceStore(max_traces=1, disk_cache=cache)
        store.get("go", "test")
        store.get("compress", "test")  # evicts go from the LRU
        store.get("go", "test")  # must come back from disk, not synthesis
        assert cache.synthesised == 2
        assert cache.disk_hits == 1


# Concurrent-writer regression support: module level so child
# processes can run it under any multiprocessing start method.
def _concurrent_store_worker(directory, barrier, errors):
    try:
        from repro.workloads.registry import get_workload

        trace = get_workload("go").generate_trace("test")
        cache = TraceCache(directory)
        barrier.wait(timeout=30)  # maximise write overlap
        cache.store(trace)
    except BaseException as exc:  # pragma: no cover - failure reporting
        errors.put(f"{type(exc).__name__}: {exc}")


class TestConcurrentWriters:
    """Two processes materialising the same (workload, input) entry
    must not corrupt it: stores go through a private temp file and one
    atomic ``os.replace`` each, so the last completed write wins whole.
    """

    def test_two_processes_store_same_entry(self, tmp_path):
        import multiprocessing

        ctx = multiprocessing.get_context()
        directory = tmp_path / "traces"
        barrier = ctx.Barrier(2)
        errors = ctx.Queue()
        workers = [
            ctx.Process(
                target=_concurrent_store_worker,
                args=(directory, barrier, errors),
            )
            for _ in range(2)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join(timeout=120)
            assert worker.exitcode == 0
        assert errors.empty()
        # The entry is whole: loadable, equal to a fresh synthesis.
        cache = TraceCache(directory)
        loaded = cache.load("go", "test")
        assert loaded is not None
        from repro.workloads.registry import get_workload

        assert loaded == get_workload("go").generate_trace("test")
        # Exactly one entry, no temp debris.
        assert len(list(directory.glob("*.trcbe"))) == 1
        assert list(directory.glob("*.tmp")) == []

    def test_store_uses_private_temp_and_atomic_replace(
        self, cache, monkeypatch
    ):
        """The atomic-rename contract itself: payload is written to a
        mkstemp-private file and lands via a single os.replace (the
        publication step lives in repro.common.integrity now)."""
        trace = cache.get("go", "test")
        calls = []
        real_replace = __import__("os").replace

        def spying_replace(src, dst):
            calls.append((str(src), str(dst)))
            return real_replace(src, dst)

        monkeypatch.setattr(
            "repro.common.integrity.os.replace", spying_replace
        )
        final = cache.store(trace)
        assert len(calls) == 1
        src, dst = calls[0]
        assert dst == str(final)
        assert src != dst
        assert src.endswith(".tmp")
        assert str(cache.directory) in src  # same fs: rename is atomic
        assert list(cache.directory.glob("*.tmp")) == []

    def test_loser_overwrite_keeps_entry_valid(self, cache, monkeypatch):
        """Deterministic interleaving: writer B completes fully while
        writer A sits between its temp write and its rename; A's
        replace then lands over B's entry — and the entry stays whole
        because A replaces a complete file with a complete file."""
        trace = cache.get("go", "test")
        real_replace = __import__("os").replace
        state = {"interleaved": False}

        def racing_replace(src, dst):
            if not state["interleaved"]:
                state["interleaved"] = True
                TraceCache(cache.directory).store(trace)  # B wins first
            return real_replace(src, dst)

        monkeypatch.setattr(
            "repro.common.integrity.os.replace", racing_replace
        )
        cache.store(trace)  # A
        monkeypatch.undo()
        assert state["interleaved"]
        fresh = TraceCache(cache.directory)
        loaded = fresh.load("go", "test")
        assert loaded == trace
        assert list(cache.directory.glob("*.tmp")) == []
