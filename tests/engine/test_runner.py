"""Determinism of the parallel runner.

The contract under test: any ``jobs`` value produces results
bit-identical to a sequential run, because ``executor.map`` preserves
submission order and every worker executes the same
:func:`repro.engine.cells.run_cell` path over the same
content-addressed trace.
"""

import pytest

from repro.engine.cells import SimCell
from repro.engine.runner import default_jobs, run_cells, run_experiments
from repro.experiments.registry import get_experiment, run_experiment

pytestmark = pytest.mark.slow  # spawns worker processes


def _mixed_cells():
    cells = []
    for name in ("go", "compress"):
        cells.append(SimCell(workload=name, input_name="test"))
        cells.append(
            SimCell(
                workload=name, input_name="test", kind="fvc", fvc_entries=128
            )
        )
    cells.append(SimCell(workload="go", input_name="test", kind="classify"))
    return cells


class TestRunCells:
    def test_parallel_bit_identical_to_sequential(self, store):
        cells = _mixed_cells()
        sequential = run_cells(cells, jobs=1, store=store)
        parallel = run_cells(cells, jobs=2, store=store)
        assert parallel == sequential

    def test_results_come_back_in_cell_order(self, store):
        cells = _mixed_cells()
        results = run_cells(cells, jobs=2, store=store)
        assert [result.cell for result in results] == cells

    def test_default_jobs_positive(self):
        assert default_jobs() >= 1


class TestExperimentEngine:
    def test_fig10_parallel_matches_sequential(self, store):
        experiment = get_experiment("fig10")
        sequential = experiment.run(store, fast=True)
        parallel = experiment.run_with_engine(store, fast=True, jobs=2)
        assert parallel.headers == sequential.headers
        assert parallel.rows == sequential.rows

    def test_registry_dispatch_honours_jobs(self, store):
        sequential = run_experiment("fig13", store, fast=True, jobs=1)
        parallel = run_experiment("fig13", store, fast=True, jobs=2)
        assert parallel.rows == sequential.rows

    def test_undecomposed_experiment_falls_back_to_run(self, store):
        # table1 plans no cells; run_with_engine must still produce the
        # sequential result rather than fail.
        experiment = get_experiment("table1")
        assert experiment.plan_cells(fast=True) is None
        result = experiment.run_with_engine(store, fast=True, jobs=2)
        assert result.rows == experiment.run(store, fast=True).rows

    def test_whole_experiment_fanout(self, store):
        ids = ["fig10", "fig13"]
        sequential = [get_experiment(i).run(store, fast=True) for i in ids]
        parallel = run_experiments(ids, jobs=2, fast=True, store=store)
        assert [result.experiment_id for result in parallel] == ids
        for par, seq in zip(parallel, sequential):
            assert par.rows == seq.rows
